#!/usr/bin/env python3
"""Use case 2 (paper section 2.4): DDoS detection in computer networks.

A stream-based graph system supervises servers, modelling traffic flow
between servers and remote clients.  Individual attacker flows look
benign; the *combined* view of all streams exposes the anomalous
temporal pattern, after which attacker hosts can be blacklisted.

The example replays the DDoS workload model (normal traffic, then a
botnet flooding one victim server), tracks per-server inbound flow
volume in sliding windows, flags the server whose volume spikes, and
identifies the attacking client vertices.

Run:  python examples/ddos_detection.py
"""

import json
from collections import Counter, deque

from repro.core.events import EventType, GraphEvent
from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.models import DdosTrafficRules
from repro.platforms.inmem import InMemoryPlatform

SERVERS = 5
ATTACK_ROUND = 3_000


class FlowVolumeMonitor:
    """Online computation: per-server inbound bytes in a sliding window.

    Detection rule: a server is under attack when its windowed volume
    exceeds ``spike_factor`` times the median of all servers.
    """

    name = "flow_volume"

    def __init__(self, servers: int, window: int = 600, spike_factor: float = 8.0):
        self.servers = servers
        self.window = window
        self.spike_factor = spike_factor
        self._events: deque[tuple[int, int, int]] = deque()  # (src, dst, bytes)
        self._volume: Counter[int] = Counter()
        self._sources: dict[int, Counter] = {s: Counter() for s in range(servers)}

    def ingest(self, event: GraphEvent) -> None:
        if event.event_type not in (EventType.ADD_EDGE, EventType.UPDATE_EDGE):
            return
        edge = event.edge_id
        if edge.target >= self.servers:
            return  # only flows towards servers
        try:
            volume = int(json.loads(event.payload).get("bytes", 0))
        except (json.JSONDecodeError, TypeError, ValueError):
            volume = 0
        self._events.append((edge.source, edge.target, volume))
        self._volume[edge.target] += volume
        self._sources[edge.target][edge.source] += volume
        while len(self._events) > self.window:
            src, dst, vol = self._events.popleft()
            self._volume[dst] -= vol
            self._sources[dst][src] -= vol

    def result(self) -> dict:
        volumes = {s: self._volume.get(s, 0) for s in range(self.servers)}
        ordered = sorted(volumes.values())
        median = ordered[len(ordered) // 2] or 1
        suspicious = {
            server: volume
            for server, volume in volumes.items()
            if volume > self.spike_factor * median
        }
        blacklist = set()
        for server in suspicious:
            top = self._sources[server].most_common(10)
            blacklist.update(src for src, vol in top if vol > 0)
        return {
            "volumes": volumes,
            "under_attack": sorted(suspicious),
            "blacklist": sorted(blacklist),
        }


def main() -> None:
    rules = DdosTrafficRules(
        servers=SERVERS, attack_after_round=ATTACK_ROUND, attackers=25
    )
    stream = StreamGenerator(rules, rounds=6_000, seed=99).generate()
    print(f"traffic stream: {len(stream)} events, attack begins around "
          f"round {ATTACK_ROUND}")

    platform = InMemoryPlatform()
    monitor = FlowVolumeMonitor(SERVERS)
    platform.add_online(monitor)

    harness = TestHarness(
        platform,
        stream,
        HarnessConfig(rate=3_000.0, level=1, log_interval=0.25),
        object_probes={"detection": lambda p: p.query("online:flow_volume")},
    )
    result = harness.run()

    print("\ndetection timeline:")
    first_alarm = None
    for timestamp, report in result.object_series["detection"]:
        status = (
            f"ATTACK on servers {report['under_attack']}"
            if report["under_attack"]
            else "normal"
        )
        if report["under_attack"] and first_alarm is None:
            first_alarm = timestamp
        total = sum(report["volumes"].values())
        print(f"  t={timestamp:5.2f}s  volume={total:>9}  {status}")

    final = result.object_series["detection"][-1][1]
    print("\noutcome:")
    if first_alarm is not None:
        print(f"  first alarm at t={first_alarm:.2f}s (simulated)")
    print(f"  servers under attack: {final['under_attack']}")
    print(f"  blacklisted hosts:    {len(final['blacklist'])} clients")
    assert final["under_attack"], "expected the attack to be detected"


if __name__ == "__main__":
    main()
