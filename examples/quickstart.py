#!/usr/bin/env python3
"""GraphTides quickstart: generate a stream, evaluate a platform, analyse.

The minimal end-to-end loop of the framework (paper Figure 2):

1. generate a graph stream with a built-in workload model;
2. replay it into a system under test through the test harness,
   collecting runtime metrics at evaluation level 1;
3. inspect the merged result log: ingress rate, CPU, queue lengths,
   and a marker-correlated result latency.

Run:  python examples/quickstart.py
"""

from repro.core.analysis import result_reflection_latency
from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.models import UniformRules
from repro.graph.builders import snapshot_at_marker
from repro.platforms.inmem import InMemoryPlatform


def main() -> None:
    # 1. A workload: 5,000 evolution rounds of mixed graph operations on
    #    top of a small bootstrap graph.  The generator inserts a
    #    'bootstrap-end' marker between the two phases.
    generator = StreamGenerator(UniformRules(), rounds=5_000, seed=7)
    stream = generator.generate()
    stats = stream.statistics()
    print("workload:")
    print(f"  events            {stats.total_events}")
    print(f"  topology changes  {stats.topology_events}")
    print(f"  state updates     {stats.state_events}")

    # 2. Evaluate the reference in-memory platform at 2,000 events/s.
    platform = InMemoryPlatform()
    harness = TestHarness(
        platform,
        stream,
        HarnessConfig(rate=2_000.0, level=1, log_interval=0.5),
        query_probes={"vertex_count": lambda p: p.query("vertex_count")},
    )
    result = harness.run()

    print("\nrun:")
    print(f"  emitted           {result.events_emitted}")
    print(f"  processed         {result.events_processed}")
    print(f"  duration          {result.duration:.1f} s (simulated)")
    print(f"  mean throughput   {result.mean_throughput:.0f} events/s")
    print(f"  drained           {result.drained}")

    # 3. Analyses on the single merged result log.
    ingress = result.log.series("ingress_rate", source="replayer")
    cpu = result.log.series("cpu_load")
    queue = result.log.series("queue_length")
    print("\nmetrics:")
    print(f"  ingress rate      mean {ingress.mean():.0f} events/s")
    print(f"  platform CPU      mean {cpu.mean():.1f} %")
    print(f"  input queue       peak {queue.maximum():.0f} events")

    # Watermark correlation (section 4.5): how long after the
    # bootstrap-end marker did the platform reflect the bootstrap graph?
    bootstrap_graph = snapshot_at_marker(stream, "bootstrap-end")
    latency = result_reflection_latency(
        result.log,
        "bootstrap-end",
        "vertex_count",
        lambda v: v >= bootstrap_graph.vertex_count,
    )
    print(
        f"  marker latency    bootstrap reflected after {latency * 1000:.0f} ms"
    )


if __name__ == "__main__":
    main()
