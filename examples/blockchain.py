#!/usr/bin/env python3
"""Use case 3 (paper section 2.4): blockchain transaction monitoring.

New blocks are micro-batches of transactions between wallets.  A
stream-based graph system consumes the transaction stream, maintains
the combined transaction/wallet graph, and provides live statistics:
balances, average transaction values, and the distribution of holdings
over time.

Run:  python examples/blockchain.py
"""

import json
from collections import Counter

from repro.core.events import EventType, GraphEvent
from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.models import BlockchainRules
from repro.graph.temporal import locality_gini
from repro.platforms.inmem import InMemoryPlatform


class LedgerStatistics:
    """Online computation: live transaction-network statistics."""

    name = "ledger_stats"

    def __init__(self) -> None:
        self._balances: dict[int, int] = {}
        self._tx_count = 0
        self._tx_total = 0
        self._blocks: Counter[int] = Counter()

    def ingest(self, event: GraphEvent) -> None:
        if event.event_type is EventType.ADD_VERTEX:
            payload = json.loads(event.payload or "{}")
            self._balances[event.vertex_id] = int(payload.get("balance", 0))
        elif event.event_type is EventType.UPDATE_VERTEX:
            payload = json.loads(event.payload or "{}")
            self._balances[event.vertex_id] = int(payload.get("balance", 0))
        elif event.event_type is EventType.ADD_EDGE:
            payload = json.loads(event.payload or "{}")
            amount = int(payload.get("amount", 0))
            block = int(payload.get("block", 0))
            self._tx_count += 1
            self._tx_total += amount
            self._blocks[block] += 1
            edge = event.edge_id
            # Settle the transfer in the live balance view.
            self._balances[edge.source] = self._balances.get(edge.source, 0) - amount
            self._balances[edge.target] = self._balances.get(edge.target, 0) + amount

    def result(self) -> dict:
        average = self._tx_total / self._tx_count if self._tx_count else 0.0
        holdings = {
            f"w:{wallet}": max(0, balance)
            for wallet, balance in self._balances.items()
        }
        concentration = locality_gini(holdings) if holdings else 0.0
        richest = sorted(
            self._balances.items(), key=lambda item: -item[1]
        )[:3]
        return {
            "wallets": len(self._balances),
            "transactions": self._tx_count,
            "avg_tx_value": average,
            "holdings_gini": concentration,
            "richest": richest,
            "blocks_seen": len(self._blocks),
        }


def main() -> None:
    rules = BlockchainRules(seed_wallets=30, block_size=20)
    stream = StreamGenerator(rules, rounds=6_000, seed=512).generate()
    print(f"ledger stream: {len(stream)} events")

    platform = InMemoryPlatform()
    stats = LedgerStatistics()
    platform.add_online(stats)

    harness = TestHarness(
        platform,
        stream,
        HarnessConfig(rate=4_000.0, level=1, log_interval=0.5),
        object_probes={"ledger": lambda p: p.query("online:ledger_stats")},
    )
    result = harness.run()

    print("\nlive statistics over time:")
    print(f"{'t [s]':>7} {'wallets':>8} {'txs':>7} {'avg value':>10} "
          f"{'gini':>6}")
    for timestamp, snapshot in result.object_series["ledger"]:
        print(
            f"{timestamp:>7.1f} {snapshot['wallets']:>8} "
            f"{snapshot['transactions']:>7} {snapshot['avg_tx_value']:>10.1f} "
            f"{snapshot['holdings_gini']:>6.3f}"
        )

    final = result.object_series["ledger"][-1][1]
    print("\nfinal state:")
    print(f"  wallets           {final['wallets']}")
    print(f"  transactions      {final['transactions']}")
    print(f"  blocks            {final['blocks_seen']}")
    print(f"  avg tx value      {final['avg_tx_value']:.1f}")
    print(f"  holdings gini     {final['holdings_gini']:.3f}")
    print("  richest wallets   " + ", ".join(
        f"{wallet} ({balance})" for wallet, balance in final["richest"]
    ))


if __name__ == "__main__":
    main()
