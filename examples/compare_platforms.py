#!/usr/bin/env python3
"""Methodology demo (paper section 4.5): statistically rigorous comparison.

Compares two stream-based graph systems — the Weaver-like transactional
store with and without transaction batching — on write throughput,
following the paper's procedure: repeated runs per configuration,
aggregation, and a CI95 overlap test ("non-overlapping confidence
intervals ... are indeed significantly different").

Run:  python examples/compare_platforms.py
"""

from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.methodology import (
    ComparisonVerdict,
    ExperimentDesign,
    Factor,
    compare,
    repeat_runs,
)
from repro.core.models import UniformRules
from repro.platforms.weaverlike import WeaverLikePlatform

REPETITIONS = 8  # the paper recommends >= 30; kept small for a quick demo


def throughput_run(batch_size: int):
    """A single-run function: seed -> committed events per second."""

    def run(seed: int) -> float:
        stream = StreamGenerator(
            UniformRules(),
            rounds=5_000,
            seed=seed,
            emit_phase_marker=False,
        ).generate()
        platform = WeaverLikePlatform(batch_size=batch_size)
        result = TestHarness(
            platform,
            stream,
            HarnessConfig(rate=20_000.0, level=0, log_interval=0.5),
        ).run()
        return result.events_processed / result.duration

    return run


def main() -> None:
    design = ExperimentDesign(
        (Factor("batch_size", (1, 10)),)
    )
    print("experiment design:")
    for config in design.full_factorial():
        print(f"  {config}")
    print(f"  repetitions per configuration: {REPETITIONS}"
          f" (paper recommends >= 30)")

    results = {}
    for config in design.full_factorial():
        batch = config["batch_size"]
        outcome = repeat_runs(throughput_run(batch), REPETITIONS)
        results[batch] = outcome
        aggregate = outcome.aggregate
        print(
            f"\nbatch={batch}: mean {aggregate.mean:.0f} events/s, "
            f"CI95 [{aggregate.ci_low:.0f}, {aggregate.ci_high:.0f}], "
            f"n={outcome.count}"
            + ("" if outcome.meets_n30 else "  (below n>=30 recommendation)")
        )

    verdict = compare(
        results[10].values, results[1].values, higher_is_better=True
    )
    print("\nCI95 comparison (throughput, higher is better):")
    print(f"  intervals overlap: {verdict.intervals_overlap}")
    if verdict.verdict == ComparisonVerdict.A_BETTER:
        print("  verdict: batching (batch=10) is significantly faster")
    elif verdict.verdict == ComparisonVerdict.B_BETTER:
        print("  verdict: no batching (batch=1) is significantly faster")
    else:
        print("  verdict: indistinguishable at 95% confidence")

    assert verdict.verdict == ComparisonVerdict.A_BETTER


if __name__ == "__main__":
    main()
