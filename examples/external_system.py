#!/usr/bin/env python3
"""Evaluating an *external* system under test over the network.

The framework is platform-agnostic (paper section 3.3): the system
under test need not be a Python object — any process that accepts the
CSV stream format can be evaluated.  This example launches a tiny
external stream-graph system as a **separate OS process** (a Python
subprocess that maintains vertex/edge counts and a degree histogram),
connects the live replayer to it over TCP, and measures the actual
ingest rate from the replayer side — a true Level-0 evaluation: the
harness knows nothing about the system except its network interface.

Run:  python examples/external_system.py
"""

import json
import socket
import subprocess
import sys
import textwrap
import time

from repro.core.connectors import TcpTransport
from repro.core.generator import StreamGenerator
from repro.core.models import SocialNetworkRules
from repro.core.replayer import LiveReplayer

# The external system under test: reads CSV stream lines from a TCP
# connection, maintains its graph state, and serves a one-shot stats
# query on a second port.  Deliberately written as a standalone script
# with no dependency on this library — it only speaks the stream format.
EXTERNAL_SYSTEM = textwrap.dedent(
    """
    import json, socket, sys
    from collections import Counter

    ingest = socket.socket()
    ingest.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    ingest.bind(("127.0.0.1", 0))
    ingest.listen(1)
    query = socket.socket()
    query.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    query.bind(("127.0.0.1", 0))
    query.listen(1)
    print(json.dumps({"ingest": ingest.getsockname()[1],
                      "query": query.getsockname()[1]}), flush=True)

    vertices, edges = set(), set()
    events = 0
    conn, _ = ingest.accept()
    reader = conn.makefile("r", encoding="utf-8")
    for line in reader:
        parts = line.rstrip("\\n").split(",", 2)
        if len(parts) < 2:
            continue
        command, entity = parts[0], parts[1]
        events += 1
        if command == "ADD_VERTEX":
            vertices.add(entity)
        elif command == "REMOVE_VERTEX":
            vertices.discard(entity)
            edges = {e for e in edges
                     if not e.startswith(entity + "-")
                     and not e.endswith("-" + entity)}
        elif command == "ADD_EDGE":
            edges.add(entity)
        elif command == "REMOVE_EDGE":
            edges.discard(entity)
    conn.close()

    qconn, _ = query.accept()
    qconn.sendall((json.dumps({
        "events": events,
        "vertices": len(vertices),
        "edges": len(edges),
    }) + "\\n").encode())
    qconn.close()
    """
)


def main() -> None:
    # Launch the black-box system under test.
    process = subprocess.Popen(
        [sys.executable, "-c", EXTERNAL_SYSTEM],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        ports = json.loads(process.stdout.readline())
        print(f"external system listening: ingest={ports['ingest']} "
              f"query={ports['query']}")

        # Generate the workload and replay it over TCP at 20k events/s.
        stream = StreamGenerator(
            SocialNetworkRules(), rounds=20_000, seed=5,
            emit_phase_marker=False,
        ).generate()
        print(f"replaying {len(stream)} events ...")
        transport = TcpTransport("127.0.0.1", ports["ingest"])
        replayer = LiveReplayer(stream, transport, rate=20_000)
        report = replayer.run()

        print(f"replayed {report.events_emitted} events in "
              f"{report.duration:.2f}s ({report.mean_rate:.0f} events/s)")

        # Query the system's results through its own interface.
        deadline = time.time() + 10
        result = None
        while time.time() < deadline:
            try:
                with socket.create_connection(
                    ("127.0.0.1", ports["query"]), timeout=2
                ) as connection:
                    result = json.loads(
                        connection.makefile("r").readline()
                    )
                break
            except OSError:
                time.sleep(0.1)
        if result is None:
            raise RuntimeError("external system never answered the query")

        print("\nexternal system reports:")
        print(f"  events ingested  {result['events']}")
        print(f"  vertices         {result['vertices']}")
        print(f"  edges            {result['edges']}")
        assert result["events"] == report.events_emitted
        print("\nall replayed events were ingested — level-0 evaluation done")
    finally:
        process.terminate()
        process.wait(timeout=5)


if __name__ == "__main__":
    main()
