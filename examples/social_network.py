#!/usr/bin/env python3
"""Use case 1 (paper section 2.4): connections in a social network.

A social network grows as users sign up and connect.  A stream-based
graph system processes each change and maintains a ranking value for
each user indicating their influence; it also detects trends — users
attracting many new followers within a short period.

This example wires the social-network workload model into the
in-memory platform with two online computations:

* an online influence rank (incremental PageRank), compared against
  the exact batch rank computed retrospectively;
* a trending-vertices detector over a sliding window.

Run:  python examples/social_network.py
"""

from repro.algorithms.base import rank_error
from repro.algorithms.pagerank import OnlinePageRank, PageRank
from repro.algorithms.trends import TrendingVertices
from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.models import SocialNetworkRules
from repro.graph.builders import build_graph
from repro.platforms.inmem import InMemoryPlatform


def main() -> None:
    # A growing social network: signups, follows, posts, unfollows.
    stream = StreamGenerator(
        SocialNetworkRules(seed_users=25), rounds=8_000, seed=2024
    ).generate()
    print(f"social stream: {len(stream)} events")

    platform = InMemoryPlatform()
    influence = OnlinePageRank(work_per_event=24)
    trends = TrendingVertices(window_events=800, top_k=5)
    platform.add_online(influence)
    platform.add_online(trends)

    harness = TestHarness(
        platform,
        stream,
        HarnessConfig(rate=4_000.0, level=1, log_interval=0.5),
        object_probes={
            "trending": lambda p: p.query("online:trending_vertices"),
        },
    )
    result = harness.run()
    print(f"replayed in {result.duration:.1f} simulated seconds\n")

    # -- influence ranking: online vs exact -------------------------------
    final_graph, __ = build_graph(stream)
    exact = PageRank().compute(final_graph)
    online = platform.query("online:online_pagerank")

    top_exact = sorted(exact, key=lambda v: -exact[v])[:5]
    top_online = sorted(online, key=lambda v: -online[v])[:5]
    error = rank_error(online, {v: exact[v] for v in top_exact})

    print("influence ranking (top 5):")
    print(f"  exact reference   {top_exact}")
    print(f"  online estimate   {top_online}")
    print(f"  median rel. error {error:.4f}")
    overlap = len(set(top_exact) & set(top_online))
    print(f"  top-5 overlap     {overlap}/5")

    # -- trend detection over time ----------------------------------------
    print("\ntrending users over time (new followers in window):")
    for timestamp, report in result.object_series["trending"][::2]:
        leaders = ", ".join(
            f"user {vertex} (+{gain})" for vertex, gain in report.trending[:3]
        )
        print(f"  t={timestamp:5.1f}s  {leaders or '(quiet)'}")


if __name__ == "__main__":
    main()
