#!/usr/bin/env python3
"""The full evaluation cycle (paper sections 4.5 and 6) in one script.

"GraphTides covers the full evaluation cycle from workload generation
to result analysis."  This example walks through all of it:

1. **Goal** — compare three computation styles (offline epochs, online
   messages, hybrid pause/shift/resume) on influence ranking, under a
   bursty load.
2. **Workload** — a social-network stream with periodic watermarks and
   a rate burst (shaping via control events).
3. **Execution** — one harness run per platform on the simulated clock.
4. **Analysis** — result-latency profiles from the watermarks, rank
   accuracy against the exact batch reference, derived variability
   metrics, and text reports.
5. **Publication** — each run packaged as a Popper-style bundle.

Run:  python examples/full_evaluation.py
"""

import tempfile
from pathlib import Path

from repro.algorithms.base import rank_error
from repro.algorithms.pagerank import PageRank
from repro.core.analysis import reflection_latency_profile
from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.metrics import Aggregate
from repro.core.models import SocialNetworkRules
from repro.core.popper import package_run, verify_bundle
from repro.core.report import run_report
from repro.core.shaping import with_burst, with_periodic_markers
from repro.graph.builders import build_graph
from repro.platforms.chronolike import ChronoLikePlatform
from repro.platforms.kineolike import KineoLikePlatform
from repro.platforms.taulike import TauLikePlatform

RATE = 2_000.0


def build_workload():
    """A bursty social stream with watermarks every 500 events."""
    base = StreamGenerator(
        SocialNetworkRules(), rounds=6_000, seed=77, emit_phase_marker=False
    ).generate()
    total = sum(1 for __ in base.graph_events())
    shaped = with_burst(base, start_event=total // 2, burst_events=total // 4,
                        factor=3.0)
    return with_periodic_markers(shaped, every=500)


def evaluate(platform, stream, level=1):
    harness = TestHarness(
        platform,
        stream,
        HarnessConfig(rate=RATE, level=level, log_interval=0.1),
        query_probes={
            "events_reflected": lambda p: float(p.events_processed()),
        },
    )
    return harness.run()


def main() -> None:
    stream = build_workload()
    final_graph, __ = build_graph(stream)
    exact = PageRank().compute(final_graph)
    tracked = sorted(exact, key=lambda v: (-exact[v], v))[:10]
    reference = {v: exact[v] for v in tracked}

    duration_estimate = sum(1 for __ in stream.graph_events()) / RATE
    platforms = {
        "offline-epochs": KineoLikePlatform(epoch_interval=duration_estimate / 5),
        "online-messages": ChronoLikePlatform(worker_count=4),
        "hybrid-psr": TauLikePlatform(window_interval=duration_estimate / 5),
    }

    bundles = Path(tempfile.mkdtemp(prefix="graphtides-eval-"))
    print(f"workload: {len(stream)} entries; bundles -> {bundles}\n")

    rows = []
    for name, platform in platforms.items():
        if name == "offline-epochs":
            platform.add_computation(PageRank())
        config = HarnessConfig(rate=RATE, level=1, log_interval=0.1)
        result = evaluate(platform, stream)

        # Result-latency profile from periodic watermarks.
        latencies = reflection_latency_profile(
            result.log, "wm", "events_reflected"
        )
        latency_profile = Aggregate.of(latencies) if len(latencies) >= 2 else None

        # Rank accuracy at end of run.
        if name == "offline-epochs":
            ranks = (
                platform.query("epoch:pagerank")
                if platform.query("epoch") >= 0
                else {}
            )
        else:
            ranks = platform.query("rank")
        error = rank_error(ranks, reference)

        rows.append((name, result, latency_profile, error))

        bundle = package_run(
            bundles, name, stream, config, result,
            description=f"computation-style comparison: {name}",
        )
        problems = verify_bundle(bundle)
        assert not problems, problems

    print(f"{'style':<18} {'throughput':>10} {'p99 latency':>12} "
          f"{'rank error':>11} {'drained':>8}")
    for name, result, latency_profile, error in rows:
        p99 = f"{latency_profile.p99:.2f}s" if latency_profile else "n/a"
        print(
            f"{name:<18} {result.mean_throughput:>10.0f} {p99:>12} "
            f"{error:>11.4f} {str(result.drained):>8}"
        )

    print("\ndetailed report for the hybrid run:\n")
    print(run_report(rows[-1][1], title="hybrid-psr"))
    print(f"\nthree verified Popper bundles in {bundles}")


if __name__ == "__main__":
    main()
