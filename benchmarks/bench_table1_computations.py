"""Table 1 benchmark: example computations for stream-based graph systems.

Measures every computation category of the paper's Table 1 on a common
evolving-graph workload: the batch reference on the final snapshot, and
(where applicable) the online variant ingesting the full stream.  This
regenerates the table as a catalogue with per-computation timings.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    BellmanFord,
    BreadthFirstSearch,
    CycleDetection,
    DegreeDistribution,
    EstimatedDiameter,
    ExactDiameter,
    FloydWarshall,
    GlobalProperties,
    GreedyColoring,
    LabelPropagation,
    OnlineBellmanFord,
    OnlineColoring,
    OnlineDegreeDistribution,
    OnlinePageRank,
    OnlineWcc,
    PageRank,
    SpanningTree,
    StreamingTriangleEstimator,
    TriangleCount,
    TrendingVertices,
    VertexKMeans,
    VertexSampler,
    WeaklyConnectedComponents,
)
from repro.core.generator import StreamGenerator
from repro.core.models import UniformRules
from repro.graph.builders import build_graph


@pytest.fixture(scope="module")
def workload(scale):
    rounds = max(1_000, int(100_000 * scale))
    stream = StreamGenerator(UniformRules(), rounds=rounds, seed=1).generate()
    graph, __ = build_graph(stream)
    return stream, graph


BATCH_COMPUTATIONS = [
    ("graph_statistics", GlobalProperties),
    ("graph_statistics_degree", DegreeDistribution),
    ("graph_properties_pagerank", PageRank),
    ("graph_properties_cycles", CycleDetection),
    ("graph_theory_coloring", GreedyColoring),
    ("graph_theory_triangles", TriangleCount),
    ("communities_wcc", WeaklyConnectedComponents),
    ("communities_label_propagation", LabelPropagation),
    ("routing_diameter_estimate", lambda: EstimatedDiameter(samples=2)),
    ("communities_kmeans", lambda: VertexKMeans(k=4)),
]


@pytest.mark.parametrize("name,factory", BATCH_COMPUTATIONS)
def test_table1_batch_computation(benchmark, workload, name, factory):
    __, graph = workload
    computation = factory()
    result = benchmark(computation.compute, graph)
    assert result is not None


def test_table1_routing_bfs(benchmark, workload):
    __, graph = workload
    source = next(iter(graph.vertices()))
    benchmark(BreadthFirstSearch(source).compute, graph)


def test_table1_routing_spanning_tree(benchmark, workload):
    __, graph = workload
    source = next(iter(graph.vertices()))
    benchmark(SpanningTree(source).compute, graph)


def test_table1_routing_bellman_ford(benchmark, workload):
    __, graph = workload
    source = next(iter(graph.vertices()))
    benchmark(BellmanFord(source).compute, graph)


def test_table1_routing_floyd_warshall(benchmark, workload, scale):
    __, graph = workload
    if graph.vertex_count > 600:
        pytest.skip("Floyd-Warshall is cubic; run at smaller scale")
    benchmark(FloydWarshall().compute, graph)


def test_table1_routing_exact_diameter(benchmark, workload):
    __, graph = workload
    if graph.vertex_count > 2_000:
        pytest.skip("exact diameter is quadratic; run at smaller scale")
    benchmark(ExactDiameter().compute, graph)


ONLINE_COMPUTATIONS = [
    ("online_pagerank", lambda: OnlinePageRank(work_per_event=16)),
    ("online_bellman_ford", lambda: OnlineBellmanFord(source=0, work_per_event=16)),
    ("online_wcc", OnlineWcc),
    ("online_degree", OnlineDegreeDistribution),
    ("online_coloring", OnlineColoring),
    ("online_triangles", lambda: StreamingTriangleEstimator(reservoir_size=500)),
    ("temporal_trending", lambda: TrendingVertices(window_events=500)),
    ("temporal_sampling", lambda: VertexSampler(capacity=100)),
]


@pytest.mark.parametrize("name,factory", ONLINE_COMPUTATIONS)
def test_table1_online_computation(benchmark, workload, name, factory):
    stream, __ = workload
    events = list(stream.graph_events())

    def ingest_all():
        computation = factory()
        for event in events:
            computation.ingest(event)
        return computation.result()

    result = benchmark(ingest_all)
    assert result is not None
