"""Figure 3a benchmark: Graph Stream Replayer throughput (pipe & TCP).

Regenerates the figure's rows — for each transport and target rate the
median per-second receive rate, the 5th percentile and the maximum.
The paper's finding to reproduce: the replayer tracks the target rate
robustly, and beyond its saturation point the achieved rate plateaus
while the measured range widens.

Run with ``pytest benchmarks/bench_fig3a_replayer.py --benchmark-only -s``.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import ReplayerExperimentConfig
from repro.experiments.fig3a import run_replayer_throughput


def _config(scale: float) -> ReplayerExperimentConfig:
    # Rate levels stay as in Table 2; only per-level duration shrinks.
    return ReplayerExperimentConfig().scaled(max(scale, 0.05))


def _print_rows(rows) -> None:
    print()
    print("Figure 3a — replayer throughput [events/s]")
    print(f"{'transport':<10} {'target':>8} {'median':>10} {'p5':>10} {'max':>10}")
    for row in rows:
        print(
            f"{row.transport:<10} {row.target_rate:>8} "
            f"{row.median_rate:>10.0f} {row.p5_rate:>10.0f} {row.max_rate:>10.0f}"
        )


@pytest.mark.parametrize("transport", ["pipe", "tcp"])
def test_fig3a_replayer_throughput(benchmark, scale, transport):
    config = _config(scale)

    def run():
        return run_replayer_throughput(config, transports=(transport,))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print_rows(rows)

    benchmark.extra_info["rows"] = [
        {
            "target": row.target_rate,
            "median": round(row.median_rate),
            "p5": round(row.p5_rate),
            "max": round(row.max_rate),
        }
        for row in rows
    ]

    # Shape assertions: low target rates are tracked accurately.
    lowest = rows[0]
    assert lowest.achieved_fraction == pytest.approx(1.0, rel=0.2)
    # Achieved rate is monotone (possibly saturating) in the target.
    medians = [row.median_rate for row in rows]
    for previous, current in zip(medians, medians[1:]):
        assert current > 0.5 * previous
