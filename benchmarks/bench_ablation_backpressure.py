"""Ablation: backpressure (input-queue capacity) under overload.

Section 3.2: without backpressure a system must buffer or lose events
under load.  The sweep drives the in-memory platform far beyond its
service capacity with different input-queue capacities and measures
the throttling behaviour: small queues back-throttle early (many
rejected delivery attempts, bounded queue residency), large queues
accept bursts but build deep backlogs that delay results.
"""

from __future__ import annotations

import pytest

from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.models import UniformRules
from repro.platforms.inmem import InMemoryPlatform

CAPACITIES = (10, 100, 1_000, 10_000)


@pytest.fixture(scope="module")
def stream(scale):
    rounds = max(2_000, int(100_000 * scale))
    return StreamGenerator(
        UniformRules(), rounds=rounds, seed=3, emit_phase_marker=False
    ).generate()


def _overloaded_run(stream, capacity: int):
    # Service capacity 2k events/s, offered 20k events/s: 10x overload.
    platform = InMemoryPlatform(service_time=5e-4, queue_capacity=capacity)
    result = TestHarness(
        platform,
        stream,
        HarnessConfig(rate=20_000, level=1, log_interval=0.25),
    ).run()
    peak_queue = result.log.series("queue_length").maximum()
    return {
        "rejected_attempts": result.rejected_attempts,
        "peak_queue": peak_queue,
        "duration": result.duration,
        "processed": result.events_processed,
    }


def test_ablation_backpressure_capacity_sweep(benchmark, stream):
    def run():
        return {cap: _overloaded_run(stream, cap) for cap in CAPACITIES}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation — queue capacity under 10x overload")
    print(f"{'capacity':>9} {'rejected':>10} {'peak queue':>11} {'duration':>9}")
    for capacity, data in outcomes.items():
        print(
            f"{capacity:>9} {data['rejected_attempts']:>10} "
            f"{data['peak_queue']:>11.0f} {data['duration']:>9.1f}"
        )

    benchmark.extra_info["outcomes"] = {
        str(c): {k: round(v, 1) for k, v in d.items()}
        for c, d in outcomes.items()
    }

    # All configurations eventually process every event (no loss, the
    # blocking connector retries).
    processed = {data["processed"] for data in outcomes.values()}
    assert len(processed) == 1
    # Small queues back-throttle (more rejected attempts), large queues
    # absorb more (deeper peaks, fewer rejections).
    assert (
        outcomes[CAPACITIES[0]]["rejected_attempts"]
        > outcomes[CAPACITIES[-1]]["rejected_attempts"]
    )
    assert (
        outcomes[CAPACITIES[-1]]["peak_queue"]
        > outcomes[CAPACITIES[0]]["peak_queue"]
    )
