"""Ablation: the three computation styles of section 4.4.2 head-to-head.

"Offline computations are executed on graph snapshots ... Online
computations directly process incoming graph stream events ... Hybrid
approaches (e.g., pause/shift/resume in GraphTau) combine both."

The sweep runs the same influence-rank workload at the same rate on the
three simulated platforms — Kineograph-style (offline epochs),
Chronograph-style (online message passing), GraphTau-style (hybrid
pause/shift/resume) — and compares where each lands on the paper's
correctness-vs-latency trade-off:

* result accuracy at stream end (median relative rank error vs the
  exact batch reference), and
* result staleness (age of the result the platform would serve).
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import rank_error
from repro.algorithms.pagerank import PageRank
from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.models import SocialNetworkRules
from repro.graph.builders import build_graph
from repro.platforms.chronolike import ChronoLikePlatform
from repro.platforms.kineolike import KineoLikePlatform
from repro.platforms.taulike import TauLikePlatform


@pytest.fixture(scope="module")
def workload(scale):
    rounds = max(2_000, int(60_000 * scale))
    stream = StreamGenerator(
        SocialNetworkRules(), rounds=rounds, seed=17, emit_phase_marker=False
    ).generate()
    graph, __ = build_graph(stream)
    exact = PageRank().compute(graph)
    tracked = sorted(exact, key=lambda v: (-exact[v], v))[:20]
    reference = {v: exact[v] for v in tracked}
    return stream, reference


RATE = 2_000.0


def _interval_for(stream) -> float:
    """Epoch/window interval: five refreshes over the stream duration."""
    duration = len(stream) / RATE
    return max(0.1, duration / 5.0)


def _run(platform, stream):
    result = TestHarness(
        platform, stream, HarnessConfig(rate=RATE, level=1, log_interval=0.5)
    ).run()
    return result


def _offline(stream, reference):
    platform = KineoLikePlatform(epoch_interval=_interval_for(stream))
    platform.add_computation(PageRank())
    result = _run(platform, stream)
    ranks = platform.query("epoch:pagerank") if platform.query("epoch") >= 0 else {}
    age = platform.query("epoch_age") if platform.query("epoch") >= 0 else float("inf")
    return rank_error(ranks, reference), age, result.duration


def _online(stream, reference):
    platform = ChronoLikePlatform(worker_count=4)
    result = _run(platform, stream)
    # Online results are always current (age ~0) but approximate.
    return rank_error(platform.query("rank"), reference), 0.0, result.duration


def _hybrid(stream, reference):
    platform = TauLikePlatform(window_interval=_interval_for(stream))
    result = _run(platform, stream)
    try:
        age = platform.query("rank_age")
    except Exception:
        age = float("inf")
    return rank_error(platform.query("rank"), reference), age, result.duration


def test_ablation_computation_styles(benchmark, workload):
    stream, reference = workload

    def run():
        return {
            "offline-epochs": _offline(stream, reference),
            "online-messages": _online(stream, reference),
            "hybrid-psr": _hybrid(stream, reference),
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation — computation styles (same stream, same rate)")
    print(f"{'style':<16} {'rank error':>11} {'result age':>11} {'duration':>9}")
    for style, (error, age, duration) in outcomes.items():
        print(f"{style:<16} {error:>11.4f} {age:>11.2f} {duration:>9.1f}")

    benchmark.extra_info["outcomes"] = {
        style: {"error": round(error, 5), "age": round(age, 2)}
        for style, (error, age, __) in outcomes.items()
    }

    offline_error, offline_age, __ = outcomes["offline-epochs"]
    online_error, online_age, __ = outcomes["online-messages"]
    hybrid_error, hybrid_age, __ = outcomes["hybrid-psr"]

    # The trade-off of section 1 / 4.4.2:
    # Offline: exact on its snapshot but stale.
    assert offline_age > 0.05
    # Online: always fresh, accuracy bounded by its threshold.
    assert online_age == 0.0
    # Hybrid: staleness bounded by the window, accuracy near-exact.
    assert hybrid_error <= online_error + 0.02
    # All three produce usable results.
    for error, __age, __d in outcomes.values():
        assert error < 0.5
