"""Stream pipeline throughput: legacy per-event path vs. batched fast path.

Measures events-per-second for the three hot stages of the replayer
pipeline (paper section 5.1 / Figure 3a):

* **parse** — legacy ``events._legacy_parse_line`` per line vs. the
  codec's bulk ``parse_lines`` (trusted and untrusted);
* **format** — legacy ``events._legacy_format_event`` per event vs. the
  codec's bulk ``format_events``;
* **replay** — saturation rate of :class:`LiveReplayer` (target rate far
  beyond reach) for ``batch_size`` 1 vs. batched, over a pipe to
  ``/dev/null``.

Results are written to ``BENCH_pipeline.json`` so future PRs can track
regressions of the fast path.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_codec_throughput.py
    PYTHONPATH=src python benchmarks/bench_codec_throughput.py --smoke

``--smoke`` shrinks the workload so the whole run finishes in a few
seconds (the CI guard); the full run takes ~30 s.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import codec  # noqa: E402
from repro.core.connectors import PipeTransport  # noqa: E402
from repro.core.events import (  # noqa: E402
    _legacy_format_event,
    _legacy_parse_line,
    add_edge,
    add_vertex,
    marker,
    remove_edge,
    remove_vertex,
    update_edge,
    update_vertex,
)
from repro.core.replayer import LiveReplayer  # noqa: E402
from repro.core.tracing import Tracer, TracingTransport  # noqa: E402
from repro.perfdb.provenance import machine_info, snapshot_provenance  # noqa: E402
from repro.perfdb.schema import SCHEMA_VERSION  # noqa: E402

#: Target rate far above what a Python emitter can reach: the replayer
#: runs flat out, so the achieved rate is the saturation rate.
UNREACHABLE_RATE = 100_000_000

#: Default span sampling stride for the tracing-overhead measurement
#: (matches the ``graphtides replay --trace-sample`` default).
TRACE_SAMPLE_EVERY = 1024


def build_events(count: int) -> list:
    """A deterministic mixed workload (the paper's event-mix shape:
    topology-heavy with stringified-JSON states and the odd marker)."""
    events = []
    for i in range(count):
        step = i % 10
        if step < 3:
            events.append(
                add_vertex(i, f'{{"user": {i}, "name": "u{i}", "region": {i % 32}}}')
            )
        elif step < 6:
            events.append(
                add_edge(i, i + 1, f'{{"weight": {i % 97}, "since": {i}}}')
            )
        elif step == 6:
            events.append(
                update_vertex(
                    i % 1000, f'{{"score": {i}, "rank": {i % 7}, "active": true}}'
                )
            )
        elif step == 7:
            events.append(update_edge(i, i + 1, f"w={i % 13}"))
        elif step == 8:
            events.append(remove_edge(i, i + 1))
        else:
            events.append(remove_vertex(i))
    if events:
        events[len(events) // 2] = marker("bench-midpoint")
    return events


def _timed_runs(repeats: int, func, *args) -> list[float]:
    """Wall-clock seconds of each of ``repeats`` runs."""
    durations = []
    for __ in range(repeats):
        begin = time.perf_counter()
        func(*args)
        durations.append(time.perf_counter() - begin)
    return durations


def _best_of(repeats: int, func, *args) -> float:
    """Best (minimum) wall-clock seconds of ``repeats`` runs."""
    return min(_timed_runs(repeats, func, *args))


def bench_format(events: list, repeats: int) -> dict:
    def legacy():
        for event in events:
            _legacy_format_event(event)

    count = len(events)
    legacy_runs = _timed_runs(repeats, legacy)
    fast_runs = _timed_runs(repeats, codec.format_events, events)
    legacy_s = min(legacy_runs)
    fast_s = min(fast_runs)
    return {
        "events": count,
        "legacy_eps": count / legacy_s,
        "fast_eps": count / fast_s,
        "speedup": legacy_s / fast_s,
        # Per-repeat rates: the perfdb threshold check runs a CI-overlap
        # test on these instead of comparing two single best-of points.
        "samples": {
            "legacy_eps": [count / s for s in legacy_runs],
            "fast_eps": [count / s for s in fast_runs],
        },
    }


def bench_parse(events: list, repeats: int) -> dict:
    lines = codec.format_lines(events)

    def legacy():
        for line in lines:
            _legacy_parse_line(line)

    count = len(lines)
    legacy_runs = _timed_runs(repeats, legacy)
    fast_runs = _timed_runs(
        repeats, lambda: codec.parse_lines(lines, trusted=False)
    )
    trusted_runs = _timed_runs(
        repeats, lambda: codec.parse_lines(lines, trusted=True)
    )
    legacy_s = min(legacy_runs)
    fast_s = min(fast_runs)
    trusted_s = min(trusted_runs)
    return {
        "events": count,
        "legacy_eps": count / legacy_s,
        "fast_eps": count / fast_s,
        "fast_trusted_eps": count / trusted_s,
        "speedup": legacy_s / fast_s,
        "speedup_trusted": legacy_s / trusted_s,
        "samples": {
            "legacy_eps": [count / s for s in legacy_runs],
            "fast_eps": [count / s for s in fast_runs],
            "fast_trusted_eps": [count / s for s in trusted_runs],
        },
    }


def bench_file_roundtrip(events: list, repeats: int, tmp_dir: Path) -> dict:
    """Chunked file write + chunked trusted read (the GraphStream path)."""
    path = tmp_dir / "bench_stream.csv"
    write_s = _best_of(repeats, codec.write_stream_file, path, events)
    read_s = _best_of(
        repeats, lambda: codec.parse_stream_file(path, trusted=True)
    )
    count = len(events)
    result = {
        "events": count,
        "write_eps": count / write_s,
        "read_eps": count / read_s,
    }
    path.unlink(missing_ok=True)
    return result


def bench_replay_saturation(
    events: list, batch_sizes: tuple[int, ...], repeats: int = 1
) -> dict:
    """Saturation events/s of the live replayer per batch size.

    Each batch size is replayed ``repeats`` times; the reported rate is
    the best run, and the per-repeat samples are kept so the perfdb can
    interval-test the saturation point across commits.
    """
    rates = {}
    samples: dict[str, list[float]] = {}
    for batch_size in batch_sizes:
        runs = []
        for __ in range(repeats):
            with open(os.devnull, "w", encoding="utf-8") as sink:
                replayer = LiveReplayer(
                    events,
                    PipeTransport(sink),
                    rate=UNREACHABLE_RATE,
                    batch_size=batch_size,
                )
                report = replayer.run()
            runs.append(report.mean_rate)
        rates[str(batch_size)] = max(runs)
        samples[str(batch_size)] = runs
    baseline = rates[str(batch_sizes[0])]
    best_batched = max(rate for key, rate in rates.items() if key != "1")
    return {
        "events": len(events),
        "target_rate": UNREACHABLE_RATE,
        "saturation_eps_by_batch_size": rates,
        "saturation_samples_by_batch_size": samples,
        "batched_speedup": best_batched / baseline if baseline else 0.0,
    }


def bench_tracing_overhead(
    events: list, batch_size: int, sample_every: int = TRACE_SAMPLE_EVERY
) -> dict:
    """Saturation cost of tracing: untraced vs. traced replay.

    The traced run uses the default 1-in-N span sampling plus a
    :class:`TracingTransport` around the pipe — the exact setup of
    ``graphtides replay --trace-out`` — so the reported overhead is
    what a user pays for a trace.  Acceptance target: < 10%.
    """

    def saturation(tracer: Tracer | None) -> float:
        with open(os.devnull, "w", encoding="utf-8") as sink:
            transport = PipeTransport(sink)
            if tracer is not None:
                transport = TracingTransport(transport, tracer)
            replayer = LiveReplayer(
                events,
                transport,
                rate=UNREACHABLE_RATE,
                batch_size=batch_size,
                tracer=tracer,
            )
            return replayer.run().mean_rate

    # Interleaved best-of-3 so CPU frequency drift between invocations
    # hits both variants equally; fresh tracer per run so span storage
    # does not accumulate.
    untraced_eps = 0.0
    traced_eps = 0.0
    tracer = Tracer(sample_every=sample_every)
    for __ in range(3):
        untraced_eps = max(untraced_eps, saturation(None))
        tracer = Tracer(sample_every=sample_every)
        traced_eps = max(traced_eps, saturation(tracer))
    overhead = 1.0 - traced_eps / untraced_eps if untraced_eps else 0.0
    return {
        "events": len(events),
        "batch_size": batch_size,
        "sample_every": sample_every,
        "untraced_eps": untraced_eps,
        "traced_eps": traced_eps,
        "overhead_fraction": overhead,
        "spans_recorded": len(tracer.spans),
    }


def run_suite(
    event_count: int,
    repeats: int,
    batch_sizes: tuple[int, ...],
    tmp_dir: Path,
) -> dict:
    events = build_events(event_count)
    results = {
        "benchmark": "pipeline",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "event_count": event_count,
            "repeats": repeats,
            "batch_sizes": list(batch_sizes),
        },
        "machine": machine_info(),
        "parse": bench_parse(events, repeats),
        "format": bench_format(events, repeats),
        "file_roundtrip": bench_file_roundtrip(events, repeats, tmp_dir),
        "replay": bench_replay_saturation(
            events, batch_sizes, repeats=min(repeats, 3)
        ),
        "tracing": bench_tracing_overhead(events, batch_sizes[-1]),
    }
    parse = results["parse"]
    fmt = results["format"]
    # The headline number: combined parse+format speedup of the fast
    # codec over the legacy per-line path (time-weighted).
    legacy_s = parse["events"] / parse["legacy_eps"] + fmt["events"] / fmt["legacy_eps"]
    fast_s = (
        parse["events"] / parse["fast_trusted_eps"] + fmt["events"] / fmt["fast_eps"]
    )
    results["combined_parse_format_speedup"] = legacy_s / fast_s
    return results


def print_summary(results: dict) -> None:
    parse = results["parse"]
    fmt = results["format"]
    roundtrip = results["file_roundtrip"]
    replay = results["replay"]
    print(f"\npipeline throughput — {parse['events']} events "
          f"(python {results['machine']['python']})")
    print(f"{'stage':<22} {'legacy':>14} {'fast':>14} {'speedup':>9}")
    print(
        f"{'parse':<22} {parse['legacy_eps']:>12,.0f}/s {parse['fast_eps']:>12,.0f}/s "
        f"{parse['speedup']:>8.2f}x"
    )
    print(
        f"{'parse (trusted)':<22} {parse['legacy_eps']:>12,.0f}/s "
        f"{parse['fast_trusted_eps']:>12,.0f}/s {parse['speedup_trusted']:>8.2f}x"
    )
    print(
        f"{'format':<22} {fmt['legacy_eps']:>12,.0f}/s {fmt['fast_eps']:>12,.0f}/s "
        f"{fmt['speedup']:>8.2f}x"
    )
    print(
        f"{'file write / read':<22} {roundtrip['write_eps']:>12,.0f}/s "
        f"{roundtrip['read_eps']:>12,.0f}/s {'':>9}"
    )
    print(f"combined parse+format speedup: "
          f"{results['combined_parse_format_speedup']:.2f}x")
    print("replay saturation:")
    for batch_size, rate in replay["saturation_eps_by_batch_size"].items():
        print(f"  batch_size {batch_size:>4}: {rate:>12,.0f} events/s")
    print(f"batched replayer speedup:      {replay['batched_speedup']:.2f}x")
    tracing = results["tracing"]
    print(
        f"tracing overhead (1/{tracing['sample_every']} sampling, "
        f"batch {tracing['batch_size']}): "
        f"{tracing['overhead_fraction']:+.1%} "
        f"({tracing['untraced_eps']:,.0f} -> {tracing['traced_eps']:,.0f} "
        f"events/s, {tracing['spans_recorded']} spans)"
    )


def write_snapshot(
    results: dict, output: str | None, smoke: bool, default_path: str
) -> Path | None:
    """Stamp provenance and write the snapshot JSON (shared by benches).

    Provenance — git commit, dirty-tree flag, UTC timestamp — is
    stamped *at write time* so the record describes the tree the
    numbers came from.  Smoke runs only write when a path was given
    explicitly (never clobbering the committed full-run snapshot), and
    their ``smoke: true`` flag makes perfdb refuse them as baselines.
    """
    if output == "-" or (output is None and smoke):
        return None
    path = Path(output if output is not None else default_path)
    # Provenance of the *measured code*: the repo this benchmark lives
    # in, regardless of where the snapshot is written.
    repo_root = Path(__file__).resolve().parent.parent
    results["provenance"] = snapshot_provenance(str(repo_root))
    path.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {path}")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--batch-sizes", default="1,8,32,256",
        help="comma-separated replayer batch sizes (first is the baseline)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="result JSON path ('-' to skip writing; full runs default "
        "to BENCH_pipeline.json, smoke runs only write when -o is given)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload, single repeat: finishes in a few seconds",
    )
    args = parser.parse_args(argv)

    event_count = 20_000 if args.smoke else args.events
    repeats = 1 if args.smoke else args.repeats
    batch_sizes = tuple(int(b) for b in args.batch_sizes.split(","))
    if args.smoke:
        batch_sizes = (1, 32)

    results = run_suite(
        event_count, repeats, batch_sizes, Path(os.environ.get("TMPDIR", "/tmp"))
    )
    results["smoke"] = args.smoke
    print_summary(results)

    write_snapshot(results, args.output, args.smoke, "BENCH_pipeline.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
