"""Replayer scale-out: sharded multi-process replay vs. the single
process (the Figure 3a sweep extended to 1/2/4 workers), across the
stream-format × emission-mode grid.

Measures the aggregate sustained emission rate of
:class:`repro.core.sharding.ShardedReplayer` over a stream *file* —
the realistic Fig 3a setup, where decoding the file is part of the
replayer's work — for every combination of:

* **format** — the same event stream as ``csv`` (the paper's line
  format) and as the ``GTB1`` length-prefixed ``binary`` format;
  shards keep the source format, so the format axis measures decode
  cost end to end;
* **emission** — ``events`` (each worker runs the classic
  :class:`LiveReplayer`: parse → pace → encode → send; 1 worker is
  exactly the original single-process engine, the baseline every
  speedup is against), ``decode`` (workers decode their shard's byte
  runs locally, then emit the stored bytes verbatim — events-mode
  semantics without the re-encode), and ``raw`` (zero-copy byte runs
  straight to the transport, the upper bound);
* **workers** — 1/2/4 processes.

Interpreting the numbers: ``decode_scaling_4w`` is the tentpole
headline — the events-semantics pipeline at 4 workers (binary
decode-in-worker) against the classic 1-worker CSV events baseline.
``decode_vs_raw_4w`` compares decode-in-worker with the classic raw
mode (CSV byte runs — the raw emission benchmarked before the format
axis existed) at the same worker count: decode must land within 2x of
it, i.e. validating every record costs at most one CSV-raw.  Binary
raw is reported separately as ``binary_raw_ceiling_eps``; it is an
index-trusting memcpy to the transport, and no per-record loop — not
even a header walk — can sit within 2x of a memcpy in pure Python.
On a single-core machine (see ``machine.cpu_count``) the gains come
from the cheaper decode path — worker processes only time-slice one
core; on a multi-core machine process parallelism compounds with
them.  The per-mode ``speedup_by_workers`` series separates the two
effects.

Results are written to ``BENCH_replayer_scaleout.json`` (same schema
family as ``BENCH_pipeline.json``) so the perf trajectory is tracked.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replayer_scaleout.py
    PYTHONPATH=src python benchmarks/bench_replayer_scaleout.py --smoke

``--smoke`` shrinks the workload and the worker matrix so the run
finishes in a few seconds (the CI guard); the full run takes ~2 min.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_codec_throughput import (  # noqa: E402
    UNREACHABLE_RATE,
    build_events,
    write_snapshot,
)

from repro.core import binfmt, codec, witness  # noqa: E402
from repro.core.connectors import (  # noqa: E402
    PipeReceiver,
    PipeSpec,
    ShmReceiver,
    TcpReceiver,
    TcpSpec,
)
from repro.core.sharding import ShardedReplayer  # noqa: E402
from repro.perfdb.provenance import machine_info  # noqa: E402
from repro.perfdb.schema import SCHEMA_VERSION  # noqa: E402

FORMATS = ("csv", "binary")
EMISSIONS = ("events", "decode", "raw")
TRANSPORTS = ("pipe", "tcp", "shm")


def _saturation(
    path: str,
    workers: int,
    emission: str,
    rate: float = UNREACHABLE_RATE,
    batch_size: int = 256,
) -> tuple[float, list[float]]:
    """Aggregate and per-shard mean rates of one sharded replay."""
    replayer = ShardedReplayer(
        path,
        PipeSpec(target=os.devnull),
        rate=rate,
        workers=workers,
        emission=emission,
        batch_size=batch_size,
    )
    report = replayer.run()
    return report.mean_rate, list(report.per_shard_rates)


def bench_saturation(
    paths: dict[str, str], worker_counts: tuple[int, ...], repeats: int
) -> dict:
    """Flat-out aggregate rate per (format, emission, workers)."""
    by_format: dict[str, dict] = {}
    for fmt in FORMATS:
        by_mode: dict[str, dict] = {}
        for emission in EMISSIONS:
            by_workers = {}
            for workers in worker_counts:
                best = 0.0
                shards: list[float] = []
                samples: list[float] = []
                for __ in range(repeats):
                    aggregate, per_shard = _saturation(
                        paths[fmt], workers, emission
                    )
                    samples.append(aggregate)
                    if aggregate > best:
                        best = aggregate
                        shards = per_shard
                by_workers[str(workers)] = {
                    "aggregate_eps": best,
                    "per_shard_eps": shards,
                    # Per-repeat aggregates for the perfdb interval test.
                    "samples_eps": samples,
                }
            baseline = by_workers[str(worker_counts[0])]["aggregate_eps"]
            by_mode[emission] = {
                "by_workers": by_workers,
                "speedup_by_workers": {
                    key: value["aggregate_eps"] / baseline if baseline else 0.0
                    for key, value in by_workers.items()
                },
            }
        by_format[fmt] = by_mode
    return by_format


def _transport_run(
    path: str, workers: int, transport: str, batch_size: int = 256
) -> tuple[float, int]:
    """One decode-mode sharded replay through a LIVE receiver.

    Unlike :func:`_saturation` (which writes to ``/dev/null`` to
    isolate the workers), every byte here crosses a real transport to a
    counting receiver, so the aggregate reflects end-to-end delivery
    cost.  Returns ``(aggregate_eps, receiver_total)``; the receiver's
    independently re-derived count is the delivery proof the transports
    are compared on.
    """

    def replay(specs) -> float:
        report = ShardedReplayer(
            path,
            specs,
            rate=UNREACHABLE_RATE,
            workers=workers,
            emission="decode",
            stream_format="binary",
            batch_size=batch_size,
        ).run()
        return report.mean_rate

    if transport == "pipe":
        pairs = [os.pipe() for __ in range(workers)]
        receivers = [PipeReceiver(read_fd) for read_fd, __ in pairs]
        for receiver in receivers:
            receiver.start()
        try:
            aggregate = replay(
                tuple(PipeSpec(target=write_fd) for __, write_fd in pairs)
            )
        finally:
            for __, write_fd in pairs:
                try:
                    os.close(write_fd)
                except OSError:
                    pass
            for receiver in receivers:
                receiver.join(timeout=30.0)
                receiver.close()
        return aggregate, sum(r.counter.total for r in receivers)
    if transport == "tcp":
        with TcpReceiver(max_connections=workers) as receiver:
            aggregate = replay(TcpSpec(port=receiver.port))
        return aggregate, receiver.counter.total
    if transport == "shm":
        with ShmReceiver(max_producers=workers) as receiver:
            aggregate = replay(receiver.specs)
        if receiver.error is not None:
            raise receiver.error
        return aggregate, receiver.counter.total
    raise ValueError(f"unknown transport {transport!r}")


def bench_transports(
    binary_path: str, worker_counts: tuple[int, ...], repeats: int
) -> dict:
    """Delivered decode-mode rate per transport per worker count.

    Best-of-repeats, like :func:`bench_saturation`: on a time-sliced
    single-CPU runner the scheduler noise between repeats dwarfs the
    transport difference, and the best repeat is the one where the
    measured configuration — not a context-switch storm — set the pace.
    Every repeat asserts the receiver delivered the full stream, so a
    transport can never win by dropping events.
    """
    by_transport: dict[str, dict] = {}
    delivered_reference: int | None = None
    for transport in TRANSPORTS:
        by_workers = {}
        for workers in worker_counts:
            best = 0.0
            samples: list[float] = []
            delivered = 0
            for __ in range(repeats):
                aggregate, total = _transport_run(
                    binary_path, workers, transport
                )
                if delivered_reference is None:
                    delivered_reference = total
                elif total != delivered_reference:
                    raise RuntimeError(
                        f"{transport} delivered {total} events, expected "
                        f"{delivered_reference}"
                    )
                delivered = total
                samples.append(aggregate)
                best = max(best, aggregate)
            by_workers[str(workers)] = {
                "aggregate_eps": best,
                "samples_eps": samples,
                "delivered": delivered,
            }
        by_transport[transport] = {"by_workers": by_workers}
    return {
        "emission": "decode",
        "batch_size": 256,
        "by_transport": by_transport,
    }


def bench_sweep(
    paths: dict[str, str],
    worker_counts: tuple[int, ...],
    targets: tuple[int, ...],
) -> dict:
    """Fig 3a extended: achieved vs. target rate per worker count.

    The 1-worker series is the classic CSV events path — the original
    Fig 3a curve.  Multi-worker points use binary decode-in-worker,
    the scale-out engine's fast configuration that still decodes every
    event (events-mode semantics).
    """
    series = {}
    for workers in worker_counts:
        fmt, emission = (
            ("csv", "events") if workers == 1 else ("binary", "decode")
        )
        achieved = []
        for target in targets:
            aggregate, __ = _saturation(
                paths[fmt], workers, emission, rate=float(target)
            )
            achieved.append(aggregate)
        series[str(workers)] = {
            "format": fmt,
            "emission": emission,
            "achieved_eps": achieved,
        }
    return {"target_rates": list(targets), "by_workers": series}


def run_suite(
    event_count: int,
    worker_counts: tuple[int, ...],
    targets: tuple[int, ...],
    repeats: int,
    tmp_dir: Path,
) -> dict:
    events = build_events(event_count)
    paths = {
        "csv": tmp_dir / "bench_scaleout_stream.csv",
        "binary": tmp_dir / "bench_scaleout_stream.gtb",
    }
    codec.write_stream_file(paths["csv"], events)
    # The witness sidecar lets decode workers (and the 1-worker
    # in-place replay) verify the stream in one vectorized pass instead
    # of walking every frame — shard files get their own sidecars from
    # the partitioner.
    binfmt.write_binary_stream(
        paths["binary"],
        events,
        witness_path=witness.witness_path(paths["binary"]),
    )
    path_strs = {fmt: str(path) for fmt, path in paths.items()}
    try:
        saturation = bench_saturation(path_strs, worker_counts, repeats)
        transports = bench_transports(
            path_strs["binary"], worker_counts, repeats
        )
        sweep = bench_sweep(path_strs, worker_counts, targets)
    finally:
        for path in paths.values():
            path.unlink(missing_ok=True)
            witness.witness_path(path).unlink(missing_ok=True)

    most = str(worker_counts[-1])
    # Transport headline at ONE worker: a single producer/consumer pair
    # is the SPSC ring's design point and the only cell where the bench
    # measures transport cost rather than core time-slicing — at 4
    # workers on the 1-CPU runner, 4 producers plus the receiver's
    # drain threads contend for one core and every transport converges
    # on scheduler throughput.  The full grid stays in
    # transports.by_transport for the oversubscribed cells.
    one = str(worker_counts[0])
    shm_eps = transports["by_transport"]["shm"]["by_workers"][one][
        "aggregate_eps"
    ]
    pipe_eps = transports["by_transport"]["pipe"]["by_workers"][one][
        "aggregate_eps"
    ]
    baseline_eps = saturation["csv"]["events"]["by_workers"]["1"][
        "aggregate_eps"
    ]
    decode_eps = saturation["binary"]["decode"]["by_workers"][most][
        "aggregate_eps"
    ]
    raw_eps = saturation["csv"]["raw"]["by_workers"][most]["aggregate_eps"]
    binary_raw_eps = saturation["binary"]["raw"]["by_workers"][most][
        "aggregate_eps"
    ]
    return {
        "benchmark": "replayer_scaleout",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "event_count": event_count,
            "formats": list(FORMATS),
            "emissions": list(EMISSIONS),
            "worker_counts": list(worker_counts),
            "target_rates": list(targets),
            "repeats": repeats,
            "batch_size": 256,
            "transports": list(TRANSPORTS),
        },
        "machine": machine_info(),
        "saturation": saturation,
        "transports": transports,
        "sweep": sweep,
        # Delivered decode-mode rates through LIVE receivers for one
        # producer/consumer pair, and the shared-memory ring's edge
        # over the pipe baseline (the zero-copy transport's acceptance
        # gate is >= 1.5x).
        "shm_delivered_eps": shm_eps,
        "pipe_delivered_eps": pipe_eps,
        "shm_vs_pipe_delivered": shm_eps / pipe_eps if pipe_eps else 0.0,
        # Baseline: the classic single-process CSV events replay —
        # what "1 worker" meant before the binary format existed.
        "baseline_1w_events_eps": baseline_eps,
        # Tentpole headline: events-semantics replay (every event
        # decoded) at the widest worker count, binary decode-in-worker,
        # vs. that baseline.
        "decode_4w_eps": decode_eps,
        "decode_scaling_4w": decode_eps / baseline_eps if baseline_eps else 0.0,
        # How close decode-in-worker gets to the classic raw mode (CSV
        # byte runs) at the same worker count — the "within 2x of raw"
        # gate (>= 0.5 means validating every record costs at most one
        # CSV-raw).
        "decode_vs_raw_4w": decode_eps / raw_eps if raw_eps else 0.0,
        # The binary zero-copy path: frame counts trusted from the
        # index, no per-record work at all.  Informational ceiling.
        "binary_raw_ceiling_eps": binary_raw_eps,
        # Continuity with earlier records: the fastest scale-out config
        # at the widest worker count vs. the same baseline.
        "best_scaleout_eps": binary_raw_eps,
        "speedup_4w": binary_raw_eps / baseline_eps if baseline_eps else 0.0,
    }


def print_summary(results: dict) -> None:
    machine = results["machine"]
    print(
        f"\nreplayer scale-out — {results['config']['event_count']} events, "
        f"python {machine['python']}, {machine['cpu_count']} cpu(s)"
    )
    saturation = results["saturation"]
    header = f"{'format/workers':<16}" + "".join(
        f"{emission:>16}" for emission in results["config"]["emissions"]
    )
    print(header)
    for fmt in results["config"]["formats"]:
        for workers in results["config"]["worker_counts"]:
            key = str(workers)
            row = f"{fmt + '/' + key:<16}"
            for emission in results["config"]["emissions"]:
                eps = saturation[fmt][emission]["by_workers"][key][
                    "aggregate_eps"
                ]
                row += f"{eps:>14,.0f}/s"
            print(row)
    most = results["config"]["worker_counts"][-1]
    print(
        f"decode-in-worker headline ({most} workers binary decode vs "
        f"1 worker csv events): {results['decode_scaling_4w']:.2f}x"
    )
    print(
        f"decode vs classic raw (csv byte runs) at {most} workers: "
        f"{results['decode_vs_raw_4w']:.2f}x"
    )
    print(
        f"raw headline ({most} workers binary raw vs 1 worker events): "
        f"{results['speedup_4w']:.2f}x "
        f"(zero-copy ceiling {results['binary_raw_ceiling_eps']:,.0f}/s)"
    )
    transports = results["transports"]["by_transport"]
    print("delivered decode-mode rate through live receivers:")
    for transport in results["config"]["transports"]:
        row = f"  {transport:<5}"
        for workers in results["config"]["worker_counts"]:
            eps = transports[transport]["by_workers"][str(workers)][
                "aggregate_eps"
            ]
            row += f"  {workers}w {eps:>12,.0f}/s"
        print(row)
    print(
        "shm vs pipe delivered (1 producer/consumer pair): "
        f"{results['shm_vs_pipe_delivered']:.2f}x"
    )
    sweep = results["sweep"]
    print("fig 3a sweep (achieved/target):")
    for workers, series in sweep["by_workers"].items():
        points = ", ".join(
            f"{achieved / target:.2f}@{target:,}"
            for target, achieved in zip(
                sweep["target_rates"], series["achieved_eps"]
            )
        )
        print(
            f"  {workers} worker(s) "
            f"[{series['format']}/{series['emission']}]: {points}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers", default="1,2,4",
        help="comma-separated worker counts (first is the baseline)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="result JSON path ('-' to skip writing; full runs default "
        "to BENCH_replayer_scaleout.json, smoke runs only write when "
        "-o is given)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload, 1-and-2-worker matrix: finishes in seconds",
    )
    args = parser.parse_args(argv)

    event_count = 20_000 if args.smoke else args.events
    repeats = 1 if args.smoke else args.repeats
    worker_counts = tuple(int(w) for w in args.workers.split(","))
    if args.smoke:
        worker_counts = (1, 2)
        targets = (50_000, 1_000_000)
    else:
        targets = (100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000)

    results = run_suite(
        event_count,
        worker_counts,
        targets,
        repeats,
        Path(os.environ.get("TMPDIR", "/tmp")),
    )
    results["smoke"] = args.smoke
    print_summary(results)

    write_snapshot(
        results, args.output, args.smoke, "BENCH_replayer_scaleout.json"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
