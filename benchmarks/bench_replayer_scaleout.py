"""Replayer scale-out: sharded multi-process replay vs. the single
process (the Figure 3a sweep extended to 1/2/4 workers).

Measures the aggregate sustained emission rate of
:class:`repro.core.sharding.ShardedReplayer` over a stream *file* —
the realistic Fig 3a setup, where parsing the file is part of the
replayer's work — in three configurations per worker count:

* ``events`` — each worker runs the classic :class:`LiveReplayer`
  (parse → pace → format → send); 1 worker is exactly the existing
  single-process engine, the baseline every speedup is against;
* ``raw`` — each worker uses the zero-copy path: mmap byte runs of its
  shard file go straight to the transport via ``send_raw``, skipping
  the parse/format round-trip;
* a Fig 3a-style *sweep*: achieved rate vs. target rate per worker
  count, showing where each configuration stops tracking the target.

Interpreting the numbers: the headline ``speedup_4w`` compares the new
engine's 4-worker raw configuration against the 1-worker events
baseline.  On a single-core machine (see ``machine.cpu_count``) that
gain comes almost entirely from the zero-copy emission path — worker
processes only time-slice one core; on a multi-core machine process
parallelism compounds with it.  The per-mode ``speedup_by_workers``
series separates the two effects.

Results are written to ``BENCH_replayer_scaleout.json`` (same schema
family as ``BENCH_pipeline.json``) so the perf trajectory is tracked.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replayer_scaleout.py
    PYTHONPATH=src python benchmarks/bench_replayer_scaleout.py --smoke

``--smoke`` shrinks the workload and the worker matrix so the run
finishes in a few seconds (the CI guard); the full run takes ~1 min.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_codec_throughput import UNREACHABLE_RATE, build_events  # noqa: E402

from repro.core import codec  # noqa: E402
from repro.core.connectors import PipeSpec  # noqa: E402
from repro.core.sharding import ShardedReplayer  # noqa: E402


def _saturation(
    path: str,
    workers: int,
    emission: str,
    rate: float = UNREACHABLE_RATE,
    batch_size: int = 256,
) -> tuple[float, list[float]]:
    """Aggregate and per-shard mean rates of one sharded replay."""
    replayer = ShardedReplayer(
        path,
        PipeSpec(target=os.devnull),
        rate=rate,
        workers=workers,
        emission=emission,
        batch_size=batch_size,
    )
    report = replayer.run()
    return report.mean_rate, list(report.per_shard_rates)


def bench_saturation(
    path: str, worker_counts: tuple[int, ...], repeats: int
) -> dict:
    """Flat-out aggregate rate per (workers, emission mode)."""
    by_mode: dict[str, dict] = {}
    for emission in ("events", "raw"):
        by_workers = {}
        for workers in worker_counts:
            best = 0.0
            shards: list[float] = []
            for __ in range(repeats):
                aggregate, per_shard = _saturation(path, workers, emission)
                if aggregate > best:
                    best = aggregate
                    shards = per_shard
            by_workers[str(workers)] = {
                "aggregate_eps": best,
                "per_shard_eps": shards,
            }
        baseline = by_workers[str(worker_counts[0])]["aggregate_eps"]
        by_mode[emission] = {
            "by_workers": by_workers,
            "speedup_by_workers": {
                key: value["aggregate_eps"] / baseline if baseline else 0.0
                for key, value in by_workers.items()
            },
        }
    return by_mode


def bench_sweep(
    path: str,
    worker_counts: tuple[int, ...],
    targets: tuple[int, ...],
) -> dict:
    """Fig 3a extended: achieved vs. target rate per worker count.

    Multi-worker points use the raw emission path (the scale-out
    engine's fast configuration); the 1-worker series is the classic
    events path, i.e. the original Fig 3a curve.
    """
    series = {}
    for workers in worker_counts:
        emission = "events" if workers == 1 else "raw"
        achieved = []
        for target in targets:
            aggregate, __ = _saturation(
                path, workers, emission, rate=float(target)
            )
            achieved.append(aggregate)
        series[str(workers)] = {
            "emission": emission,
            "achieved_eps": achieved,
        }
    return {"target_rates": list(targets), "by_workers": series}


def run_suite(
    event_count: int,
    worker_counts: tuple[int, ...],
    targets: tuple[int, ...],
    repeats: int,
    tmp_dir: Path,
) -> dict:
    path = tmp_dir / "bench_scaleout_stream.csv"
    codec.write_stream_file(path, build_events(event_count))
    try:
        saturation = bench_saturation(str(path), worker_counts, repeats)
        sweep = bench_sweep(str(path), worker_counts, targets)
    finally:
        path.unlink(missing_ok=True)

    most_workers = str(worker_counts[-1])
    baseline_eps = saturation["events"]["by_workers"]["1"]["aggregate_eps"]
    best_eps = saturation["raw"]["by_workers"][most_workers]["aggregate_eps"]
    return {
        "benchmark": "replayer_scaleout",
        "config": {
            "event_count": event_count,
            "worker_counts": list(worker_counts),
            "target_rates": list(targets),
            "repeats": repeats,
            "batch_size": 256,
        },
        "machine": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "saturation": saturation,
        "sweep": sweep,
        # Headline: the scale-out engine at its widest configuration
        # (raw emission, most workers) vs. the classic single-process
        # replay of the same stream file.
        "baseline_1w_events_eps": baseline_eps,
        "best_scaleout_eps": best_eps,
        "speedup_4w": best_eps / baseline_eps if baseline_eps else 0.0,
    }


def print_summary(results: dict) -> None:
    machine = results["machine"]
    print(
        f"\nreplayer scale-out — {results['config']['event_count']} events, "
        f"python {machine['python']}, {machine['cpu_count']} cpu(s)"
    )
    print(f"{'workers':<9} {'events path':>16} {'raw path':>16}")
    saturation = results["saturation"]
    for workers in results["config"]["worker_counts"]:
        key = str(workers)
        events_eps = saturation["events"]["by_workers"][key]["aggregate_eps"]
        raw_eps = saturation["raw"]["by_workers"][key]["aggregate_eps"]
        print(f"{key:<9} {events_eps:>14,.0f}/s {raw_eps:>14,.0f}/s")
    print(
        f"headline speedup ({results['config']['worker_counts'][-1]} workers "
        f"raw vs 1 worker events): {results['speedup_4w']:.2f}x"
    )
    sweep = results["sweep"]
    print("fig 3a sweep (achieved/target):")
    for workers, series in sweep["by_workers"].items():
        points = ", ".join(
            f"{achieved / target:.2f}@{target:,}"
            for target, achieved in zip(
                sweep["target_rates"], series["achieved_eps"]
            )
        )
        print(f"  {workers} worker(s) [{series['emission']}]: {points}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--workers", default="1,2,4",
        help="comma-separated worker counts (first is the baseline)",
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_replayer_scaleout.json",
        help="result JSON path ('-' to skip writing)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload, 1-and-2-worker matrix: finishes in seconds",
    )
    args = parser.parse_args(argv)

    event_count = 20_000 if args.smoke else args.events
    repeats = 1 if args.smoke else args.repeats
    worker_counts = tuple(int(w) for w in args.workers.split(","))
    if args.smoke:
        worker_counts = (1, 2)
        targets = (50_000, 1_000_000)
    else:
        targets = (100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000)

    results = run_suite(
        event_count,
        worker_counts,
        targets,
        repeats,
        Path(os.environ.get("TMPDIR", "/tmp")),
    )
    results["smoke"] = args.smoke
    print_summary(results)

    if args.output != "-" and not args.smoke:
        output = Path(args.output)
        output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
