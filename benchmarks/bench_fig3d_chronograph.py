"""Figure 3d benchmark: Chronograph stacked time series.

Regenerates the figure's five stacked series — replay rate, internal
operation throughput, worker CPU, per-worker queue lengths, and the
retrospectively estimated relative rank error — for the Table-4 setup
(SNB-like stream, 20 s pause after 100k events, doubled rate for the
next 50k, four workers, online influence rank).

The paper's findings to reproduce:

* worker queues saturate towards the end of the stream;
* the backlog of internal messages keeps the system busy after the
  stream has stopped;
* online rank results carry noticeable error with delays because
  evolution and computation messages compete for worker resources.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import ChronographExperimentConfig
from repro.experiments.fig3d import run_chronograph


@pytest.fixture(scope="module")
def config(scale):
    # The Chronograph run is the heaviest simulation; cap its scale so
    # the default benchmark pass stays fast while full scale remains
    # available via GRAPHTIDES_BENCH_SCALE=1.0.
    return ChronographExperimentConfig().scaled(min(max(scale, 0.03), 1.0))


def test_fig3d_chronograph_stacked_series(benchmark, config):
    def run():
        return run_chronograph(config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    table = result.stacked(step=max(1.0, result.duration / 40))
    print()
    print("Figure 3d — Chronograph stacked series")
    labels = table.labels()
    header = "t[s]".rjust(7) + "".join(l[-14:].rjust(15) for l in labels)
    print(header)
    for row in table.rows():
        cells = "".join(f"{value:>15.2f}" for value in row[1:])
        print(f"{row[0]:>7.1f}{cells}")

    benchmark.extra_info["backlog_seconds"] = round(result.backlog_seconds, 2)
    benchmark.extra_info["final_rank_error"] = round(
        result.rank_error.values[-1], 4
    )
    benchmark.extra_info["peak_queue"] = max(
        series.maximum() for series in result.worker_queues.values()
    )

    # Paper findings:
    assert result.backlog_seconds > 0  # backlog outlives the stream
    peak_queue = max(s.maximum() for s in result.worker_queues.values())
    assert peak_queue > 10  # queues visibly fill
    errors = result.rank_error.values
    assert max(errors) > errors[-1]  # error declines as backlog drains
    # Replay rate shows the pause and the doubled-rate phase.
    rates = result.replay_rate.values
    assert max(rates) > 1.5 * config.base_rate
    assert min(rates) < 0.5 * config.base_rate
