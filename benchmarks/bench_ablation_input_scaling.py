"""Ablation: horizontal input scaling with concurrent event sources.

Section 3.2: "In order to enable parallelism and horizontal scaling of
input workload, we opt for concurrent streaming of disjunct streams by
different event sources."  The sweep replays 1–8 disjoint streams at a
fixed per-source rate into one platform and measures the aggregate
processed rate: it scales with the source count until the platform's
service capacity saturates, after which extra sources only deepen the
backpressure.
"""

from __future__ import annotations

import pytest

from repro.core.harness import HarnessConfig
from repro.core.models import UniformRules
from repro.core.multistream import MultiReplayHarness, disjoint_streams
from repro.platforms.inmem import InMemoryPlatform

SOURCE_COUNTS = (1, 2, 4, 8)
PER_SOURCE_RATE = 2_000.0
# Platform capacity ~ 1 / service_time = 10k events/s: saturates at ~5 sources.
SERVICE_TIME = 100e-6


@pytest.fixture(scope="module")
def streams_by_count(scale):
    rounds = max(4_000, int(100_000 * scale))
    return {
        n: disjoint_streams(
            UniformRules,
            sources=n,
            rounds=rounds,
            seed=11,
            emit_phase_marker=False,
        )
        for n in SOURCE_COUNTS
    }


def _aggregate_rate(streams) -> tuple[float, int]:
    platform = InMemoryPlatform(service_time=SERVICE_TIME, queue_capacity=500)
    result = MultiReplayHarness(
        platform,
        streams,
        HarnessConfig(rate=PER_SOURCE_RATE, level=0, log_interval=0.5),
    ).run()
    rate = (
        result.events_processed / result.duration if result.duration else 0.0
    )
    return rate, result.events_processed


def test_ablation_input_scaling(benchmark, streams_by_count):
    def run():
        return {
            n: _aggregate_rate(streams)
            for n, streams in streams_by_count.items()
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation — aggregate throughput vs concurrent sources "
          f"(per-source rate {PER_SOURCE_RATE:.0f}/s, capacity 10k/s)")
    print(f"{'sources':>8} {'agg rate':>10} {'processed':>10}")
    for n, (rate, processed) in outcomes.items():
        print(f"{n:>8} {rate:>10.0f} {processed:>10}")

    benchmark.extra_info["rates"] = {
        str(n): round(rate) for n, (rate, __) in outcomes.items()
    }

    rates = {n: rate for n, (rate, __) in outcomes.items()}
    # Scaling region: 2 sources nearly double 1 source.
    assert rates[2] > 1.6 * rates[1]
    assert rates[4] > 2.8 * rates[1]
    # Saturation region: at 8 sources the offered load (16k/s) exceeds
    # the service capacity (10k/s), so per-source efficiency drops.
    assert rates[8] / 8 < 0.85 * rates[4] / 4
