"""Ablation: online (approximate) vs periodic batch (exact) computation.

The paper's central trade-off (section 1): online computations give
fast but approximate results; batch computations on snapshots give
exact but stale results.  The sweep varies the online PageRank's
per-event work budget and compares the staleness error against exact
snapshots, quantifying the latency/accuracy dial.
"""

from __future__ import annotations

import pytest

from repro.algorithms.base import rank_error
from repro.algorithms.pagerank import OnlinePageRank, PageRank
from repro.core.generator import StreamGenerator
from repro.core.models import EventMix, UniformRules
from repro.graph.builders import build_graph

WORK_BUDGETS = (0, 4, 16, 64, 256)


@pytest.fixture(scope="module")
def workload(scale):
    rounds = max(1_500, int(40_000 * scale))
    mix = EventMix(
        add_vertex=0.2,
        remove_vertex=0.03,
        update_vertex=0.1,
        add_edge=0.5,
        remove_edge=0.17,
    )
    stream = StreamGenerator(UniformRules(mix=mix), rounds=rounds, seed=23).generate()
    graph, __ = build_graph(stream)
    exact = PageRank().compute(graph)
    return stream, exact


def _stale_error(stream, exact, work: int) -> float:
    online = OnlinePageRank(work_per_event=work)
    for event in stream.graph_events():
        online.ingest(event)
    return rank_error(online.result(), exact)


def test_ablation_online_work_budget(benchmark, workload):
    stream, exact = workload

    def run():
        return {work: _stale_error(stream, exact, work) for work in WORK_BUDGETS}

    errors = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation — online PageRank staleness vs per-event work budget")
    print(f"{'work/event':>11} {'median rel. error':>18}")
    for work, error in errors.items():
        print(f"{work:>11} {error:>18.5f}")

    benchmark.extra_info["errors"] = {
        str(work): round(error, 6) for work, error in errors.items()
    }

    # More work per event -> tighter results; the extremes differ clearly.
    assert errors[WORK_BUDGETS[-1]] < errors[0]
    # With a generous budget the online result is accurate (median
    # relative error below ten percent on the tracked vertices).
    assert errors[WORK_BUDGETS[-1]] < 0.10


def test_ablation_batch_snapshot_cost(benchmark, workload):
    """The price of exactness: one full batch recompute per snapshot."""
    stream, __ = workload
    graph, __report = build_graph(stream)
    result = benchmark(PageRank().compute, graph)
    assert result
