"""Figure 3c benchmark: CPU usage of Weaver processes.

Regenerates the figure's two CPU series (weaver-timestamper and
weaver-shard) at 10,000 events/s with 10 events per transaction.  The
paper's finding to reproduce: the timestamper process shows a
relatively high utilisation — it, not the shard, is the bottleneck.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import WeaverExperimentConfig
from repro.experiments.fig3b import build_weaver_stream
from repro.experiments.fig3c import run_weaver_cpu


@pytest.fixture(scope="module")
def config(scale):
    return WeaverExperimentConfig().scaled(scale)


@pytest.fixture(scope="module")
def stream(config):
    return build_weaver_stream(config)


def test_fig3c_weaver_cpu(benchmark, config, stream):
    def run():
        return run_weaver_cpu(
            config, stream=stream, streaming_rate=10_000, batch_size=10
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Figure 3c — Weaver per-process CPU [%] at 10k events/s, 10 evt/tx")
    print(f"{'t [s]':>8} {'timestamper':>12} {'shard':>8}")
    shard = {s.timestamp: s.value for s in result.shard_cpu}
    for sample in result.timestamper_cpu:
        print(
            f"{sample.timestamp:>8.2f} {sample.value:>12.1f} "
            f"{shard.get(sample.timestamp, 0.0):>8.1f}"
        )

    benchmark.extra_info["timestamper_mean_cpu"] = round(result.timestamper_mean, 1)
    benchmark.extra_info["shard_mean_cpu"] = round(result.shard_mean, 1)

    # Paper finding: the timestamper dominates.
    assert result.timestamper_dominates
    assert result.timestamper_mean > 1.5 * result.shard_mean
    assert result.timestamper_cpu.maximum() <= 100.0 + 1e-9
