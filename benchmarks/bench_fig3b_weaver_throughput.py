"""Figure 3b benchmark: Weaver write throughput under different
streaming rates and transaction batch sizes.

Regenerates the figure's series: committed events/second over time for
every (rate in {100, 1k, 10k}) x (batch in {1, 10}) cell.  The paper's
findings to reproduce:

* Weaver keeps pace with lower streaming rates and back-throttles
  faster ones;
* the throughput ceiling is independent of the offered rate;
* batching events into transactions raises the ceiling.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import WeaverExperimentConfig
from repro.experiments.fig3b import build_weaver_stream, run_weaver_throughput


@pytest.fixture(scope="module")
def config(scale):
    return WeaverExperimentConfig().scaled(scale)


@pytest.fixture(scope="module")
def stream(config):
    return build_weaver_stream(config)


def test_fig3b_weaver_throughput(benchmark, config, stream):
    def run():
        return run_weaver_throughput(config, stream=stream)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Figure 3b — Weaver committed events/s")
    print(f"{'rate':>8} {'batch':>6} {'mean':>10} {'peak':>10} {'kept pace':>10}")
    for result in results:
        peak = result.throughput_series.maximum() if len(
            result.throughput_series
        ) else 0.0
        print(
            f"{result.streaming_rate:>8} {result.batch_size:>6} "
            f"{result.mean_throughput:>10.0f} {peak:>10.0f} "
            f"{str(result.kept_pace):>10}"
        )

    by_cell = {(r.streaming_rate, r.batch_size): r for r in results}
    benchmark.extra_info["cells"] = {
        f"{rate}x{batch}": round(result.mean_throughput)
        for (rate, batch), result in by_cell.items()
    }

    # Paper findings (shape, not absolute values):
    assert by_cell[(100, 1)].kept_pace
    assert by_cell[(1_000, 10)].kept_pace
    assert not by_cell[(10_000, 1)].kept_pace  # back-throttled
    # Ceiling independent of offered rate: peak at 10k/batch1 stays in
    # the same band as the single-instance ceiling (~1.85k).
    peak_capped = by_cell[(10_000, 1)].throughput_series.maximum()
    assert peak_capped < 2_500
    # Batching raises throughput at the saturated rate.
    assert (
        by_cell[(10_000, 10)].mean_throughput
        > 2 * by_cell[(10_000, 1)].mean_throughput
    )
