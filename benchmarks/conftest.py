"""Shared configuration for the benchmark suite.

Every figure/table benchmark runs a scaled-down version of the paper's
configuration by default so the whole suite finishes in minutes; set
``GRAPHTIDES_BENCH_SCALE=1.0`` for the full paper-scale runs.
"""

from __future__ import annotations

import os

import pytest

#: Fraction of the paper-scale configuration benchmarks run at.
DEFAULT_SCALE = 0.02


def bench_scale() -> float:
    """The configured benchmark scale factor."""
    return float(os.environ.get("GRAPHTIDES_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()
