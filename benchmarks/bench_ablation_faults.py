"""Ablation: stream fault rates vs graph divergence.

Motivates section 3.2's requirement of strong delivery guarantees by
default: dropping, duplicating or reordering events makes later
operations violate their preconditions and the reconstructed graph
diverge from the reference.  The sweep quantifies failed-operation
rates and final-graph divergence per fault type and rate.
"""

from __future__ import annotations

import pytest

from repro.core.faults import FaultPlan, apply_fault_plan
from repro.core.generator import StreamGenerator
from repro.core.models import EventMix, UniformRules
from repro.graph.builders import build_graph

RATES = (0.0, 0.01, 0.05, 0.1, 0.2)


@pytest.fixture(scope="module")
def stream(scale):
    rounds = max(2_000, int(100_000 * scale))
    mix = EventMix(
        add_vertex=0.2,
        remove_vertex=0.05,
        update_vertex=0.2,
        add_edge=0.35,
        remove_edge=0.2,
    )
    return StreamGenerator(UniformRules(mix=mix), rounds=rounds, seed=13).generate()


def _divergence(stream, plan: FaultPlan):
    reference, __ = build_graph(stream)
    faulty_stream = apply_fault_plan(stream, plan)
    graph, report = build_graph(faulty_stream, strict=False)
    vertex_divergence = abs(graph.vertex_count - reference.vertex_count)
    edge_divergence = abs(graph.edge_count - reference.edge_count)
    return report.failure_rate, vertex_divergence + edge_divergence


@pytest.mark.parametrize("fault", ["drop", "duplicate", "reorder"])
def test_ablation_fault_rates(benchmark, stream, fault):
    def plan_for(rate: float) -> FaultPlan:
        if fault == "drop":
            return FaultPlan(drop_probability=rate, seed=5)
        if fault == "duplicate":
            return FaultPlan(duplicate_probability=rate, seed=5)
        return FaultPlan(
            shuffle_window=16, shuffle_probability=rate, seed=5
        )

    def run():
        return {rate: _divergence(stream, plan_for(rate)) for rate in RATES}

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(f"Ablation — fault type {fault!r}: failures and divergence")
    print(f"{'rate':>6} {'failed ops':>12} {'divergence':>12}")
    for rate, (failure_rate, divergence) in outcomes.items():
        print(f"{rate:>6.2f} {failure_rate:>12.4f} {divergence:>12}")

    benchmark.extra_info["outcomes"] = {
        str(rate): {"failure_rate": round(fr, 4), "divergence": div}
        for rate, (fr, div) in outcomes.items()
    }

    # No faults -> no failures; higher fault rates -> more failed ops.
    assert outcomes[0.0][0] == 0.0
    assert outcomes[RATES[-1]][0] > outcomes[RATES[1]][0]
