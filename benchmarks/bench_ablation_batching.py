"""Ablation: transaction batch size on the Weaver-like store.

Isolates the mechanism behind Figures 3b/3c: the serial timestamper
charges a fixed cost per transaction, so batching amortises it.  The
sweep shows throughput rising with batch size and saturating once the
per-event costs dominate — exactly the claim DESIGN.md derives from the
paper's Weaver analysis.
"""

from __future__ import annotations

import pytest

from repro.core.generator import StreamGenerator
from repro.core.models import UniformRules
from repro.platforms.weaverlike import WeaverLikePlatform
from repro.sim.kernel import Simulation

BATCH_SIZES = (1, 2, 5, 10, 20, 50)


@pytest.fixture(scope="module")
def stream(scale):
    rounds = max(2_000, int(200_000 * scale))
    return StreamGenerator(
        UniformRules(), rounds=rounds, seed=7, emit_phase_marker=False
    ).generate()


def _ceiling(stream, batch_size: int) -> float:
    # Direct drive (ingest everything up front, unlimited in-flight
    # window) measures the pure pipeline ceiling without replayer
    # pacing or drain-poll quantisation.
    sim = Simulation()
    platform = WeaverLikePlatform(
        batch_size=batch_size, max_inflight_transactions=10**9
    )
    platform.attach(sim)
    count = 0
    for event in stream.graph_events():
        platform.ingest(event)
        count += 1
    platform.flush()
    sim.run()
    return count / sim.now


def test_ablation_batch_size_sweep(benchmark, stream):
    def run():
        return {batch: _ceiling(stream, batch) for batch in BATCH_SIZES}

    ceilings = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("Ablation — Weaver-like throughput ceiling vs batch size")
    print(f"{'batch':>6} {'ceiling [events/s]':>20}")
    for batch, ceiling in ceilings.items():
        print(f"{batch:>6} {ceiling:>20.0f}")

    benchmark.extra_info["ceilings"] = {
        str(batch): round(value) for batch, value in ceilings.items()
    }

    # Monotone gains that saturate: each step helps, but relative gains
    # shrink as per-event cost dominates.
    values = [ceilings[batch] for batch in BATCH_SIZES]
    for previous, current in zip(values, values[1:]):
        assert current > previous
    first_gain = values[1] / values[0]
    last_gain = values[-1] / values[-2]
    assert first_gain > last_gain
