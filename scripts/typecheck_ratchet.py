#!/usr/bin/env python3
"""Ratcheted mypy error budget for the ``typecheck`` CI job.

Runs mypy (configured in pyproject.toml) and compares the error count
against the budget recorded in ``typecheck_budget.txt``:

* count > budget          -> FAIL: regression, add annotations (or
                             justify a budget bump in the PR).
* count < budget - SLACK  -> FAIL: the code got better but the budget
                             was not lowered.  Ratchet it down so the
                             improvement cannot silently erode.
* otherwise               -> PASS.

The two-sided check is the ratchet: a budget may only drift downward,
and it must track reality within ``SLACK`` errors.  When mypy is not
installed (local dev environments without the typecheck toolchain) the
script reports that and exits 0 — the budget is enforced where mypy
exists, i.e. in CI.

Usage::

    python scripts/typecheck_ratchet.py [--budget-file typecheck_budget.txt]
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

#: How far below budget the error count may fall before the budget
#: itself must be lowered.
SLACK = 5

_ERROR_LINE = re.compile(r": error:")


def read_budget(path: Path) -> int:
    """Parse the first non-comment, non-blank line as the budget."""
    for line in path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            return int(stripped)
        except ValueError:
            raise SystemExit(
                f"{path}: budget line is not an integer: {stripped!r}"
            )
    raise SystemExit(f"{path}: no budget value found")


def count_mypy_errors() -> int | None:
    """Run mypy and return its error-line count, or None if absent."""
    if shutil.which("mypy") is None:
        try:
            import mypy  # noqa: F401
        except ImportError:
            return None
    completed = subprocess.run(
        [sys.executable, "-m", "mypy"],
        capture_output=True,
        text=True,
        check=False,
    )
    output = completed.stdout + completed.stderr
    sys.stdout.write(output)
    return sum(1 for line in output.splitlines() if _ERROR_LINE.search(line))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget-file",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "typecheck_budget.txt",
    )
    args = parser.parse_args(argv)

    budget = read_budget(args.budget_file)
    errors = count_mypy_errors()
    if errors is None:
        print(
            "typecheck ratchet: mypy is not installed here; skipping "
            f"(budget on record: {budget})"
        )
        return 0

    print(f"typecheck ratchet: {errors} error(s), budget {budget}")
    if errors > budget:
        print(
            f"FAIL: error count {errors} exceeds the budget of {budget}. "
            "Add annotations, or raise the budget with a justification "
            "in the PR."
        )
        return 1
    if errors < budget - SLACK:
        print(
            f"FAIL: error count {errors} is more than {SLACK} below the "
            f"budget of {budget}. Lower {args.budget_file.name} to "
            f"{errors} so the improvement is locked in."
        )
        return 1
    print("OK: within the ratchet window")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
