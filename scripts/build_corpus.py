#!/usr/bin/env python3
"""Rebuild the checked-in fuzz regression corpus under ``corpus/``.

Two sources of entries:

1. **Live findings** from the seeded fuzz loop (``run_fuzz``): verdicts
   the current code still produces (shard/backlog cliffs, pause-bomb
   hangs).  Deterministic per seed — rerunning this script reproduces
   the same entries byte-for-byte.
2. **Fixed-bug regressions**: hand-crafted workloads that crashed or
   diverged before the hardening work that landed alongside the fuzzer
   (untyped ``struct.error``/``IndexError``/``UnicodeDecodeError``
   leaks from the codec/binfmt layer; ``%g`` float formatting losing
   SPEED/PAUSE precision across the CSV↔GTB1 round trip).  Each entry
   records the *post-fix* verdict as its expectation and keeps the
   original oracle class in ``found_as`` — the corpus replay gate then
   pins the fix in place.

Usage::

    PYTHONPATH=src python scripts/build_corpus.py [--corpus corpus] [--seed 42]
"""

from __future__ import annotations

import argparse
import io
import shutil
import sys
from pathlib import Path

from repro.core import binfmt, codec
from repro.core.events import add_vertex, pause, speed
from repro.fuzz import (
    EvaluatorConfig,
    FuzzConfig,
    Workload,
    evaluate,
    minimize_workload,
    run_fuzz,
    save_entry,
)

#: Evaluator knobs recorded into every hand-crafted entry.  One fixed
#: config (rather than per-machine defaults) keeps replay deterministic.
EVALUATOR = EvaluatorConfig(seed=42, deadline=10.0)


def _binary_bytes(events) -> bytes:
    buffer = io.BytesIO()
    binfmt.write_binary_stream(buffer, events)
    return buffer.getvalue()


def _crafted_entries() -> list[dict]:
    """The fixed-bug regression workloads, smallest reproducers first."""
    vertices = [add_vertex(i) for i in range(3)]
    clean_binary = _binary_bytes(vertices)

    # Cut mid-record: drop the trailing index and the tail of the last
    # record so the frame walker hits a short read inside a record body.
    truncated = clean_binary[: len(clean_binary) // 2]

    # Overwrite one payload byte with an invalid UTF-8 lead byte.  The
    # payload "abc" is unique in the frame, so locate it directly.
    payload_binary = _binary_bytes(
        [add_vertex(1, "abc")]
    )
    bad_utf8_binary = payload_binary.replace(b"abc", b"a\xffc")

    return [
        {
            "name": "binfmt-truncated-record",
            "found_as": "crash",
            "workload": Workload("binary", truncated),
            "notes": (
                "GTB1 file cut mid-record.  Pre-hardening the frame "
                "walker leaked struct.error/IndexError from "
                "unpack_record; now a typed StreamFormatError with the "
                "byte offset of the short read."
            ),
        },
        {
            "name": "csv-non-utf8",
            "found_as": "crash",
            "workload": Workload("csv", b"ADD_VERTEX,1,\xff\xfe\n"),
            "notes": (
                "CSV stream with invalid UTF-8 bytes.  Pre-hardening "
                "the block reader leaked UnicodeDecodeError; now a "
                "typed StreamFormatError naming the byte offset of the "
                "first invalid byte."
            ),
        },
        {
            "name": "binary-bad-utf8-payload",
            "found_as": "crash",
            "workload": Workload("binary", bad_utf8_binary),
            "notes": (
                "GTB1 record whose payload bytes are not valid UTF-8.  "
                "Pre-hardening the record decoder leaked "
                "UnicodeDecodeError; now a typed StreamFormatError at "
                "the record's byte offset."
            ),
        },
        {
            "name": "speed-precision",
            "found_as": "divergence",
            "workload": Workload(
                "csv",
                codec.format_events(
                    [
                        add_vertex(1),
                        speed(1.2345678901234567),
                        pause(0.30000000000000004),
                        add_vertex(2),
                    ]
                ).encode("utf-8"),
            ),
            "notes": (
                "SPEED/PAUSE controls with floats whose %g rendering "
                "is lossy.  Pre-fix the CSV writer dropped precision, "
                "so CSV->GTB1->CSV changed the event list; the writer "
                "now emits shortest-round-trip spellings and the trip "
                "is exact."
            ),
        },
        {
            "name": "pause-bomb",
            "found_as": "hang",
            "workload": Workload(
                "csv",
                codec.format_events(
                    [add_vertex(1), pause(3600.0)]
                ).encode("utf-8"),
            ),
            "notes": (
                "A PAUSE far beyond any replay budget.  The replayer "
                "blocks on PAUSE by design, so this stream wedges any "
                "consumer; the evaluator predicts the wedge from the "
                "stream's control events and reports the hang without "
                "waiting for the watchdog."
            ),
        },
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="corpus")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--budget", type=int, default=60)
    args = parser.parse_args(argv)

    corpus = Path(args.corpus)
    if corpus.exists():
        shutil.rmtree(corpus)

    report = run_fuzz(
        FuzzConfig(
            seed=args.seed,
            budget=args.budget,
            evaluator=EVALUATOR,
            minimizer_tests=300,
            corpus_dir=str(corpus),
        )
    )
    for line in report.summary_lines():
        print(line)

    for spec in _crafted_entries():
        workload = spec["workload"]
        verdict = evaluate(workload, EVALUATOR)
        if verdict.is_finding:
            workload = minimize_workload(
                workload, verdict, EVALUATOR, max_tests=300
            )
            verdict = evaluate(workload, EVALUATOR)
        path = save_entry(
            corpus,
            spec["name"],
            workload,
            verdict,
            found_as=spec["found_as"],
            seed=args.seed,
            evaluator=EVALUATOR,
            notes=spec["notes"],
        )
        print(
            f"crafted {path} ({len(workload.data)} bytes, "
            f"verdict {verdict.signature})"
        )

    oversized = [
        p
        for p in corpus.glob("*/*/workload.*")
        if p.stat().st_size > 10_240
    ]
    if oversized:
        for path in oversized:
            print(f"error: {path} exceeds 10KB", file=sys.stderr)
        return 1
    print(f"corpus rebuilt under {corpus}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
