"""K-means clustering of vertices (Table 1, "Communities").

Clusters vertices by structural feature vectors (in-degree, out-degree,
local clustering) with standard Lloyd iterations and k-means++-style
seeding from a seeded RNG, so results are deterministic for a given
seed.
"""

from __future__ import annotations

import math
import random

from repro.graph.properties import clustering_coefficient
from repro.graph.graph import StreamGraph

__all__ = ["VertexKMeans", "vertex_features"]


def vertex_features(graph: StreamGraph, vertex: int) -> tuple[float, float, float]:
    """Feature vector (in-degree, out-degree, clustering) of a vertex."""
    return (
        float(graph.in_degree(vertex)),
        float(graph.out_degree(vertex)),
        clustering_coefficient(graph, vertex),
    )


def _distance_squared(a: tuple[float, ...], b: tuple[float, ...]) -> float:
    return sum((x - y) ** 2 for x, y in zip(a, b))


class VertexKMeans:
    """Lloyd k-means over vertex structural features.

    Returns vertex -> cluster index in ``[0, k)``.  When the graph has
    fewer than ``k`` vertices every vertex gets its own cluster.
    """

    name = "vertex_kmeans"

    def __init__(self, k: int = 4, max_iterations: int = 50, seed: int = 0):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        self.k = k
        self.max_iterations = max_iterations
        self.seed = seed
        self.iterations_run = 0

    def compute(self, graph: StreamGraph) -> dict[int, int]:
        vertices = list(graph.vertices())
        if not vertices:
            return {}
        if len(vertices) <= self.k:
            return {v: i for i, v in enumerate(vertices)}

        features = {v: vertex_features(graph, v) for v in vertices}
        rng = random.Random(self.seed)

        # k-means++ seeding.
        centers: list[tuple[float, ...]] = [
            features[vertices[rng.randrange(len(vertices))]]
        ]
        while len(centers) < self.k:
            distances = [
                min(_distance_squared(features[v], c) for c in centers)
                for v in vertices
            ]
            total = sum(distances)
            if total <= 0:
                centers.append(features[vertices[rng.randrange(len(vertices))]])
                continue
            pick = rng.random() * total
            cumulative = 0.0
            for v, d in zip(vertices, distances):
                cumulative += d
                if cumulative >= pick:
                    centers.append(features[v])
                    break

        assignment: dict[int, int] = {}
        self.iterations_run = 0
        for __ in range(self.max_iterations):
            self.iterations_run += 1
            new_assignment = {
                v: min(
                    range(self.k),
                    key=lambda i: _distance_squared(features[v], centers[i]),
                )
                for v in vertices
            }
            if new_assignment == assignment:
                break
            assignment = new_assignment
            # Recompute centers.
            sums = [[0.0, 0.0, 0.0] for __ in range(self.k)]
            counts = [0] * self.k
            for v, cluster in assignment.items():
                for axis in range(3):
                    sums[cluster][axis] += features[v][axis]
                counts[cluster] += 1
            for i in range(self.k):
                if counts[i]:
                    centers[i] = tuple(s / counts[i] for s in sums[i])
        return assignment
