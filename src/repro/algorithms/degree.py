"""Graph statistics computations (Table 1, "Graph statistics").

Batch global properties plus an online degree-distribution tracker that
maintains its histogram incrementally from the event stream.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.events import EventType, GraphEvent
from repro.graph.graph import StreamGraph
from repro.graph.properties import GraphSummary, summarize

__all__ = ["GlobalProperties", "DegreeDistribution", "OnlineDegreeDistribution"]


class GlobalProperties:
    """Batch computation of the global property summary."""

    name = "global_properties"

    def compute(self, graph: StreamGraph) -> GraphSummary:
        return summarize(graph)


class DegreeDistribution:
    """Batch total-degree histogram (degree -> vertex count)."""

    name = "degree_distribution"

    def compute(self, graph: StreamGraph) -> dict[int, int]:
        return dict(Counter(graph.degree(v) for v in graph.vertices()))


class OnlineDegreeDistribution:
    """Incrementally maintained total-degree histogram.

    Exact at all times (degree tracking is cheap), so it doubles as a
    test oracle for the online-computation plumbing: its ``result()``
    must always equal the batch histogram on the reconstructed graph.
    """

    name = "online_degree_distribution"

    def __init__(self) -> None:
        self._degree: dict[int, int] = {}
        self._histogram: Counter[int] = Counter()
        self._graph = StreamGraph()

    def _change_degree(self, vertex: int, delta: int) -> None:
        old = self._degree[vertex]
        new = old + delta
        self._histogram[old] -= 1
        if not self._histogram[old]:
            del self._histogram[old]
        self._histogram[new] += 1
        self._degree[vertex] = new

    def ingest(self, event: GraphEvent) -> None:
        event_type = event.event_type
        if event_type is EventType.ADD_VERTEX:
            self._graph.add_vertex(event.vertex_id, event.payload)
            self._degree[event.vertex_id] = 0
            self._histogram[0] += 1
        elif event_type is EventType.REMOVE_VERTEX:
            vertex = event.vertex_id
            removed_edges = self._graph.remove_vertex(vertex)
            degree = self._degree.pop(vertex)
            self._histogram[degree] -= 1
            if not self._histogram[degree]:
                del self._histogram[degree]
            for edge in removed_edges:
                other = edge.target if edge.source == vertex else edge.source
                self._change_degree(other, -1)
        elif event_type is EventType.ADD_EDGE:
            edge = event.edge_id
            self._graph.add_edge(edge.source, edge.target, event.payload)
            self._change_degree(edge.source, +1)
            self._change_degree(edge.target, +1)
        elif event_type is EventType.REMOVE_EDGE:
            edge = event.edge_id
            self._graph.remove_edge(edge.source, edge.target)
            self._change_degree(edge.source, -1)
            self._change_degree(edge.target, -1)
        elif event_type is EventType.UPDATE_VERTEX:
            self._graph.update_vertex(event.vertex_id, event.payload)
        elif event_type is EventType.UPDATE_EDGE:
            edge = event.edge_id
            self._graph.update_edge(edge.source, edge.target, event.payload)

    def result(self) -> dict[int, int]:
        return dict(self._histogram)
