"""Traversals: breadth-first search and spanning-tree construction
(Table 1, "Routing & traversals")."""

from __future__ import annotations

from collections import deque

from repro.errors import VertexNotFoundError
from repro.graph.graph import StreamGraph

__all__ = ["BreadthFirstSearch", "SpanningTree", "bfs_levels", "reachable_from"]


def bfs_levels(
    graph: StreamGraph, source: int, directed: bool = True
) -> dict[int, int]:
    """BFS distances (hop counts) from ``source``.

    ``directed=False`` traverses edges in both directions.  Raises
    :class:`VertexNotFoundError` for an unknown source.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(f"vertex {source} does not exist")
    levels = {source: 0}
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        neighbors = (
            graph.successors(vertex) if directed else graph.neighbors(vertex)
        )
        for neighbor in neighbors:
            if neighbor not in levels:
                levels[neighbor] = levels[vertex] + 1
                frontier.append(neighbor)
    return levels


def reachable_from(graph: StreamGraph, source: int) -> frozenset[int]:
    """Set of vertices reachable from ``source`` along directed edges."""
    return frozenset(bfs_levels(graph, source))


class BreadthFirstSearch:
    """Batch BFS computation from a fixed source vertex."""

    name = "bfs"

    def __init__(self, source: int, directed: bool = True):
        self.source = source
        self.directed = directed

    def compute(self, graph: StreamGraph) -> dict[int, int]:
        return bfs_levels(graph, self.source, directed=self.directed)


class SpanningTree:
    """BFS spanning tree (parent pointers) of the component of ``source``.

    Returns a dict mapping each reached vertex to its parent (the
    source maps to itself).  Uses the undirected view, which is the
    usual interpretation for spanning-tree construction on directed
    graphs.
    """

    name = "spanning_tree"

    def __init__(self, source: int):
        self.source = source

    def compute(self, graph: StreamGraph) -> dict[int, int]:
        if not graph.has_vertex(self.source):
            raise VertexNotFoundError(f"vertex {self.source} does not exist")
        parent = {self.source: self.source}
        frontier = deque([self.source])
        while frontier:
            vertex = frontier.popleft()
            for neighbor in sorted(graph.neighbors(vertex)):
                if neighbor not in parent:
                    parent[neighbor] = vertex
                    frontier.append(neighbor)
        return parent
