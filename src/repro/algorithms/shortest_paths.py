"""Shortest paths: Bellman–Ford (batch and online) and Floyd–Warshall
(Table 1, "Routing & traversals").

Edge weights are read from edge state: a state string of the form
``"w=<float>"`` or JSON with a ``"weight"`` field sets the weight; any
other (or empty) state means weight 1.0.

:class:`OnlineBellmanFord` is the paper's second example of a
*converging computation* ("online PageRank variants, distributed
routing algorithms", section 4.4.2): distance estimates improve
incrementally as edges arrive, with bounded relaxation work per event.
"""

from __future__ import annotations

import json
import math
from collections import deque

from repro.core.events import EdgeId, EventType, GraphEvent
from repro.errors import AnalysisError, VertexNotFoundError
from repro.graph.graph import StreamGraph

__all__ = [
    "BellmanFord",
    "OnlineBellmanFord",
    "FloydWarshall",
    "edge_weight",
    "NegativeCycleError",
]


class NegativeCycleError(AnalysisError):
    """The graph contains a cycle with negative total weight."""


def edge_weight(graph: StreamGraph, edge: EdgeId) -> float:
    """Weight of an edge from its state string (default 1.0)."""
    state = graph.edge_state(edge.source, edge.target)
    if not state:
        return 1.0
    if state.startswith("w="):
        try:
            return float(state[2:])
        except ValueError:
            return 1.0
    if state.startswith("{"):
        try:
            payload = json.loads(state)
        except json.JSONDecodeError:
            return 1.0
        value = payload.get("weight", 1.0)
        return float(value) if isinstance(value, (int, float)) else 1.0
    return 1.0


class BellmanFord:
    """Single-source shortest path distances by Bellman–Ford.

    Handles negative edge weights; raises :class:`NegativeCycleError`
    when a negative cycle is reachable from the source.  Unreachable
    vertices are absent from the result.
    """

    name = "bellman_ford"

    def __init__(self, source: int):
        self.source = source

    def compute(self, graph: StreamGraph) -> dict[int, float]:
        if not graph.has_vertex(self.source):
            raise VertexNotFoundError(f"vertex {self.source} does not exist")
        distance: dict[int, float] = {self.source: 0.0}
        edges = [
            (edge.source, edge.target, edge_weight(graph, edge))
            for edge in graph.edges()
        ]
        for __ in range(max(0, graph.vertex_count - 1)):
            changed = False
            for u, v, w in edges:
                if u in distance:
                    candidate = distance[u] + w
                    if candidate < distance.get(v, math.inf):
                        distance[v] = candidate
                        changed = True
            if not changed:
                break
        else:
            # Ran all n-1 rounds with changes: check for negative cycles.
            for u, v, w in edges:
                if u in distance and distance[u] + w < distance.get(v, math.inf):
                    raise NegativeCycleError(
                        "negative cycle reachable from the source"
                    )
        # One extra relaxation check in the early-exit path is unnecessary:
        # no change in a full pass proves distances are final.
        return distance


class OnlineBellmanFord:
    """Incremental single-source shortest paths (distance-vector style).

    Edge *insertions* (and weight decreases) are handled online: the
    improved distance propagates through a relaxation queue, processing
    up to ``work_per_event`` relaxations per ingested event — stale
    (too large) distances under load, converging when drained.

    Distance-*increasing* changes (edge/vertex removal, weight
    increases) are the classic count-to-infinity hazard of distance
    vectors; like :class:`~repro.algorithms.components.OnlineWcc`, they
    are handled by a lazy full rebuild on the next :meth:`result`
    access, counted in ``rebuilds``.  Only non-negative weights are
    supported online.
    """

    name = "online_bellman_ford"

    def __init__(self, source: int, work_per_event: int = 32):
        if work_per_event < 0:
            raise ValueError(f"work_per_event must be >= 0, got {work_per_event}")
        self.source = source
        self.work_per_event = work_per_event
        self._graph = StreamGraph()
        self._distance: dict[int, float] = {}
        self._queue: deque[int] = deque()
        self._queued: set[int] = set()
        self._dirty = False
        self.rebuilds = 0

    @property
    def graph(self) -> StreamGraph:
        return self._graph

    @property
    def pending_work(self) -> int:
        return len(self._queue)

    def _mark(self, vertex: int) -> None:
        if vertex not in self._queued and self._graph.has_vertex(vertex):
            self._queue.append(vertex)
            self._queued.add(vertex)

    def ingest(self, event: GraphEvent) -> None:
        event_type = event.event_type
        graph = self._graph
        if event_type is EventType.ADD_VERTEX:
            graph.add_vertex(event.vertex_id, event.payload)
            if event.vertex_id == self.source:
                self._distance[self.source] = 0.0
                self._mark(self.source)
        elif event_type is EventType.REMOVE_VERTEX:
            graph.remove_vertex(event.vertex_id)
            self._distance.pop(event.vertex_id, None)
            self._queued.discard(event.vertex_id)
            self._dirty = True
        elif event_type is EventType.ADD_EDGE:
            edge = event.edge_id
            graph.add_edge(edge.source, edge.target, event.payload)
            weight = edge_weight(graph, edge)
            if weight < 0:
                raise AnalysisError(
                    "online Bellman-Ford requires non-negative weights"
                )
            if edge.source in self._distance:
                candidate = self._distance[edge.source] + weight
                if candidate < self._distance.get(edge.target, math.inf):
                    self._distance[edge.target] = candidate
                    self._mark(edge.target)
        elif event_type is EventType.REMOVE_EDGE:
            edge = event.edge_id
            graph.remove_edge(edge.source, edge.target)
            if edge.source in self._distance:
                self._dirty = True
        elif event_type is EventType.UPDATE_VERTEX:
            graph.update_vertex(event.vertex_id, event.payload)
        elif event_type is EventType.UPDATE_EDGE:
            edge = event.edge_id
            old_weight = edge_weight(graph, edge)
            graph.update_edge(edge.source, edge.target, event.payload)
            new_weight = edge_weight(graph, edge)
            if new_weight < 0:
                raise AnalysisError(
                    "online Bellman-Ford requires non-negative weights"
                )
            if new_weight < old_weight and edge.source in self._distance:
                candidate = self._distance[edge.source] + new_weight
                if candidate < self._distance.get(edge.target, math.inf):
                    self._distance[edge.target] = candidate
                    self._mark(edge.target)
            elif new_weight > old_weight and edge.source in self._distance:
                self._dirty = True
        self.propagate(self.work_per_event)

    def propagate(self, max_relaxations: int) -> int:
        """Push improved distances to successors (bounded work)."""
        done = 0
        while self._queue and done < max_relaxations:
            vertex = self._queue.popleft()
            self._queued.discard(vertex)
            if vertex not in self._distance:
                continue
            base = self._distance[vertex]
            for successor in self._graph.successors(vertex):
                weight = edge_weight(self._graph, EdgeId(vertex, successor))
                candidate = base + weight
                if candidate < self._distance.get(successor, math.inf):
                    self._distance[successor] = candidate
                    self._mark(successor)
            done += 1
        return done

    def drain(self) -> None:
        """Relax until no improvements remain (and rebuild if dirty)."""
        self._rebuild_if_dirty()
        while self._queue:
            self.propagate(4096)

    def _rebuild_if_dirty(self) -> None:
        if not self._dirty:
            return
        self._queue.clear()
        self._queued.clear()
        if self._graph.has_vertex(self.source):
            self._distance = BellmanFord(self.source).compute(self._graph)
        else:
            self._distance = {}
        self._dirty = False
        self.rebuilds += 1

    def result(self) -> dict[int, float]:
        """Current distance estimates (exact after :meth:`drain`)."""
        self._rebuild_if_dirty()
        return dict(self._distance)


class FloydWarshall:
    """All-pairs shortest paths by Floyd–Warshall.

    Returns ``{source: {target: distance}}`` including only finite
    entries.  Raises :class:`NegativeCycleError` when any vertex gets a
    negative self-distance.
    """

    name = "floyd_warshall"

    def compute(self, graph: StreamGraph) -> dict[int, dict[int, float]]:
        vertices = list(graph.vertices())
        distance: dict[int, dict[int, float]] = {
            v: {v: 0.0} for v in vertices
        }
        for edge in graph.edges():
            w = edge_weight(graph, edge)
            row = distance[edge.source]
            if w < row.get(edge.target, math.inf):
                row[edge.target] = w
        for k in vertices:
            row_k = distance[k]
            for i in vertices:
                row_i = distance[i]
                d_ik = row_i.get(k)
                if d_ik is None:
                    continue
                for j, d_kj in row_k.items():
                    candidate = d_ik + d_kj
                    if candidate < row_i.get(j, math.inf):
                        row_i[j] = candidate
        for v in vertices:
            if distance[v][v] < 0:
                raise NegativeCycleError(f"negative cycle through vertex {v}")
        return distance
