"""Community detection by label propagation (Table 1, "Communities").

Synchronous label propagation on the undirected view with
deterministic tie-breaking (smallest label wins), so results are
reproducible across runs — a requirement for using the computation as
an accuracy reference.
"""

from __future__ import annotations

from collections import Counter

from repro.graph.graph import StreamGraph

__all__ = ["LabelPropagation", "community_sizes", "modularity"]


class LabelPropagation:
    """Deterministic synchronous label propagation.

    Every vertex starts with its own id as label; per round each vertex
    adopts the most frequent label among its neighbours (ties broken by
    the smallest label).  Stops at a fixed point or ``max_rounds``.
    Returns vertex -> community label.
    """

    name = "label_propagation"

    def __init__(self, max_rounds: int = 50):
        if max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self.max_rounds = max_rounds
        self.rounds_run = 0

    def compute(self, graph: StreamGraph) -> dict[int, int]:
        labels = {v: v for v in graph.vertices()}
        self.rounds_run = 0
        for __ in range(self.max_rounds):
            self.rounds_run += 1
            changed = False
            new_labels: dict[int, int] = {}
            for vertex in graph.vertices():
                neighbors = graph.neighbors(vertex)
                if not neighbors:
                    new_labels[vertex] = labels[vertex]
                    continue
                counts = Counter(labels[n] for n in neighbors)
                best_count = max(counts.values())
                best_label = min(
                    label for label, c in counts.items() if c == best_count
                )
                new_labels[vertex] = best_label
                if best_label != labels[vertex]:
                    changed = True
            labels = new_labels
            if not changed:
                break
        return labels


def community_sizes(labels: dict[int, int]) -> dict[int, int]:
    """Community label -> member count."""
    return dict(Counter(labels.values()))


def modularity(graph: StreamGraph, labels: dict[int, int]) -> float:
    """Newman modularity of a partition on the undirected view.

    Uses the per-community form ``Q = sum_c [L_c/m - (d_c / 2m)^2]``
    where ``L_c`` counts intra-community undirected edges, ``d_c`` is
    the total degree of community ``c``, and ``m`` the number of
    undirected edges.  Returns 0.0 for graphs without edges.
    """
    # Undirected edge list (deduplicate reciprocal pairs).
    undirected: set[tuple[int, int]] = set()
    for edge in graph.edges():
        undirected.add(tuple(sorted((edge.source, edge.target))))
    m = len(undirected)
    if not m:
        return 0.0
    degree: dict[int, int] = {v: 0 for v in graph.vertices()}
    for a, b in undirected:
        degree[a] += 1
        degree[b] += 1

    intra: Counter[int] = Counter()
    for a, b in undirected:
        if labels.get(a) == labels.get(b):
            intra[labels[a]] += 1
    community_degree: Counter[int] = Counter()
    for vertex, label in labels.items():
        if vertex in degree:
            community_degree[label] += degree[vertex]

    q = 0.0
    for label, total_degree in community_degree.items():
        q += intra.get(label, 0) / m - (total_degree / (2.0 * m)) ** 2
    return q
