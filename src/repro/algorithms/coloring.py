"""Greedy vertex coloring (Table 1, "Graph theory").

Colors the undirected view so no two adjacent vertices share a color.
The batch variant orders vertices by descending degree (Welsh–Powell),
which tends to use few colors; the online variant assigns a color on
vertex arrival and repairs conflicts introduced by later edges.
"""

from __future__ import annotations

from repro.core.events import EventType, GraphEvent
from repro.graph.graph import StreamGraph

__all__ = ["GreedyColoring", "OnlineColoring", "is_proper_coloring"]


def is_proper_coloring(graph: StreamGraph, colors: dict[int, int]) -> bool:
    """Whether ``colors`` assigns distinct colors across every edge."""
    for edge in graph.edges():
        if colors.get(edge.source) == colors.get(edge.target):
            return False
    return all(v in colors for v in graph.vertices())


class GreedyColoring:
    """Welsh–Powell greedy coloring: returns vertex -> color index."""

    name = "greedy_coloring"

    def compute(self, graph: StreamGraph) -> dict[int, int]:
        order = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
        colors: dict[int, int] = {}
        for vertex in order:
            used = {
                colors[n] for n in graph.neighbors(vertex) if n in colors
            }
            color = 0
            while color in used:
                color += 1
            colors[vertex] = color
        return colors


class OnlineColoring:
    """First-fit online coloring with conflict repair.

    New vertices get color 0; a new edge that creates a conflict
    recolors the endpoint with the smaller degree to its first free
    color.  The coloring is proper at all times; ``colors_used``
    reports the palette size (expected to exceed the batch result — the
    accuracy cost of the online regime).
    """

    name = "online_coloring"

    def __init__(self) -> None:
        self._graph = StreamGraph()
        self._colors: dict[int, int] = {}

    @property
    def colors_used(self) -> int:
        return len(set(self._colors.values())) if self._colors else 0

    def _first_free_color(self, vertex: int) -> int:
        used = {
            self._colors[n]
            for n in self._graph.neighbors(vertex)
            if n in self._colors
        }
        color = 0
        while color in used:
            color += 1
        return color

    def ingest(self, event: GraphEvent) -> None:
        event_type = event.event_type
        if event_type is EventType.ADD_VERTEX:
            self._graph.add_vertex(event.vertex_id, event.payload)
            self._colors[event.vertex_id] = 0
        elif event_type is EventType.REMOVE_VERTEX:
            self._graph.remove_vertex(event.vertex_id)
            del self._colors[event.vertex_id]
        elif event_type is EventType.ADD_EDGE:
            edge = event.edge_id
            self._graph.add_edge(edge.source, edge.target, event.payload)
            if self._colors[edge.source] == self._colors[edge.target]:
                # Repair the cheaper endpoint.
                victim = min(
                    (edge.source, edge.target), key=self._graph.degree
                )
                self._colors[victim] = self._first_free_color(victim)
        elif event_type is EventType.REMOVE_EDGE:
            edge = event.edge_id
            self._graph.remove_edge(edge.source, edge.target)
        elif event_type is EventType.UPDATE_VERTEX:
            self._graph.update_vertex(event.vertex_id, event.payload)
        elif event_type is EventType.UPDATE_EDGE:
            edge = event.edge_id
            self._graph.update_edge(edge.source, edge.target, event.payload)

    def result(self) -> dict[int, int]:
        return dict(self._colors)
