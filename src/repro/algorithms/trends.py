"""Trend analyses on graph property series (Table 1, "Temporal analyses").

Detects trends in time-series of graph properties — the "individuals
that attract a lot of new friends within a specified period" pattern
from the social-network use case (section 2.4).  Provides a windowed
slope estimator, exponential smoothing, and a per-entity trend detector
over event streams.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.core.events import EventType, GraphEvent
from repro.core.metrics import TimeSeries

__all__ = ["linear_trend", "ewma", "TrendingVertices", "TrendReport"]


def linear_trend(series: TimeSeries) -> float:
    """Least-squares slope of a time series (value units per second).

    Returns 0.0 for series with fewer than two samples or zero time
    spread.
    """
    n = len(series)
    if n < 2:
        return 0.0
    ts = series.timestamps
    vs = series.values
    mean_t = sum(ts) / n
    mean_v = sum(vs) / n
    denominator = sum((t - mean_t) ** 2 for t in ts)
    if denominator == 0:
        return 0.0
    numerator = sum((t - mean_t) * (v - mean_v) for t, v in zip(ts, vs))
    return numerator / denominator


def ewma(series: TimeSeries, alpha: float = 0.3) -> TimeSeries:
    """Exponentially weighted moving average of a series."""
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    result = TimeSeries(f"{series.name}_ewma")
    smoothed: float | None = None
    for sample in series:
        if smoothed is None:
            smoothed = sample.value
        else:
            smoothed = alpha * sample.value + (1 - alpha) * smoothed
        result.append(sample.timestamp, smoothed)
    return result


@dataclass(frozen=True, slots=True)
class TrendReport:
    """Vertices trending within the most recent window."""

    window_events: int
    trending: tuple[tuple[int, int], ...]  # (vertex, gained edges), sorted desc


class TrendingVertices:
    """Online detector of vertices gaining edges unusually fast.

    Counts per-vertex in-edge arrivals within a sliding window of the
    last ``window_events`` graph events; ``result()`` returns the top
    ``top_k`` vertices by recent gain.  This is the use-case-1 "detect
    individuals that attract a lot of new friends" computation.
    """

    name = "trending_vertices"

    def __init__(self, window_events: int = 500, top_k: int = 10):
        if window_events <= 0:
            raise ValueError(f"window_events must be positive, got {window_events}")
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        self.window_events = window_events
        self.top_k = top_k
        self._window: deque[int | None] = deque()
        self._gains: Counter[int] = Counter()

    def ingest(self, event: GraphEvent) -> None:
        target: int | None = None
        if event.event_type is EventType.ADD_EDGE:
            target = event.edge_id.target
            self._gains[target] += 1
        self._window.append(target)
        while len(self._window) > self.window_events:
            expired = self._window.popleft()
            if expired is not None:
                self._gains[expired] -= 1
                if not self._gains[expired]:
                    del self._gains[expired]

    def result(self) -> TrendReport:
        top = self._gains.most_common(self.top_k)
        return TrendReport(
            window_events=self.window_events,
            trending=tuple(top),
        )
