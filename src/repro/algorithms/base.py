"""Computation protocol shared by all Table-1 computations.

The framework does not prescribe algorithm implementations; it lists
*computation goals* and measures latency and accuracy (section 4.3).
To make that measurable uniformly, every computation in this package
implements :class:`Computation`:

* ``compute(graph)`` — the exact batch reference on a snapshot;
* optionally an *online* counterpart implementing
  :class:`OnlineComputation`, which ingests graph events incrementally
  and can produce an (approximate) result at any instant.

The harness correlates online results with marker events and compares
them against the batch reference on the reconstructed snapshot, which
yields the accuracy metric; converging computations additionally expose
an error estimate of their own.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.core.events import GraphEvent
from repro.graph.graph import StreamGraph

__all__ = ["Computation", "OnlineComputation", "relative_error", "rank_error"]


@runtime_checkable
class Computation(Protocol):
    """A batch computation over a graph snapshot."""

    name: str

    def compute(self, graph: StreamGraph) -> Any:
        """Run the exact computation on ``graph`` and return its result."""


@runtime_checkable
class OnlineComputation(Protocol):
    """An incremental computation fed by the event stream.

    ``ingest`` must be called for every graph event in stream order;
    ``result()`` may be called at any time and returns the current
    (possibly approximate) value.
    """

    name: str

    def ingest(self, event: GraphEvent) -> None:
        """Process one graph-changing event."""

    def result(self) -> Any:
        """Current (approximate) result."""


def relative_error(approximate: float, exact: float) -> float:
    """``|approximate - exact| / |exact|``; absolute error when exact == 0."""
    if exact == 0:
        return abs(approximate)
    return abs(approximate - exact) / abs(exact)


def rank_error(
    approximate: dict[int, float], exact: dict[int, float]
) -> float:
    """Median relative error over the keys of ``exact``.

    Vertices missing from ``approximate`` contribute an error of 1.0
    (completely unknown).  Returns 0.0 when ``exact`` is empty.
    """
    if not exact:
        return 0.0
    errors = sorted(
        relative_error(approximate.get(vertex, 0.0), value)
        if vertex in approximate
        else 1.0
        for vertex, value in exact.items()
    )
    mid = len(errors) // 2
    if len(errors) % 2:
        return errors[mid]
    return (errors[mid - 1] + errors[mid]) / 2
