"""Weakly connected components: batch and incremental
(Table 1, "Communities").

The incremental variant maintains a union-find over the undirected
view.  Edge *insertions* are handled online in near-constant time;
removals (edge or vertex) invalidate the union-find and are repaired by
a lazy rebuild — the classic trade-off for decremental connectivity,
surfaced via ``rebuilds`` so experiments can quantify it.
"""

from __future__ import annotations

from repro.core.events import EventType, GraphEvent
from repro.graph.graph import StreamGraph

__all__ = ["WeaklyConnectedComponents", "OnlineWcc", "UnionFind"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._size: dict[int, int] = {}
        self._components = 0

    @property
    def components(self) -> int:
        return self._components

    def add(self, item: int) -> None:
        """Register a new singleton; no-op when already present."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self._components += 1

    def find(self, item: int) -> int:
        """Representative of ``item``'s set.  Raises KeyError if unknown."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._components -= 1
        return True

    def groups(self) -> dict[int, frozenset[int]]:
        """Mapping from representative to its member set."""
        members: dict[int, set[int]] = {}
        for item in self._parent:
            members.setdefault(self.find(item), set()).add(item)
        return {root: frozenset(group) for root, group in members.items()}


class WeaklyConnectedComponents:
    """Batch WCC on the undirected view.

    Returns a dict mapping each vertex to a component label (the
    smallest vertex id in its component, so labels are deterministic).
    """

    name = "wcc"

    def compute(self, graph: StreamGraph) -> dict[int, int]:
        union_find = UnionFind()
        for vertex in graph.vertices():
            union_find.add(vertex)
        for edge in graph.edges():
            union_find.union(edge.source, edge.target)
        label: dict[int, int] = {}
        for root, group in union_find.groups().items():
            smallest = min(group)
            for vertex in group:
                label[vertex] = smallest
        return label


class OnlineWcc:
    """Incrementally maintained weakly connected components.

    Insert-only streams are handled in near-constant amortised time.
    Removals trigger a lazy rebuild on the next ``result()`` /
    ``component_count`` access; ``rebuilds`` counts how often that
    happened.
    """

    name = "online_wcc"

    def __init__(self) -> None:
        self._graph = StreamGraph()
        self._union_find = UnionFind()
        self._dirty = False
        self.rebuilds = 0

    @property
    def graph(self) -> StreamGraph:
        return self._graph

    def ingest(self, event: GraphEvent) -> None:
        event_type = event.event_type
        if event_type is EventType.ADD_VERTEX:
            self._graph.add_vertex(event.vertex_id, event.payload)
            if not self._dirty:
                self._union_find.add(event.vertex_id)
        elif event_type is EventType.ADD_EDGE:
            edge = event.edge_id
            self._graph.add_edge(edge.source, edge.target, event.payload)
            if not self._dirty:
                self._union_find.union(edge.source, edge.target)
        elif event_type is EventType.REMOVE_VERTEX:
            self._graph.remove_vertex(event.vertex_id)
            self._dirty = True
        elif event_type is EventType.REMOVE_EDGE:
            edge = event.edge_id
            self._graph.remove_edge(edge.source, edge.target)
            self._dirty = True
        elif event_type is EventType.UPDATE_VERTEX:
            self._graph.update_vertex(event.vertex_id, event.payload)
        elif event_type is EventType.UPDATE_EDGE:
            edge = event.edge_id
            self._graph.update_edge(edge.source, edge.target, event.payload)

    def _rebuild_if_dirty(self) -> None:
        if not self._dirty:
            return
        self._union_find = UnionFind()
        for vertex in self._graph.vertices():
            self._union_find.add(vertex)
        for edge in self._graph.edges():
            self._union_find.union(edge.source, edge.target)
        self._dirty = False
        self.rebuilds += 1

    @property
    def component_count(self) -> int:
        self._rebuild_if_dirty()
        return self._union_find.components

    def result(self) -> dict[int, int]:
        """Vertex -> component label (smallest member id)."""
        self._rebuild_if_dirty()
        label: dict[int, int] = {}
        for root, group in self._union_find.groups().items():
            smallest = min(group)
            for vertex in group:
                label[vertex] = smallest
        return label
