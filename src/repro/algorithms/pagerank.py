"""PageRank: exact batch iteration and an online incremental variant.

PageRank is the paper's canonical *converging computation* (Table 1,
"Graph properties"): executed on an evolving graph, the accuracy of its
result at any instant is shaped by the duration of the preceding
computation and the extent of recent changes.

Two implementations:

* :class:`PageRank` — the batch reference: power iteration on a
  snapshot until convergence.  Dangling vertices distribute their mass
  uniformly.
* :class:`OnlinePageRank` — an incremental variant that maintains rank
  estimates while ingesting events.  Graph changes mark affected
  vertices dirty; a bounded number of Gauss–Seidel relaxations runs per
  ingested event.  Under load the dirty queue grows and results go
  stale (high relative error); :meth:`OnlinePageRank.drain` relaxes to
  the exact fixed point.  ``work_per_event`` is the latency/accuracy
  trade-off dial.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.core.events import EventType, GraphEvent
from repro.graph.graph import StreamGraph

__all__ = ["PageRank", "OnlinePageRank"]


class PageRank:
    """Batch PageRank by power iteration.

    Returns a dict mapping vertex id to rank; ranks sum to 1.  The
    empty graph yields an empty dict.
    """

    name = "pagerank"

    def __init__(
        self,
        damping: float = 0.85,
        tolerance: float = 1e-10,
        max_iterations: int = 200,
    ):
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {max_iterations}")
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.iterations_run = 0

    def compute(self, graph: StreamGraph) -> dict[int, float]:
        vertices = list(graph.vertices())
        n = len(vertices)
        if not n:
            return {}
        rank = {v: 1.0 / n for v in vertices}
        base = (1.0 - self.damping) / n
        self.iterations_run = 0

        for __ in range(self.max_iterations):
            self.iterations_run += 1
            dangling_mass = sum(
                rank[v] for v in vertices if graph.out_degree(v) == 0
            )
            new_rank = {v: base + self.damping * dangling_mass / n for v in vertices}
            for v in vertices:
                out_degree = graph.out_degree(v)
                if out_degree:
                    share = self.damping * rank[v] / out_degree
                    for successor in graph.successors(v):
                        new_rank[successor] += share
            delta = sum(abs(new_rank[v] - rank[v]) for v in vertices)
            rank = new_rank
            if delta < self.tolerance:
                break
        return rank


class OnlinePageRank:
    """Incremental PageRank with bounded work per ingested event.

    Maintains the PageRank fixed-point equations by asynchronous
    Gauss–Seidel relaxation.  Each topology change marks the directly
    affected vertices dirty; each relaxation of a vertex whose rank
    moves by more than ``threshold`` marks its successors dirty.  Per
    ``ingest`` call at most ``work_per_event`` relaxations run, so
    ingest latency is bounded while accuracy degrades gracefully under
    load.  ``pending_work`` exposes the dirty-queue length (the
    "backlog" signal of Figure 3d); :meth:`drain` converges to the
    exact PageRank of the current graph.
    """

    name = "online_pagerank"

    def __init__(
        self,
        damping: float = 0.85,
        threshold: float = 1e-9,
        work_per_event: int = 32,
        scheduler: "Callable[[int], None] | None" = None,
        relative_threshold: bool = False,
    ):
        if not 0 < damping < 1:
            raise ValueError(f"damping must be in (0, 1), got {damping}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if work_per_event < 0:
            raise ValueError(f"work_per_event must be >= 0, got {work_per_event}")
        self.damping = damping
        self.threshold = threshold
        self.work_per_event = work_per_event
        #: With ``relative_threshold=True`` the effective relaxation
        #: threshold is ``threshold / n`` — i.e. proportional to the mean
        #: rank — so convergence precision is uniform across graph sizes
        #: (cascades deepen as the graph grows instead of dying out).
        self.relative_threshold = relative_threshold
        #: When set, dirty vertices are handed to this callback instead of
        #: the internal queue — used by distributed platform models that
        #: schedule relaxations on their own worker queues.  In scheduler
        #: mode ``propagate``/``drain`` are inert (the queue stays empty)
        #: and the owner must call :meth:`relax` itself.
        self.scheduler = scheduler
        self._graph = StreamGraph()
        self._rank: dict[int, float] = {}
        self._dangling_sum = 0.0
        self._queue: deque[int] = deque()
        self._queued: set[int] = set()

    @property
    def graph(self) -> StreamGraph:
        """The computation's internal graph mirror (read-only use)."""
        return self._graph

    @property
    def pending_work(self) -> int:
        """Number of vertices awaiting relaxation."""
        return len(self._queue)

    # -- dirty-queue management ------------------------------------------

    def _mark(self, vertex: int) -> None:
        if vertex not in self._rank:
            return
        if self.scheduler is not None:
            self.scheduler(vertex)
            return
        if vertex not in self._queued:
            self._queue.append(vertex)
            self._queued.add(vertex)

    def _set_rank(self, vertex: int, value: float) -> None:
        old = self._rank[vertex]
        if self._graph.out_degree(vertex) == 0:
            self._dangling_sum += value - old
        self._rank[vertex] = value

    # -- event ingestion ----------------------------------------------------

    def ingest(self, event: GraphEvent) -> None:
        event_type = event.event_type
        graph = self._graph
        if event_type is EventType.ADD_VERTEX:
            vertex = event.vertex_id
            graph.add_vertex(vertex, event.payload)
            n = graph.vertex_count
            self._rank[vertex] = (1.0 - self.damping) / n
            self._dangling_sum += self._rank[vertex]
            self._mark(vertex)
        elif event_type is EventType.REMOVE_VERTEX:
            vertex = event.vertex_id
            neighbors = graph.neighbors(vertex)
            removed_edges = graph.remove_vertex(vertex)
            old = self._rank.pop(vertex)
            self._queued.discard(vertex)
            self._dangling_sum -= old if not any(
                e.source == vertex for e in removed_edges
            ) else 0.0
            # Sources that lost their last out-edge become dangling.
            for edge in removed_edges:
                if edge.source != vertex and graph.out_degree(edge.source) == 0:
                    self._dangling_sum += self._rank[edge.source]
            for neighbor in neighbors:
                self._mark(neighbor)
        elif event_type is EventType.ADD_EDGE:
            edge = event.edge_id
            was_dangling = graph.out_degree(edge.source) == 0
            graph.add_edge(edge.source, edge.target, event.payload)
            if was_dangling:
                self._dangling_sum -= self._rank[edge.source]
            # The source's out-distribution changed: every successor's
            # equation changed.
            for successor in graph.successors(edge.source):
                self._mark(successor)
        elif event_type is EventType.REMOVE_EDGE:
            edge = event.edge_id
            graph.remove_edge(edge.source, edge.target)
            if graph.out_degree(edge.source) == 0:
                self._dangling_sum += self._rank[edge.source]
            self._mark(edge.target)
            for successor in graph.successors(edge.source):
                self._mark(successor)
        elif event_type is EventType.UPDATE_VERTEX:
            graph.update_vertex(event.vertex_id, event.payload)
        elif event_type is EventType.UPDATE_EDGE:
            edge = event.edge_id
            graph.update_edge(edge.source, edge.target, event.payload)
        self.propagate(self.work_per_event)

    # -- relaxation -------------------------------------------------------

    def _effective_threshold(self) -> float:
        if self.relative_threshold:
            return self.threshold / max(1, self._graph.vertex_count)
        return self.threshold

    def relax(self, vertex: int) -> bool:
        """Public single-vertex relaxation (for scheduler-mode owners)."""
        return self._relax(vertex)

    def _relax(self, vertex: int) -> bool:
        """Recompute one vertex's equation; True if its rank moved."""
        graph = self._graph
        n = graph.vertex_count
        if not n or vertex not in self._rank:
            return False
        incoming = 0.0
        for predecessor in graph.predecessors(vertex):
            incoming += self._rank[predecessor] / graph.out_degree(predecessor)
        dangling = self._dangling_sum
        is_dangling = graph.out_degree(vertex) == 0
        if is_dangling:
            dangling -= self._rank[vertex]
        # r(v) = (1-d)/n + d*(incoming + D/n); for dangling v the own-mass
        # self term is solved in closed form.
        numerator = (1.0 - self.damping) / n + self.damping * (
            incoming + dangling / n
        )
        if is_dangling:
            new = numerator / (1.0 - self.damping / n)
        else:
            new = numerator
        if abs(new - self._rank[vertex]) <= self._effective_threshold():
            return False
        self._set_rank(vertex, new)
        for successor in graph.successors(vertex):
            self._mark(successor)
        return True

    def propagate(self, max_relaxations: int) -> int:
        """Run up to ``max_relaxations`` relaxations; returns work done."""
        done = 0
        while self._queue and done < max_relaxations:
            vertex = self._queue.popleft()
            self._queued.discard(vertex)
            self._relax(vertex)
            done += 1
        return done

    def drain(self, max_sweeps: int = 200) -> int:
        """Relax until convergence on the current graph.

        Empties the dirty queue, then performs verification sweeps over
        all vertices until one full sweep changes nothing (or
        ``max_sweeps`` is hit).  Returns total relaxations performed.
        """
        total = 0
        for __ in range(max_sweeps):
            while self._queue:
                total += self.propagate(4096)
            changed = False
            for vertex in list(self._graph.vertices()):
                if self._relax(vertex):
                    changed = True
                total += 1
            if not changed and not self._queue:
                break
        return total

    def result(self) -> dict[int, float]:
        """Current rank estimates, normalised to sum to 1."""
        total = sum(self._rank.values())
        if total <= 0:
            n = self._graph.vertex_count
            return {v: 1.0 / n for v in self._rank} if n else {}
        return {v: value / total for v, value in self._rank.items()}
