"""Cycle detection (Table 1, "Graph properties").

Batch detection of directed cycles via iterative DFS coloring, plus a
helper that extracts one concrete cycle for diagnostics.  These back
the *correctness* metric of section 4.3: cycle existence is a
dichotomous result.
"""

from __future__ import annotations

from repro.graph.graph import StreamGraph

__all__ = ["CycleDetection", "find_cycle", "has_cycle"]


def has_cycle(graph: StreamGraph) -> bool:
    """Whether the directed graph contains a cycle."""
    return find_cycle(graph) is not None


def find_cycle(graph: StreamGraph) -> list[int] | None:
    """One directed cycle as a vertex list, or None when acyclic.

    The returned list is the cycle's vertices in order; the edge from
    the last element back to the first closes the cycle.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {v: WHITE for v in graph.vertices()}
    parent: dict[int, int | None] = {}

    for root in graph.vertices():
        if color[root] != WHITE:
            continue
        stack: list[tuple[int, iter]] = [(root, iter(sorted(graph.successors(root))))]
        color[root] = GRAY
        parent[root] = None
        while stack:
            vertex, successors = stack[-1]
            advanced = False
            for successor in successors:
                if color[successor] == WHITE:
                    color[successor] = GRAY
                    parent[successor] = vertex
                    stack.append(
                        (successor, iter(sorted(graph.successors(successor))))
                    )
                    advanced = True
                    break
                if color[successor] == GRAY:
                    # Found a back edge vertex -> successor: unwind.
                    cycle = [vertex]
                    node = vertex
                    while node != successor:
                        node = parent[node]  # type: ignore[assignment]
                        cycle.append(node)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[vertex] = BLACK
                stack.pop()
    return None


class CycleDetection:
    """Batch computation returning True when a directed cycle exists."""

    name = "cycle_detection"

    def compute(self, graph: StreamGraph) -> bool:
        return has_cycle(graph)
