"""Online sampling over graph streams (Table 1, "Temporal analyses").

Reservoir sampling of stream events or entities: at any instant the
reservoir is a uniform random sample of everything seen so far, which
enables approximate answers about the stream's history in O(k) memory.
"""

from __future__ import annotations

import random
from typing import Generic, Iterable, TypeVar

from repro.core.events import EventType, GraphEvent

T = TypeVar("T")

__all__ = ["ReservoirSampler", "VertexSampler"]


class ReservoirSampler(Generic[T]):
    """Classic Algorithm-R reservoir sampling.

    After ``offer``-ing n items, ``sample`` is a uniform random subset
    of min(n, capacity) of them.
    """

    def __init__(self, capacity: int, seed: int = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._sample: list[T] = []
        self._seen = 0

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def sample(self) -> list[T]:
        """The current sample (a copy)."""
        return list(self._sample)

    def offer(self, item: T) -> None:
        self._seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(item)
            return
        index = self._rng.randrange(self._seen)
        if index < self.capacity:
            self._sample[index] = item

    def offer_all(self, items: Iterable[T]) -> None:
        for item in items:
            self.offer(item)


class VertexSampler:
    """Uniform online sample of *live* vertices from an event stream.

    Maintains a reservoir over added vertices and evicts removed ones,
    so ``result()`` is (approximately) a uniform sample of the vertices
    currently in the graph.
    """

    name = "online_vertex_sample"

    def __init__(self, capacity: int = 100, seed: int = 0):
        self._reservoir = ReservoirSampler[int](capacity, seed)
        self._removed: set[int] = set()

    def ingest(self, event: GraphEvent) -> None:
        if event.event_type is EventType.ADD_VERTEX:
            self._removed.discard(event.vertex_id)
            self._reservoir.offer(event.vertex_id)
        elif event.event_type is EventType.REMOVE_VERTEX:
            self._removed.add(event.vertex_id)

    def result(self) -> list[int]:
        return [v for v in self._reservoir.sample if v not in self._removed]
