"""Computations for stream-based graph systems (paper Table 1).

Every computation category from the paper's Table 1 is implemented with
a batch reference and, where meaningful, an online/incremental variant:

========================  ==================================================
Table-1 category          Implementations
========================  ==================================================
Graph statistics          :class:`GlobalProperties`, :class:`DegreeDistribution`,
                          :class:`OnlineDegreeDistribution`
Graph properties          :class:`PageRank`, :class:`OnlinePageRank`,
                          :class:`CycleDetection`
Routing & traversals      :class:`BreadthFirstSearch`, :class:`SpanningTree`,
                          :class:`BellmanFord`, :class:`OnlineBellmanFord`,
                          :class:`FloydWarshall`,
                          :class:`ExactDiameter`, :class:`EstimatedDiameter`
Graph theory              :class:`GreedyColoring`, :class:`OnlineColoring`,
                          :class:`TriangleCount`, :class:`StreamingTriangleEstimator`
Communities               :class:`WeaklyConnectedComponents`, :class:`OnlineWcc`,
                          :class:`LabelPropagation`, :class:`VertexKMeans`
Temporal analyses         :class:`TrendingVertices`, :class:`ReservoirSampler`,
                          :class:`VertexSampler`, :func:`linear_trend`
========================  ==================================================
"""

from repro.algorithms.base import (
    Computation,
    OnlineComputation,
    rank_error,
    relative_error,
)
from repro.algorithms.coloring import GreedyColoring, OnlineColoring, is_proper_coloring
from repro.algorithms.communities import LabelPropagation, community_sizes, modularity
from repro.algorithms.components import OnlineWcc, UnionFind, WeaklyConnectedComponents
from repro.algorithms.cycles import CycleDetection, find_cycle, has_cycle
from repro.algorithms.degree import (
    DegreeDistribution,
    GlobalProperties,
    OnlineDegreeDistribution,
)
from repro.algorithms.diameter import EstimatedDiameter, ExactDiameter
from repro.algorithms.kmeans import VertexKMeans, vertex_features
from repro.algorithms.pagerank import OnlinePageRank, PageRank
from repro.algorithms.sampling import ReservoirSampler, VertexSampler
from repro.algorithms.shortest_paths import (
    BellmanFord,
    FloydWarshall,
    NegativeCycleError,
    OnlineBellmanFord,
    edge_weight,
)
from repro.algorithms.traversal import (
    BreadthFirstSearch,
    SpanningTree,
    bfs_levels,
    reachable_from,
)
from repro.algorithms.trends import TrendingVertices, TrendReport, ewma, linear_trend
from repro.algorithms.triangles import StreamingTriangleEstimator, TriangleCount

__all__ = [
    "Computation",
    "OnlineComputation",
    "relative_error",
    "rank_error",
    "GlobalProperties",
    "DegreeDistribution",
    "OnlineDegreeDistribution",
    "PageRank",
    "OnlinePageRank",
    "CycleDetection",
    "has_cycle",
    "find_cycle",
    "BreadthFirstSearch",
    "SpanningTree",
    "bfs_levels",
    "reachable_from",
    "BellmanFord",
    "OnlineBellmanFord",
    "FloydWarshall",
    "NegativeCycleError",
    "edge_weight",
    "ExactDiameter",
    "EstimatedDiameter",
    "GreedyColoring",
    "OnlineColoring",
    "is_proper_coloring",
    "TriangleCount",
    "StreamingTriangleEstimator",
    "WeaklyConnectedComponents",
    "OnlineWcc",
    "UnionFind",
    "LabelPropagation",
    "community_sizes",
    "modularity",
    "VertexKMeans",
    "vertex_features",
    "TrendingVertices",
    "TrendReport",
    "linear_trend",
    "ewma",
    "ReservoirSampler",
    "VertexSampler",
]
