"""Triangle counting: exact batch count and a streaming estimator
(Table 1, "Graph theory").

Triangle count is the paper's example of a computation that "always
yields a definite result" but whose online value may be stale once
provided.  The streaming estimator samples edges reservoir-style
(TRIÈST-BASE style) and scales observed sample triangles to an unbiased
global estimate — a classic latency/accuracy trade-off instrument.
"""

from __future__ import annotations

import random

from repro.core.events import EventType, GraphEvent
from repro.graph.graph import StreamGraph

__all__ = ["TriangleCount", "StreamingTriangleEstimator"]


class TriangleCount:
    """Exact undirected triangle count on a snapshot.

    Each unordered vertex triple with all three connections (in any
    direction) counts once.
    """

    name = "triangle_count"

    def compute(self, graph: StreamGraph) -> int:
        # Undirected neighbour sets, then count via edge-iterator method.
        neighbors: dict[int, set[int]] = {
            v: set(graph.neighbors(v)) for v in graph.vertices()
        }
        count = 0
        for v, nv in neighbors.items():
            for u in nv:
                if u <= v:
                    continue
                # Common neighbours w > u avoid double counting.
                common = nv & neighbors[u]
                count += sum(1 for w in common if w > u)
        return count


class StreamingTriangleEstimator:
    """Reservoir-sampled triangle estimate over an insert-only stream.

    Maintains a fixed-size edge reservoir; on each arriving edge,
    triangles closed within the sample are counted and scaled by the
    sampling probability, giving an unbiased running estimate.  Edge
    and vertex removals are handled conservatively by dropping affected
    sample edges (estimates can drift on heavy-removal streams — this
    estimator targets growing graphs, like all TRIÈST-style methods).
    """

    name = "streaming_triangles"

    def __init__(self, reservoir_size: int = 2000, seed: int = 0):
        if reservoir_size < 3:
            raise ValueError(
                f"reservoir_size must be >= 3, got {reservoir_size}"
            )
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._sample: list[tuple[int, int]] = []
        self._sample_set: set[tuple[int, int]] = set()
        self._neighbors: dict[int, set[int]] = {}
        self._seen_edges = 0
        self._estimate = 0.0

    @property
    def seen_edges(self) -> int:
        return self._seen_edges

    def _sample_neighbors(self, vertex: int) -> set[int]:
        return self._neighbors.get(vertex, set())

    def _add_to_sample(self, edge: tuple[int, int]) -> None:
        self._sample.append(edge)
        self._sample_set.add(edge)
        a, b = edge
        self._neighbors.setdefault(a, set()).add(b)
        self._neighbors.setdefault(b, set()).add(a)

    def _remove_from_sample(self, edge: tuple[int, int]) -> None:
        self._sample.remove(edge)
        self._sample_set.discard(edge)
        a, b = edge
        self._neighbors[a].discard(b)
        self._neighbors[b].discard(a)

    def ingest(self, event: GraphEvent) -> None:
        event_type = event.event_type
        if event_type is EventType.ADD_EDGE:
            edge_id = event.edge_id
            edge = tuple(sorted((edge_id.source, edge_id.target)))
            if edge in self._sample_set:
                return
            self._seen_edges += 1
            # Count triangles this edge closes within the current sample,
            # weighted by the inverse probability both sample edges are
            # present (TRIÈST-BASE increment).
            t = self._seen_edges
            k = self.reservoir_size
            if t <= k:
                weight = 1.0
            else:
                weight = max(1.0, ((t - 1) * (t - 2)) / (k * (k - 1)))
            common = self._sample_neighbors(edge[0]) & self._sample_neighbors(
                edge[1]
            )
            self._estimate += weight * len(common)
            # Reservoir update.
            if len(self._sample) < k:
                self._add_to_sample(edge)
            elif self._rng.random() < k / t:
                victim = self._sample[self._rng.randrange(len(self._sample))]
                self._remove_from_sample(victim)
                self._add_to_sample(edge)
        elif event_type is EventType.REMOVE_EDGE:
            edge_id = event.edge_id
            edge = tuple(sorted((edge_id.source, edge_id.target)))
            if edge in self._sample_set:
                self._remove_from_sample(edge)
        elif event_type is EventType.REMOVE_VERTEX:
            vertex = event.vertex_id
            doomed = [e for e in self._sample if vertex in e]
            for edge in doomed:
                self._remove_from_sample(edge)
        # Vertex adds and state updates do not affect triangle structure.

    def result(self) -> float:
        """Current estimate of the global triangle count."""
        return self._estimate
