"""Diameter estimation (Table 1, "Routing & traversals").

The exact diameter needs all-pairs BFS (O(n·m)); the estimator runs
BFS from a vertex sample plus a double-sweep lower bound, which is the
kind of periodic estimation the paper suggests for producing
time-series data on graph properties.
"""

from __future__ import annotations

import random

from repro.algorithms.traversal import bfs_levels
from repro.graph.graph import StreamGraph

__all__ = ["ExactDiameter", "EstimatedDiameter"]


def _eccentricity(graph: StreamGraph, source: int) -> int:
    """Largest finite hop distance from ``source`` (undirected view)."""
    levels = bfs_levels(graph, source, directed=False)
    return max(levels.values(), default=0)


class ExactDiameter:
    """Exact diameter of the undirected view (largest finite distance).

    Disconnected pairs are ignored; the empty graph has diameter 0.
    """

    name = "diameter"

    def compute(self, graph: StreamGraph) -> int:
        best = 0
        for vertex in graph.vertices():
            best = max(best, _eccentricity(graph, vertex))
        return best


class EstimatedDiameter:
    """Sampled double-sweep diameter estimate (a lower bound).

    Runs ``samples`` double sweeps: BFS from a random vertex, then BFS
    from the farthest vertex found; the largest eccentricity seen is
    the estimate.  Never exceeds the exact diameter.
    """

    name = "diameter_estimate"

    def __init__(self, samples: int = 4, seed: int = 0):
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        self.samples = samples
        self.seed = seed

    def compute(self, graph: StreamGraph) -> int:
        vertices = list(graph.vertices())
        if not vertices:
            return 0
        rng = random.Random(self.seed)
        best = 0
        for __ in range(self.samples):
            start = vertices[rng.randrange(len(vertices))]
            levels = bfs_levels(graph, start, directed=False)
            if not levels:
                continue
            farthest = max(levels, key=lambda v: (levels[v], v))
            best = max(best, levels[farthest])
            second = bfs_levels(graph, farthest, directed=False)
            best = max(best, max(second.values(), default=0))
        return best
