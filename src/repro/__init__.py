"""GraphTides reproduction: a framework for evaluating stream-based
graph processing platforms.

Reproduces Erb et al., *GraphTides: A Framework for Evaluating
Stream-based Graph Processing Platforms* (GRADES-NDA'18).  The package
provides:

* :mod:`repro.core` — the evaluation framework: event/stream model,
  stream generator, replayers (simulated and live), fault injection,
  metrics, loggers, collector, test harness, methodology, analyses;
* :mod:`repro.graph` — the directed stateful graph substrate;
* :mod:`repro.gen` — streaming graph generators (BA, ER, R-MAT, SNB-like);
* :mod:`repro.algorithms` — every Table-1 computation (batch + online);
* :mod:`repro.sim` — the discrete-event simulation kernel;
* :mod:`repro.platforms` — simulated systems under test (in-memory
  reference, Weaver-like transactional store, Chronograph-like
  distributed platform).
"""

from repro.core.events import EventType, GraphEvent, MarkerEvent, PauseEvent, SpeedEvent
from repro.core.generator import GeneratorRules, StreamGenerator
from repro.core.harness import HarnessConfig, InternalProbeSpec, RunResult, TestHarness
from repro.core.stream import GraphStream
from repro.errors import GraphTidesError
from repro.graph.graph import StreamGraph
from repro.platforms import ChronoLikePlatform, InMemoryPlatform, WeaverLikePlatform

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "EventType",
    "GraphEvent",
    "MarkerEvent",
    "SpeedEvent",
    "PauseEvent",
    "GraphStream",
    "StreamGraph",
    "GeneratorRules",
    "StreamGenerator",
    "TestHarness",
    "HarnessConfig",
    "InternalProbeSpec",
    "RunResult",
    "GraphTidesError",
    "InMemoryPlatform",
    "WeaverLikePlatform",
    "ChronoLikePlatform",
]
