"""A benchmark suite on top of the framework (the paper's future work).

Section 6: "Our long-term goal is to develop GraphTides into a
benchmark suite — similar to LDBC Graphalytics, but for stream-based
analytics."  This module provides that layer: a standardized matrix of
named workloads and platforms, executed with repetitions through the
test harness, aggregated per the section-4.5 methodology, and rendered
as a comparison report with CI95 verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.analysis import reflection_latency_profile
from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.methodology import ComparisonVerdict
from repro.core.metrics import Aggregate
from repro.core.shaping import with_periodic_markers
from repro.core.models import (
    BlockchainRules,
    SocialNetworkRules,
    UniformRules,
    WeaverTable3Rules,
)
from repro.core.stream import GraphStream
from repro.errors import MethodologyError
from repro.platforms.base import Platform

__all__ = [
    "WorkloadSpec",
    "STANDARD_WORKLOADS",
    "SuiteCell",
    "SuiteReport",
    "BenchmarkSuite",
]


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """A named, reproducible workload definition.

    ``build(seed)`` returns the stream for one repetition; distinct
    seeds give statistically independent streams of the same
    characteristics.  ``rate`` is the replay rate the suite drives the
    platform at.
    """

    name: str
    build: Callable[[int], GraphStream]
    rate: float
    description: str = ""


def _rules_workload(name, rules_factory, rounds, rate, description):
    def build(seed: int) -> GraphStream:
        return StreamGenerator(
            rules_factory(), rounds=rounds, seed=seed, emit_phase_marker=False
        ).generate()

    return WorkloadSpec(name=name, build=build, rate=rate, description=description)


#: The suite's standard palette, spanning the paper's workload axes:
#: uniform churn, social growth, Zipf-skewed updates, and micro-batches.
STANDARD_WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        _rules_workload(
            "uniform-small", UniformRules, 2_000, 5_000,
            "mixed operations, uniform selections",
        ),
        _rules_workload(
            "uniform-medium", UniformRules, 10_000, 10_000,
            "mixed operations, uniform selections",
        ),
        _rules_workload(
            "social-growth", SocialNetworkRules, 6_000, 5_000,
            "preferential-attachment follows + activity updates",
        ),
        _rules_workload(
            "zipf-churn",
            lambda: WeaverTable3Rules(n=300, m0=15, m=4),
            5_000,
            5_000,
            "Table-3 mix with Zipf-degree selections",
        ),
        _rules_workload(
            "ledger-batches", BlockchainRules, 6_000, 8_000,
            "transaction micro-batches over a wallet graph",
        ),
    )
}


@dataclass(slots=True)
class SuiteCell:
    """Aggregated outcome of one (platform, workload) cell.

    ``result_latency`` aggregates per-watermark reflection latencies
    (section 4.3's result-latency metric) over all repetitions; it is
    ``None`` when no watermark was reflected (platform never caught up).
    """

    platform: str
    workload: str
    throughput: Aggregate
    cpu_load: Aggregate
    result_latency: Aggregate | None
    drained_runs: int
    repetitions: int

    @property
    def all_drained(self) -> bool:
        return self.drained_runs == self.repetitions


@dataclass(slots=True)
class SuiteReport:
    """All cells of a suite run plus rendering and comparison helpers."""

    cells: list[SuiteCell] = field(default_factory=list)
    repetitions: int = 0

    def cell(self, platform: str, workload: str) -> SuiteCell:
        for cell in self.cells:
            if cell.platform == platform and cell.workload == workload:
                return cell
        raise KeyError(f"no cell ({platform}, {workload})")

    def platforms(self) -> list[str]:
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.platform, None)
        return list(seen)

    def workloads(self) -> list[str]:
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.workload, None)
        return list(seen)

    def compare_platforms(self, a: str, b: str, workload: str) -> str:
        """CI95 throughput verdict between two platforms on a workload.

        Uses the confidence-interval overlap rule of section 4.5 on the
        cells' aggregated throughput.
        """
        cell_a = self.cell(a, workload)
        cell_b = self.cell(b, workload)
        if cell_a.throughput.overlaps(cell_b.throughput):
            return ComparisonVerdict.INDISTINGUISHABLE
        if cell_a.throughput.mean > cell_b.throughput.mean:
            return ComparisonVerdict.A_BETTER
        return ComparisonVerdict.B_BETTER

    def render(self) -> str:
        """Human-readable comparison table."""
        lines = [
            f"GraphTides suite — {self.repetitions} repetitions per cell",
            f"{'platform':<14} {'workload':<16} {'throughput':>12} "
            f"{'CI95':>21} {'p95 lat':>9} {'cpu%':>6} {'ok':>4}",
        ]
        for cell in self.cells:
            ci = f"[{cell.throughput.ci_low:.0f}, {cell.throughput.ci_high:.0f}]"
            latency = (
                f"{cell.result_latency.p95:.3f}s"
                if cell.result_latency is not None
                else "n/a"
            )
            lines.append(
                f"{cell.platform:<14} {cell.workload:<16} "
                f"{cell.throughput.mean:>12.0f} {ci:>21} "
                f"{latency:>9} {cell.cpu_load.mean:>6.1f} "
                f"{'yes' if cell.all_drained else 'NO':>4}"
            )
        return "\n".join(lines)


class BenchmarkSuite:
    """Runs platforms against the standard workload palette.

    ``platform_factories`` maps a display name to a zero-argument
    factory (platforms are single-use: one fresh instance per run).
    """

    def __init__(
        self,
        platform_factories: dict[str, Callable[[], Platform]],
        workloads: Sequence[WorkloadSpec] | None = None,
        repetitions: int = 3,
        level: int = 0,
        log_interval: float = 0.5,
    ):
        if not platform_factories:
            raise MethodologyError("suite needs at least one platform")
        if repetitions < 2:
            raise MethodologyError("suite needs >= 2 repetitions for CIs")
        self.platform_factories = dict(platform_factories)
        if workloads is None:
            workloads = list(STANDARD_WORKLOADS.values())
        self.workloads = list(workloads)
        if not self.workloads:
            raise MethodologyError("suite needs at least one workload")
        self.repetitions = repetitions
        self.level = level
        self.log_interval = log_interval

    def run(self) -> SuiteReport:
        """Execute the full matrix and return the aggregated report."""
        report = SuiteReport(repetitions=self.repetitions)
        for workload in self.workloads:
            # One stream per repetition, shared across platforms so
            # every system is measured with the exact same input
            # (the benchmark property of section 2.3).  Periodic
            # watermarks enable the result-latency profile.
            streams = []
            for seed in range(self.repetitions):
                stream = workload.build(seed)
                graph_events = sum(1 for __ in stream.graph_events())
                every = max(1, graph_events // 10)
                streams.append(with_periodic_markers(stream, every=every))
            for platform_name, factory in self.platform_factories.items():
                throughputs: list[float] = []
                cpu_means: list[float] = []
                latencies: list[float] = []
                drained = 0
                for stream in streams:
                    platform = factory()
                    result = TestHarness(
                        platform,
                        stream,
                        HarnessConfig(
                            rate=workload.rate,
                            level=min(self.level, platform.evaluation_level),
                            log_interval=self.log_interval,
                        ),
                        query_probes={
                            "events_reflected": lambda p: float(
                                p.events_processed()
                            ),
                        },
                    ).run()
                    throughputs.append(
                        result.events_processed / result.duration
                        if result.duration
                        else 0.0
                    )
                    cpu_series = result.log.filter(metric="cpu_load")
                    values = [r.value for r in cpu_series]
                    cpu_means.append(
                        sum(values) / len(values) if values else 0.0
                    )
                    latencies.extend(
                        reflection_latency_profile(
                            result.log, "wm", "events_reflected"
                        )
                    )
                    drained += int(result.drained)
                report.cells.append(
                    SuiteCell(
                        platform=platform_name,
                        workload=workload.name,
                        throughput=Aggregate.of(throughputs),
                        cpu_load=Aggregate.of(cpu_means),
                        result_latency=(
                            Aggregate.of(latencies) if latencies else None
                        ),
                        drained_runs=drained,
                        repetitions=self.repetitions,
                    )
                )
        return report
