"""Command-line interface: generate streams, replay them, run experiments.

Subcommands::

    graphtides generate --model social --rounds 10000 -o stream.csv
    graphtides inspect stream.csv
    graphtides replay stream.csv --rate 20000 --transport pipe
    graphtides experiment fig3a|fig3b|fig3c|fig3d [--scale 0.05]
    graphtides trace result.jsonl -o trace.json [--validate]
    graphtides fuzz run --seed 42 --budget 50 [--corpus corpus]
    graphtides fuzz minimize repro.csv -o minimal.csv
    graphtides fuzz replay --corpus corpus
    graphtides perf record BENCH_pipeline.json
    graphtides perf diff [--db perf/perfdb.jsonl]
    graphtides perf log
"""

from __future__ import annotations

import argparse
import sys

from repro.core.generator import StreamGenerator
from repro.core.models import (
    BlockchainRules,
    DdosTrafficRules,
    SocialNetworkRules,
    UniformRules,
    WeaverTable3Rules,
)
from repro.core.stream import GraphStream
from repro.graph.builders import build_graph

__all__ = ["main", "build_parser"]

_MODELS = {
    "uniform": UniformRules,
    "social": SocialNetworkRules,
    "ddos": DdosTrafficRules,
    "blockchain": BlockchainRules,
    "weaver-table3": WeaverTable3Rules,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the ``graphtides`` argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="graphtides",
        description="GraphTides: evaluate stream-based graph processing platforms",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a graph stream file")
    gen.add_argument("--model", choices=sorted(_MODELS), default="uniform")
    gen.add_argument("--rounds", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--format", choices=("csv", "binary"), default="csv",
        help="output stream format: CSV lines or the length-prefixed "
        "GTB1 binary frame format",
    )
    gen.add_argument("-o", "--output", required=True)

    ins = sub.add_parser("inspect", help="print stream statistics")
    ins.add_argument("stream")

    rep = sub.add_parser("replay", help="replay a stream file (live, wall clock)")
    rep.add_argument("stream")
    rep.add_argument("--rate", type=float, default=10_000.0)
    rep.add_argument(
        "--transport",
        choices=("stdout", "pipe", "tcp", "shm"),
        default="stdout",
        help="stdout/pipe write the wire to standard output; tcp "
        "connects to --host/--port; shm attaches to shared-memory ring "
        "segment(s) named by --shm-name (created by the receiving "
        "side, e.g. a ShmReceiver)",
    )
    rep.add_argument("--host", default="127.0.0.1")
    rep.add_argument("--port", type=int, default=9999)
    rep.add_argument(
        "--shm-name", default=None,
        help="shm ring segment name(s) to attach, comma-separated, one "
        "per worker (required with --transport shm)",
    )
    rep.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="token-bucket burst size: events emitted per wakeup "
        "(1 = per-event pacing; larger values raise the saturation rate)",
    )
    scale = rep.add_argument_group(
        "scale-out",
        "process-parallel sharded replay (repro.core.sharding): the "
        "stream is partitioned into marker-aligned shards, each worker "
        "replays its shard at rate/N",
    )
    scale.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = classic single-process replay); "
        "with --transport stdout all workers share the same pipe, so "
        "prefer tcp for exact downstream counting",
    )
    scale.add_argument(
        "--shard-by", choices=("round-robin", "hash"), default="round-robin",
        help="graph-event partitioning: round-robin balances exactly; "
        "hash keeps each vertex's events on one shard (may skew)",
    )
    scale.add_argument(
        "--emission", choices=("events", "decode", "raw"), default="events",
        help="worker emission path: parsed events (the LiveReplayer), "
        "decode-in-worker (each worker decodes its shard locally and "
        "emits the stored bytes verbatim), or zero-copy raw byte runs "
        "via mmap (decode/raw have no checkpoint resume)",
    )
    scale.add_argument(
        "--format", choices=("auto", "csv", "binary"), default="auto",
        help="shard wire format: auto keeps the source format; csv or "
        "binary transcodes the shards during partitioning",
    )
    retry = rep.add_argument_group(
        "resilient delivery",
        "retry/backoff, circuit breaking and checkpoint resume "
        "(repro.core.resilience)",
    )
    retry.add_argument(
        "--retry-attempts", type=int, default=1,
        help="delivery attempts per batch (1 = no retries)",
    )
    retry.add_argument(
        "--retry-base-delay", type=float, default=0.01,
        help="first backoff delay in seconds (doubles per retry, jittered)",
    )
    retry.add_argument(
        "--retry-deadline", type=float, default=None,
        help="overall per-batch delivery deadline in seconds",
    )
    retry.add_argument(
        "--breaker-threshold", type=int, default=0,
        help="consecutive failures that open the circuit breaker "
        "(0 = no breaker)",
    )
    retry.add_argument(
        "--breaker-recovery", type=float, default=1.0,
        help="seconds the breaker stays open before probing again",
    )
    retry.add_argument(
        "--max-resumes", type=int, default=0,
        help="checkpoint resumes after a delivery failure "
        "(resumes from the last marker boundary)",
    )
    chaos = rep.add_argument_group(
        "chaos injection",
        "seeded runtime faults injected into the delivery path "
        "(deterministic per --chaos-seed)",
    )
    chaos.add_argument(
        "--chaos-send-failure", type=float, default=0.0,
        help="probability a send operation fails before delivering",
    )
    chaos.add_argument(
        "--chaos-reset", type=float, default=0.0,
        help="probability of a connection reset after an unacknowledged send",
    )
    chaos.add_argument(
        "--chaos-partial", type=float, default=0.0,
        help="probability a batch is only partially delivered",
    )
    chaos.add_argument(
        "--chaos-latency", type=float, default=0.0,
        help="probability of injected latency on a send",
    )
    chaos.add_argument(
        "--chaos-latency-seconds", type=float, default=0.005,
        help="injected latency duration in seconds",
    )
    chaos.add_argument("--chaos-seed", type=int, default=0)
    tracing = rep.add_argument_group(
        "tracing",
        "end-to-end event tracing on the unified trace clock "
        "(repro.core.tracing)",
    )
    tracing.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON of the replay to PATH",
    )
    tracing.add_argument(
        "--trace-sample", type=int, default=1024, metavar="N",
        help="record spans for 1-in-N events (counters stay exact; "
        "the Dapper-style default keeps overhead low at saturation)",
    )

    exp = sub.add_parser("experiment", help="run one of the paper's experiments")
    exp.add_argument(
        "figure", choices=("fig3a", "fig3b", "fig3c", "fig3d", "robustness")
    )
    exp.add_argument(
        "--scale", type=float, default=0.05,
        help="fraction of the paper-scale configuration (1.0 = full)",
    )
    exp.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="robustness only: after the rate sweep, replay the fuzz "
        "regression corpus under DIR and fail on any verdict mismatch",
    )

    run = sub.add_parser(
        "run", help="evaluate a built-in platform against a stream file"
    )
    run.add_argument("stream")
    run.add_argument(
        "--platform",
        choices=("inmem", "weaver", "weaver-batched", "chronograph",
                 "kineograph", "graphtau"),
        default="inmem",
    )
    run.add_argument("--rate", type=float, default=2_000.0)
    run.add_argument("--level", type=int, choices=(0, 1, 2), default=0)
    run.add_argument(
        "--bundle", default=None,
        help="package the run as a Popper-style bundle in this directory",
    )
    run.add_argument("--experiment-id", default="run-001")
    run.add_argument(
        "--fault-schedule", default=None,
        help="JSON runtime fault schedule (from 'graphtides faults "
        "--crash ... --schedule-out'): timed platform crash/recovery",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="trace the run and write Chrome trace_event JSON to PATH",
    )
    run.add_argument(
        "--trace-sample", type=int, default=1, metavar="N",
        help="record spans for 1-in-N events (simulated runs default "
        "to tracing every event)",
    )

    cnv = sub.add_parser(
        "convert",
        help="convert an edge-list file into a graph stream, or "
        "transcode a stream file between CSV and binary (--to)",
    )
    cnv.add_argument(
        "edgelist",
        metavar="input",
        help="edge-list file (src dst [weight] per line); with --to, a "
        "stream file in either format (autodetected)",
    )
    cnv.add_argument("-o", "--output", required=True)
    cnv.add_argument(
        "--shuffle-seed", type=int, default=None,
        help="randomise edge arrival order with this seed "
        "(edge-list mode only)",
    )
    cnv.add_argument(
        "--to", choices=("csv", "binary"), default=None,
        help="stream transcode mode: treat INPUT as a stream file and "
        "rewrite it in this format (streaming, constant memory)",
    )

    shp = sub.add_parser(
        "shape", help="insert rate-control events into a stream"
    )
    shp.add_argument("stream")
    shp.add_argument("-o", "--output", required=True)
    shp.add_argument("--burst", nargs=3, type=float, metavar=("START", "LEN", "FACTOR"),
                     help="burst: FACTORx speed for LEN events from event START")
    shp.add_argument("--wave", nargs=3, type=float, metavar=("PERIOD", "HIGH", "LOW"),
                     help="square wave: alternate HIGH/LOW factors every PERIOD events")
    shp.add_argument("--ramp", nargs=3, type=float, metavar=("STEPS", "FROM", "TO"),
                     help="stepwise ramp from factor FROM to TO over STEPS phases")
    shp.add_argument("--pause", nargs=2, type=float, metavar=("AFTER", "SECONDS"),
                     help="pause for SECONDS after AFTER events")

    flt = sub.add_parser(
        "faults",
        help="derive a faulty stream (drop/duplicate/reorder) and/or "
        "emit a runtime crash schedule",
    )
    flt.add_argument("stream")
    flt.add_argument("-o", "--output", required=True)
    flt.add_argument("--drop", type=float, default=0.0)
    flt.add_argument("--duplicate", type=float, default=0.0)
    flt.add_argument("--shuffle-window", type=int, default=0)
    flt.add_argument("--seed", type=int, default=0)
    flt.add_argument(
        "--crash", action="append", default=[], metavar="PROCESS:AT:DURATION",
        help="runtime fault: crash processes matching PROCESS at AT "
        "simulated seconds for DURATION seconds (repeatable)",
    )
    flt.add_argument(
        "--schedule-out", default=None,
        help="write the --crash entries as a JSON FaultSchedule for "
        "'graphtides run --fault-schedule'",
    )

    plo = sub.add_parser(
        "plot", help="ASCII-plot a metric from a result log (JSONL)"
    )
    plo.add_argument("resultlog", help="result.jsonl file (e.g. from a bundle)")
    plo.add_argument("--metric", default=None, help="metric to plot")
    plo.add_argument("--source", default=None)
    plo.add_argument("--width", type=int, default=70)
    plo.add_argument("--height", type=int, default=12)
    plo.add_argument(
        "--list", action="store_true",
        help="list available metric/source pairs instead of plotting",
    )

    ste = sub.add_parser(
        "suite", help="run the benchmark suite over the built-in platforms"
    )
    ste.add_argument(
        "--platforms",
        default="inmem,weaver,weaver-batched,kineograph",
        help="comma-separated platform names (inmem, weaver, "
        "weaver-batched, chronograph, kineograph, graphtau)",
    )
    ste.add_argument(
        "--workloads", default="uniform-small,social-growth",
        help="comma-separated workload names (see repro.suite.STANDARD_WORKLOADS)",
    )
    ste.add_argument("--repetitions", type=int, default=3)

    chk = sub.add_parser(
        "check",
        help="run the determinism/concurrency/schema static checks",
    )
    chk.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    chk.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    chk.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="report format: text (default), json, or github "
        "(::error/::warning annotations for CI)",
    )

    fuz = sub.add_parser(
        "fuzz",
        help="adversarial workload fuzzing: seeded mutation, pipeline "
        "oracles, ddmin minimization, regression corpus (repro.fuzz)",
    )
    fuzsub = fuz.add_subparsers(dest="fuzz_command", required=True)
    fzr = fuzsub.add_parser(
        "run",
        help="run the seeded fuzz loop (deterministic per --seed)",
    )
    fzr.add_argument("--seed", type=int, default=42)
    fzr.add_argument(
        "--budget", type=int, default=50,
        help="number of mutated candidates to evaluate",
    )
    fzr.add_argument(
        "--deadline", type=float, default=20.0,
        help="per-candidate watchdog deadline in seconds",
    )
    fzr.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="archive each minimized finding as a corpus entry under DIR",
    )
    fzr.add_argument(
        "--no-minimize", action="store_true",
        help="keep findings at full size (skip ddmin)",
    )
    fzr.add_argument(
        "--minimizer-tests", type=int, default=120,
        help="ddmin evaluation budget per finding",
    )
    fzm = fuzsub.add_parser(
        "minimize", help="ddmin-shrink a reproducer stream file"
    )
    fzm.add_argument("workload", help="stream file (format autodetected)")
    fzm.add_argument("-o", "--output", required=True)
    fzm.add_argument(
        "--max-tests", type=int, default=400,
        help="ddmin evaluation budget",
    )
    fzm.add_argument("--deadline", type=float, default=20.0)
    fzm.add_argument("--seed", type=int, default=42)
    fzp = fuzsub.add_parser(
        "replay",
        help="re-evaluate every corpus entry under its recorded config "
        "and compare verdicts (nonzero exit on mismatch)",
    )
    fzp.add_argument("--corpus", default="corpus", metavar="DIR")
    fzp.add_argument(
        "--name", default=None,
        help="only replay entries whose name contains this substring",
    )

    prf = sub.add_parser(
        "perf",
        help="per-commit perf database: record benchmark snapshots, "
        "diff against the baseline with statistical degradation "
        "checks, list the history (repro.perfdb)",
    )
    prfsub = prf.add_subparsers(dest="perf_command", required=True)
    prr = prfsub.add_parser(
        "record",
        help="ingest a BENCH_*.json snapshot into the perf database",
    )
    prr.add_argument(
        "snapshot", nargs="+",
        help="schema-v2 benchmark snapshot file(s) (BENCH_*.json)",
    )
    prr.add_argument(
        "--db", default=None, metavar="PATH",
        help="perf database JSONL file (default: perf/perfdb.jsonl)",
    )
    prr.add_argument(
        "--allow-smoke", action="store_true",
        help="permit 'smoke: true' snapshots; the stored record stays "
        "smoke-tagged and is never used as a baseline",
    )
    prd = prfsub.add_parser(
        "diff",
        help="compare the newest record per benchmark against its "
        "baseline; exit 1 on a confirmed regression",
    )
    prd.add_argument("--db", default=None, metavar="PATH")
    prd.add_argument(
        "--benchmark", default=None,
        help="only diff this benchmark (default: every benchmark in "
        "the database)",
    )
    prd.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative mean change that confirms a scalar degradation",
    )
    prd.add_argument(
        "--integral-threshold", type=float, default=0.10,
        help="relative area change that confirms a curve degradation",
    )
    prd.add_argument(
        "--trend-window", type=int, default=7,
        help="number of trailing records the trend check fits",
    )
    prd.add_argument(
        "--include-smoke", action="store_true",
        help="let smoke records act as diff endpoints (same-machine "
        "A/B smoke comparisons, e.g. in CI)",
    )
    prl = prfsub.add_parser(
        "log", help="list the recorded perf history, newest last"
    )
    prl.add_argument("--db", default=None, metavar="PATH")
    prl.add_argument("--benchmark", default=None)

    trc = sub.add_parser(
        "trace",
        help="convert a result log (JSONL) to Chrome trace JSON, or "
        "validate an exported trace",
    )
    trc.add_argument(
        "input",
        help="result.jsonl with span records (convert mode) or a "
        "Chrome trace JSON file (--validate)",
    )
    trc.add_argument(
        "-o", "--output", default=None,
        help="output Chrome trace path (convert mode)",
    )
    trc.add_argument(
        "--validate", action="store_true",
        help="check that INPUT is well-formed Chrome trace_event JSON "
        "instead of converting",
    )

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    rules = _MODELS[args.model]()
    generator = StreamGenerator(rules, rounds=args.rounds, seed=args.seed)
    stream = generator.generate()
    stream.write(args.output, format=args.format)
    stats = stream.statistics()
    print(
        f"wrote {stats.total_events} events to {args.output} "
        f"({stats.topology_events} topology, {stats.state_events} state)"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    stream = GraphStream.read(args.stream)
    stats = stream.statistics()
    graph, report = build_graph(stream, strict=False)
    print(f"events:          {stats.total_events}")
    print(f"  graph events:  {stats.graph_events}")
    print(f"  markers:       {stats.marker_events}")
    print(f"  control:       {stats.control_events}")
    print(f"event mix:       {stats.event_mix:.3f} (topology fraction)")
    print(f"direction ratio: {stats.direction_ratio:.3f} (add fraction)")
    print(f"final graph:     {graph.vertex_count} vertices, {graph.edge_count} edges")
    if report.failed:
        print(f"warning: {len(report.failed)} events violated preconditions")
    return 0


def _replay_transport_spec(args: argparse.Namespace):
    """The picklable base-transport spec(s) the replay flags describe.

    For ``--transport shm`` with multiple workers this returns one
    :class:`ShmSpec` per worker (rings are strictly single-producer),
    so the result may be a tuple — every consumer of this helper
    (:class:`LiveReplayer` single-spec path excepted) accepts either.
    """
    from repro.core.connectors import PipeSpec, ShmSpec, TcpSpec

    if args.transport in ("stdout", "pipe"):
        return PipeSpec(target="-")
    if args.transport == "tcp":
        return TcpSpec(host=args.host, port=args.port)
    if not args.shm_name:
        raise SystemExit("--transport shm requires --shm-name")
    names = [name.strip() for name in args.shm_name.split(",") if name.strip()]
    workers = getattr(args, "workers", 1)
    if len(names) != workers:
        raise SystemExit(
            f"--shm-name lists {len(names)} segment(s) for {workers} "
            "worker(s); each worker needs its own ring"
        )
    specs = tuple(ShmSpec(name=name) for name in names)
    return specs[0] if workers == 1 else specs


def _replay_chain_configs(args: argparse.Namespace):
    """Picklable resilience configs (chaos, retry) from the replay flags."""
    from repro.core.resilience import ChaosConfig, RetryPolicy

    chaos = ChaosConfig(
        send_failure_probability=args.chaos_send_failure,
        reset_probability=args.chaos_reset,
        partial_batch_probability=args.chaos_partial,
        latency_probability=args.chaos_latency,
        latency_seconds=args.chaos_latency_seconds,
        seed=args.chaos_seed,
    )
    chaos_config = None if chaos.is_noop else chaos
    retry_policy = None
    if args.retry_attempts > 1 or args.breaker_threshold > 0:
        retry_policy = RetryPolicy(
            max_attempts=max(1, args.retry_attempts),
            base_delay=args.retry_base_delay,
            deadline=args.retry_deadline,
            seed=args.chaos_seed,
        )
    return chaos_config, retry_policy


def _build_replay_transport(args: argparse.Namespace):
    """Compose the replay delivery chain: base -> chaos -> retrying."""
    from repro.core.resilience import build_transport_chain

    spec = _replay_transport_spec(args)
    chaos_config, retry_policy = _replay_chain_configs(args)

    def build():
        return build_transport_chain(
            spec.build(),
            chaos_config=chaos_config,
            retry_policy=retry_policy,
            breaker_threshold=args.breaker_threshold,
            breaker_recovery=args.breaker_recovery,
        )

    return build


def _print_trace_summary(tracer, path: str) -> None:
    accounting = tracer.accounting()
    print(
        f"trace: {len(tracer.spans)} spans -> {path} "
        f"(sampling 1/{tracer.sample_every}; "
        f"emitted {accounting['emitted']}, "
        f"ingested {accounting['ingested']}, "
        f"in flight {accounting['in_flight']}, "
        f"accounting {'closed' if accounting['closed'] else 'OPEN'})",
        file=sys.stderr,
    )


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.replayer import LiveReplayer

    if args.workers > 1:
        return _run_sharded_replay(args)
    build_base = _build_replay_transport(args)
    tracer = None
    if args.trace_out:
        from repro.core.tracing import (
            Tracer,
            TracingTransport,
            reset_shared_clock,
        )

        # Fresh shared clock: the trace epoch starts at replay setup,
        # and every live component stamping through shared_clock()
        # (probes, receivers) shares it.
        tracer = Tracer(
            clock=reset_shared_clock(),
            sample_every=args.trace_sample,
            metadata={
                "mode": "live",
                "stream": args.stream,
                "transport": args.transport,
            },
        )

        def build():
            return TracingTransport(build_base(), tracer)

    else:
        build = build_base
    replayer = LiveReplayer(
        args.stream,
        build(),
        rate=args.rate,
        wire_format="binary" if args.format == "binary" else "csv",
        batch_size=args.batch_size,
        max_resumes=args.max_resumes,
        transport_factory=build if args.max_resumes > 0 else None,
        tracer=tracer,
    )
    report = replayer.run()
    _print_replay_summary(report)
    if tracer is not None:
        tracer.write_chrome_trace(args.trace_out)
        _print_trace_summary(tracer, args.trace_out)
    return 0


def _warn_csv_events_scaleout(args: argparse.Namespace) -> None:
    """Warn about the CSV events-mode scale-out footgun.

    Sharded ``--emission events`` over CSV re-parses and re-encodes
    every line in each worker; on one core the extra work makes
    aggregate throughput *drop* as workers are added (309k -> 225k
    events/s at 4 workers in BENCH_replayer_scaleout.json).  Decode-in-
    worker or the binary format keep events-mode semantics and scale.
    """
    from repro.core.codec import detect_stream_format

    if args.emission != "events":
        return
    stream_format = args.format
    if stream_format == "auto":
        try:
            stream_format = detect_stream_format(args.stream)
        except OSError:
            return  # unreadable stream: the replayer will report it
    if stream_format != "csv":
        return
    print(
        f"warning: --workers {args.workers} --emission events over a CSV "
        "stream usually *lowers* aggregate throughput (each worker "
        "re-parses and re-encodes its shard); prefer --emission decode "
        "or convert the stream to binary (graphtides convert --to binary)",
        file=sys.stderr,
    )


def _run_sharded_replay(args: argparse.Namespace) -> int:
    """The ``--workers N`` (N > 1) path: process-parallel replay."""
    from repro.core.sharding import ShardedReplayer

    _warn_csv_events_scaleout(args)
    if args.trace_out:
        print(
            "error: --trace-out requires --workers 1 "
            "(the tracer is in-process)",
            file=sys.stderr,
        )
        return 2
    chaos_config, retry_policy = _replay_chain_configs(args)
    replayer = ShardedReplayer(
        args.stream,
        _replay_transport_spec(args),
        rate=args.rate,
        workers=args.workers,
        shard_by=args.shard_by,
        emission=args.emission,
        stream_format=args.format,
        batch_size=args.batch_size,
        chaos_config=chaos_config,
        retry_policy=retry_policy,
        breaker_threshold=args.breaker_threshold,
        breaker_recovery=args.breaker_recovery,
        max_resumes=args.max_resumes,
    )
    report = replayer.run()
    print(
        f"shards: {args.workers} workers ({args.shard_by}, {args.emission}): "
        + ", ".join(
            f"#{index} {shard.events_emitted} events @ {shard.mean_rate:.0f}/s"
            for index, shard in enumerate(report.shards)
        ),
        file=sys.stderr,
    )
    _print_replay_summary(report)
    return 0


def _print_replay_summary(report) -> None:
    """The replay summary + fault-summary lines (shared by both paths).

    For a sharded report the fault line carries the per-worker
    breakdown (``#i injected/retries/redeliveries``) after the totals.
    """
    print(
        f"replayed {report.events_emitted} events in {report.duration:.2f}s "
        f"({report.mean_rate:.0f} events/s, "
        f"window p5/median/p95 {report.p5_rate:.0f}/{report.median_rate:.0f}/"
        f"{report.p95_rate:.0f})",
        file=sys.stderr,
    )
    if (
        report.chaos_faults or report.retries or report.redeliveries
        or report.breaker_openings or report.resumes
    ):
        shards = getattr(report, "shards", ())
        per_worker = ""
        if len(shards) > 1:
            per_worker = "; per worker " + ", ".join(
                f"#{index} {shard.chaos_faults}i/{shard.retries}r/"
                f"{shard.redeliveries}d"
                for index, shard in enumerate(shards)
            )
        print(
            f"faults: {report.chaos_faults} injected, {report.retries} retries, "
            f"{report.redeliveries} redeliveries, "
            f"{report.breaker_openings} breaker openings, "
            f"{report.resumes} resumes "
            f"(from {report.checkpoints} checkpoints)"
            f"{per_worker}",
            file=sys.stderr,
        )


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        ChronographExperimentConfig,
        ReplayerExperimentConfig,
        RobustnessExperimentConfig,
        WeaverExperimentConfig,
        run_chronograph,
        run_replayer_throughput,
        run_robustness,
        run_weaver_cpu,
        run_weaver_throughput,
    )

    scale = args.scale
    if args.figure == "robustness":
        config = RobustnessExperimentConfig().scaled(scale)
        rows = run_robustness(config)
        print(
            "target    p5/median/max rate      achieved  "
            "faults retries redeliv breaker resumes lost"
        )
        for row in rows:
            print(
                f"{row.target_rate:>6} "
                f"{row.p5_rate:>8.0f}/{row.median_rate:>7.0f}/"
                f"{row.max_rate:>7.0f} "
                f"{row.achieved_fraction:>9.1%} "
                f"{row.chaos_faults:>6} {row.retries:>7} "
                f"{row.redeliveries:>7} {row.breaker_openings:>7} "
                f"{row.resumes:>7} {row.events_lost:>4}"
            )
        if args.corpus:
            return _print_corpus_replay(args.corpus, name_filter=None)
        return 0
    if args.corpus:
        print("--corpus only applies to the robustness experiment",
              file=sys.stderr)
        return 2
    if args.figure == "fig3a":
        config = ReplayerExperimentConfig().scaled(scale)
        rows = run_replayer_throughput(config)
        print("transport  target      median        p5         max")
        for row in rows:
            print(
                f"{row.transport:<9} {row.target_rate:>8} "
                f"{row.median_rate:>10.0f} {row.p5_rate:>10.0f} "
                f"{row.max_rate:>10.0f}"
            )
        return 0
    if args.figure == "fig3b":
        config = WeaverExperimentConfig().scaled(scale)
        results = run_weaver_throughput(config)
        print("rate      batch   mean-throughput   kept-pace")
        for result in results:
            print(
                f"{result.streaming_rate:>7}   {result.batch_size:>3}   "
                f"{result.mean_throughput:>14.0f}   {result.kept_pace}"
            )
        return 0
    if args.figure == "fig3c":
        config = WeaverExperimentConfig().scaled(scale)
        result = run_weaver_cpu(config)
        print(f"timestamper mean CPU: {result.timestamper_mean:6.1f}%")
        print(f"shard mean CPU:       {result.shard_mean:6.1f}%")
        print(f"timestamper dominates: {result.timestamper_dominates}")
        return 0
    config = ChronographExperimentConfig().scaled(scale)
    result = run_chronograph(config)
    print(f"duration:        {result.duration:.1f}s")
    print(f"stream ended at: {result.stream_end_time:.1f}s")
    print(f"backlog drain:   {result.backlog_seconds:.1f}s after stream end")
    errors = result.rank_error.values
    print(f"rank error:      {errors[0]:.3f} (start) -> {errors[-1]:.4f} (end)")
    return 0


def _platform_registry() -> dict:
    from repro.platforms import (
        ChronoLikePlatform,
        InMemoryPlatform,
        KineoLikePlatform,
        TauLikePlatform,
        WeaverLikePlatform,
    )

    return {
        "inmem": InMemoryPlatform,
        "weaver": lambda: WeaverLikePlatform(batch_size=1),
        "weaver-batched": lambda: WeaverLikePlatform(batch_size=10),
        "chronograph": ChronoLikePlatform,
        "kineograph": KineoLikePlatform,
        "graphtau": TauLikePlatform,
    }


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.harness import HarnessConfig, TestHarness
    from repro.core.report import run_report

    stream = GraphStream.read(args.stream)
    platform = _platform_registry()[args.platform]()
    fault_schedule = None
    if args.fault_schedule:
        import json

        from repro.platforms.base import FaultSchedule

        with open(args.fault_schedule, encoding="utf-8") as handle:
            fault_schedule = FaultSchedule.from_json_dict(json.load(handle))
    config = HarnessConfig(
        rate=args.rate,
        level=args.level,
        fault_schedule=fault_schedule,
        trace=bool(args.trace_out),
        trace_sample_every=args.trace_sample,
    )
    result = TestHarness(platform, stream, config).run()
    print(run_report(result, title=f"{args.platform} vs {args.stream}"))
    if args.trace_out and result.tracer is not None:
        result.tracer.write_chrome_trace(args.trace_out)
        _print_trace_summary(result.tracer, args.trace_out)

    if args.bundle:
        from repro.core.popper import package_run

        bundle = package_run(
            args.bundle,
            args.experiment_id,
            stream,
            config,
            result,
            description=(
                f"platform={args.platform} rate={args.rate} level={args.level}"
            ),
        )
        print(f"\nbundle written to {bundle}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    if args.to is not None:
        from repro.core import binfmt

        events = binfmt.convert_stream(args.edgelist, args.output, args.to)
        print(
            f"converted {args.edgelist} -> {args.output}: "
            f"{events} events ({args.to})"
        )
        return 0

    from repro.gen.importer import edge_list_to_stream

    stream = edge_list_to_stream(args.edgelist, shuffle_seed=args.shuffle_seed)
    stream.write(args.output)
    stats = stream.statistics()
    print(
        f"converted {args.edgelist} -> {args.output}: "
        f"{stats.graph_events} events "
        f"({stats.vertex_events} vertex, {stats.edge_events} edge)"
    )
    return 0


def _cmd_shape(args: argparse.Namespace) -> int:
    from repro.core.shaping import with_burst, with_pause, with_ramp, with_wave

    stream = GraphStream.read(args.stream)
    if args.burst:
        start, length, factor = args.burst
        stream = with_burst(stream, int(start), int(length), factor)
    if args.wave:
        period, high, low = args.wave
        stream = with_wave(stream, int(period), high, low)
    if args.ramp:
        steps, start_factor, end_factor = args.ramp
        stream = with_ramp(stream, int(steps), start_factor, end_factor)
    if args.pause:
        after, seconds = args.pause
        stream = with_pause(stream, int(after), seconds)
    stream.write(args.output)
    controls = stream.statistics().control_events
    print(f"wrote {args.output} with {controls} control events")
    return 0


def _parse_crash_spec(spec: str):
    from repro.platforms.base import ProcessFault

    parts = spec.rsplit(":", 2)
    if len(parts) != 3:
        raise ValueError(
            f"--crash expects PROCESS:AT:DURATION, got {spec!r}"
        )
    process, at, duration = parts
    return ProcessFault(process=process, at=float(at), duration=float(duration))


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.core.faults import FaultPlan, apply_fault_plan
    from repro.platforms.base import FaultSchedule

    if args.schedule_out:
        try:
            faults = [_parse_crash_spec(spec) for spec in args.crash]
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if not faults:
            print("--schedule-out requires at least one --crash", file=sys.stderr)
            return 2
        schedule = FaultSchedule(faults=faults)
        with open(args.schedule_out, "w", encoding="utf-8") as handle:
            json.dump(schedule.to_json_dict(), handle, indent=2)
            handle.write("\n")
        print(
            f"wrote {args.schedule_out}: {len(faults)} runtime fault(s)",
            file=sys.stderr,
        )
    elif args.crash:
        print("--crash requires --schedule-out", file=sys.stderr)
        return 2

    stream = GraphStream.read(args.stream)
    plan = FaultPlan(
        drop_probability=args.drop,
        duplicate_probability=args.duplicate,
        shuffle_window=args.shuffle_window,
        seed=args.seed,
    )
    faulty = apply_fault_plan(stream, plan)
    faulty.write(args.output)
    before = sum(1 for __ in stream.graph_events())
    after = sum(1 for __ in faulty.graph_events())
    print(
        f"wrote {args.output}: {before} -> {after} graph events "
        f"(drop={args.drop} duplicate={args.duplicate} "
        f"shuffle_window={args.shuffle_window})"
    )
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from repro.core.report import ascii_plot
    from repro.core.resultlog import ResultLog

    log = ResultLog.read(args.resultlog)
    if args.list:
        print("metric / sources:")
        for metric in log.metrics():
            sources = log.filter(metric=metric).sources()
            print(f"  {metric:<24} {', '.join(sources)}")
        return 0
    if args.metric is None:
        print("either --metric or --list is required")
        return 2
    series = log.series(args.metric, source=args.source)
    label = args.metric + (f" @ {args.source}" if args.source else "")
    print(ascii_plot(series, width=args.width, height=args.height, label=label))
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.suite import STANDARD_WORKLOADS, BenchmarkSuite

    platform_registry = _platform_registry()
    chosen_platforms = {}
    for name in args.platforms.split(","):
        name = name.strip()
        if name not in platform_registry:
            print(f"unknown platform {name!r}; choose from "
                  f"{sorted(platform_registry)}")
            return 2
        chosen_platforms[name] = platform_registry[name]

    workloads = []
    for name in args.workloads.split(","):
        name = name.strip()
        if name not in STANDARD_WORKLOADS:
            print(f"unknown workload {name!r}; choose from "
                  f"{sorted(STANDARD_WORKLOADS)}")
            return 2
        workloads.append(STANDARD_WORKLOADS[name])

    suite = BenchmarkSuite(
        chosen_platforms, workloads=workloads, repetitions=args.repetitions
    )
    report = suite.run()
    print(report.render())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.reporting import run_and_report

    return run_and_report(
        args.paths, list_rules=args.list_rules, format=args.format
    )


def _print_corpus_replay(corpus_dir: str, name_filter: str | None) -> int:
    """Replay the fuzz regression corpus; nonzero exit on mismatch."""
    from repro.experiments.robustness import replay_corpus

    rows = replay_corpus(corpus_dir)
    if name_filter is not None:
        rows = [row for row in rows if name_filter in row.name]
    if not rows:
        print(f"no corpus entries under {corpus_dir}", file=sys.stderr)
        return 1
    mismatches = 0
    for row in rows:
        status = "ok" if row.matches else "MISMATCH"
        line = f"{row.found_as}/{row.name}: {row.expected_signature}"
        if not row.matches:
            line += f" -> {row.actual_signature}"
            mismatches += 1
        print(f"{line} [{status}]")
    print(f"corpus: {len(rows)} entries, {mismatches} mismatch(es)")
    return 1 if mismatches else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_fuzz_run,
        "minimize": _cmd_fuzz_minimize,
        "replay": _cmd_fuzz_replay,
    }
    return handlers[args.fuzz_command](args)


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from repro.fuzz import EvaluatorConfig, FuzzConfig, run_fuzz

    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        evaluator=EvaluatorConfig(seed=args.seed, deadline=args.deadline),
        minimize=not args.no_minimize,
        minimizer_tests=args.minimizer_tests,
        corpus_dir=args.corpus,
    )
    report = run_fuzz(config)
    for line in report.summary_lines():
        print(line)
    if args.corpus and report.findings:
        print(
            f"archived {len(report.findings)} finding(s) under {args.corpus}/"
        )
    return 0


def _cmd_fuzz_minimize(args: argparse.Namespace) -> int:
    from repro.fuzz import (
        EvaluatorConfig,
        evaluate,
        minimize_workload,
    )
    from repro.fuzz.workload import Workload

    workload = Workload.from_file(args.workload)
    config = EvaluatorConfig(seed=args.seed, deadline=args.deadline)
    verdict = evaluate(workload, config)
    if not verdict.is_finding:
        print(
            f"{args.workload}: verdict {verdict.signature} is not a "
            f"finding; nothing to minimize",
            file=sys.stderr,
        )
        return 1
    minimized = minimize_workload(
        workload, verdict, config, max_tests=args.max_tests
    )
    minimized.write(args.output)
    print(
        f"minimized {len(workload.data)} -> {len(minimized.data)} bytes "
        f"({verdict.signature}) -> {args.output}"
    )
    return 0


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    return _print_corpus_replay(args.corpus, name_filter=args.name)


def _perf_db(args: argparse.Namespace):
    from repro.perfdb import DEFAULT_DB_PATH, PerfDatabase

    return PerfDatabase(args.db if args.db else DEFAULT_DB_PATH)


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.errors import PerfDbError

    handlers = {
        "record": _cmd_perf_record,
        "diff": _cmd_perf_diff,
        "log": _cmd_perf_log,
    }
    try:
        return handlers[args.perf_command](args)
    except PerfDbError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_perf_record(args: argparse.Namespace) -> int:
    from repro.perfdb import load_snapshot, record_from_snapshot

    db = _perf_db(args)
    for path in args.snapshot:
        snapshot = load_snapshot(path)
        record = record_from_snapshot(
            snapshot, source=path, allow_smoke=args.allow_smoke
        )
        db.append(record)
        dirty = "+dirty" if record.git_dirty else ""
        smoke = " [smoke]" if record.smoke else ""
        print(
            f"recorded {record.benchmark} @ {record.short_commit}{dirty} "
            f"({len(record.metrics)} metrics) -> {db.path}{smoke}"
        )
    return 0


def _cmd_perf_diff(args: argparse.Namespace) -> int:
    from repro.perfdb import DiffOptions, diff_all, diff_benchmark

    db = _perf_db(args)
    options = DiffOptions(
        threshold=args.threshold,
        integral_threshold=args.integral_threshold,
        trend_window=args.trend_window,
        include_smoke=args.include_smoke,
    )
    if args.benchmark is not None:
        reports = [diff_benchmark(db, args.benchmark, options)]
    else:
        reports = diff_all(db, options)
    regressed = False
    for report in reports:
        for line in report.render_lines():
            print(line)
        regressed = regressed or report.has_confirmed_regression
    return 1 if regressed else 0


def _cmd_perf_log(args: argparse.Namespace) -> int:
    db = _perf_db(args)
    records = db.records(benchmark=args.benchmark)
    if not records:
        where = f" for benchmark {args.benchmark!r}" if args.benchmark else ""
        print(f"no perf records in {db.path}{where}", file=sys.stderr)
        return 1
    for record in records:
        dirty = "+dirty" if record.git_dirty else ""
        smoke = " [smoke]" if record.smoke else ""
        headline = ""
        for name in (
            "replay_saturation_best_eps",
            "decode_scaleout_eps",
        ):
            series = record.metrics.get(name)
            if series is not None:
                headline = f"  {name}={series.mean:,.0f}"
                break
        print(
            f"{record.recorded_at_utc}  {record.benchmark:<18} "
            f"{record.short_commit}{dirty}{smoke}"
            f"  machine={record.machine_id[:8]}{headline}"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.core.resultlog import ResultLog
    from repro.core.tracing import records_to_chrome_trace, validate_chrome_trace

    if args.validate:
        with open(args.input, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                print(f"{args.input}: not valid JSON: {exc}", file=sys.stderr)
                return 1
        problems = validate_chrome_trace(payload)
        if problems:
            for problem in problems:
                print(f"{args.input}: {problem}", file=sys.stderr)
            print(f"{args.input}: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        events = payload.get("traceEvents", [])
        print(f"{args.input}: well-formed Chrome trace ({len(events)} events)")
        return 0

    if not args.output:
        print("convert mode requires -o/--output", file=sys.stderr)
        return 2
    log = ResultLog.read(args.input)
    spans = log.spans()
    payload = records_to_chrome_trace(log, metadata={"source": args.input})
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.output}: {len(payload['traceEvents'])} trace events "
        f"from {len(spans)} span records"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "inspect": _cmd_inspect,
        "replay": _cmd_replay,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "suite": _cmd_suite,
        "plot": _cmd_plot,
        "convert": _cmd_convert,
        "shape": _cmd_shape,
        "faults": _cmd_faults,
        "check": _cmd_check,
        "trace": _cmd_trace,
        "fuzz": _cmd_fuzz,
        "perf": _cmd_perf,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
