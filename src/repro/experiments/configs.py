"""Experiment configurations mirroring the paper's Tables 2–4.

Every config carries the paper-scale defaults plus a ``scaled`` helper
producing a proportionally smaller configuration for fast runs: the
benchmarks default to a scaled setup and the full paper-scale values
remain one call away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "ReplayerExperimentConfig",
    "WeaverExperimentConfig",
    "ChronographExperimentConfig",
    "RobustnessExperimentConfig",
]


@dataclass(frozen=True, slots=True)
class ReplayerExperimentConfig:
    """Table 2: Graph Stream Replayer test runs.

    Paper setup: single machine, generated social-network workload,
    pipe (STDOUT→STDIN) and local TCP targets, target rates 10k–320k
    events/s.  ``events_per_rate`` bounds how many events each rate
    level replays (the duration of one measurement).
    """

    target_rates: tuple[int, ...] = (10_000, 20_000, 40_000, 80_000, 160_000, 320_000)
    run_seconds: float = 20.0
    max_events_per_rate: int = 1_000_000
    stream_rounds: int = 50_000
    seed: int = 42

    def events_for_rate(self, target_rate: int) -> int:
        """Events to replay at one rate level: rate × duration, capped."""
        return max(1_000, min(self.max_events_per_rate, int(target_rate * self.run_seconds)))

    def scaled(self, factor: float) -> "ReplayerExperimentConfig":
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        return replace(
            self,
            run_seconds=max(2.0, self.run_seconds * factor),
            max_events_per_rate=max(
                2_000, int(self.max_events_per_rate * factor)
            ),
            stream_rounds=max(2_000, int(self.stream_rounds * factor)),
        )


@dataclass(frozen=True, slots=True)
class WeaverExperimentConfig:
    """Table 3: Weaver experiment.

    Paper setup: Barabási–Albert bootstrap (n=10000, m0=250, M=50),
    event mix CREATE_VERTEX 10% / REMOVE_VERTEX 5% / UPDATE_VERTEX 35%
    / CREATE_EDGE 35% / REMOVE_EDGE 15% / UPDATE_EDGE 0%, Zipf-biased
    selections, streaming rates 10²–10⁴ events/s, 1 or 10 events per
    transaction, ~500 s runs (Figure 3b's time axis).
    """

    bootstrap_n: int = 10_000
    bootstrap_m0: int = 250
    bootstrap_m: int = 50
    evolution_rounds: int = 500_000
    streaming_rates: tuple[int, ...] = (100, 1_000, 10_000)
    batch_sizes: tuple[int, ...] = (1, 10)
    run_seconds: float = 500.0
    seed: int = 42

    def scaled(self, factor: float) -> "WeaverExperimentConfig":
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        return replace(
            self,
            bootstrap_n=max(100, int(self.bootstrap_n * factor)),
            bootstrap_m0=max(10, int(self.bootstrap_m0 * factor)),
            bootstrap_m=max(3, int(self.bootstrap_m * factor)),
            evolution_rounds=max(2_000, int(self.evolution_rounds * factor)),
            run_seconds=max(20.0, self.run_seconds * factor),
        )


@dataclass(frozen=True, slots=True)
class ChronographExperimentConfig:
    """Table 4: Chronograph experiment.

    Paper setup: four workers, converted LDBC SNB workload (persons and
    connections only; 190,518 events), online influence-rank
    computation, base rate 2000 events/s, 20 s pause after 100,000
    events, doubled rate between events 100,001 and 150,000.
    """

    worker_count: int = 4
    total_events: int = 190_518
    base_rate: float = 2_000.0
    pause_after: int = 100_000
    pause_seconds: float = 20.0
    double_rate_until: int = 150_000
    tracked_top_k: int = 20
    seed: int = 42

    def scaled(self, factor: float) -> "ChronographExperimentConfig":
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        total = max(4_000, int(self.total_events * factor))
        return replace(
            self,
            total_events=total,
            pause_after=max(1, int(total * self.pause_after / self.total_events)),
            double_rate_until=max(
                2, int(total * self.double_rate_until / self.total_events)
            ),
            pause_seconds=max(2.0, self.pause_seconds * factor),
        )


@dataclass(frozen=True, slots=True)
class RobustnessExperimentConfig:
    """Replayer robustness runs: rate-vs-achieved under runtime faults.

    The Figure-3a shape run through a lossy delivery path: each target
    rate is replayed through a seeded chaos transport (send failures,
    connection resets, partial batches) behind a retrying transport, so
    the measured quantity is the *degraded* achieved-rate band plus the
    fault counters that explain it.  Not a paper figure — the runtime
    complement of the paper's a-priori fault derivation (section 3.2).
    """

    target_rates: tuple[int, ...] = (2_000, 4_000, 8_000, 16_000)
    run_seconds: float = 4.0
    max_events_per_rate: int = 100_000
    stream_rounds: int = 20_000
    batch_size: int = 32
    send_failure_probability: float = 0.01
    reset_probability: float = 0.002
    partial_batch_probability: float = 0.005
    retry_attempts: int = 6
    retry_base_delay: float = 0.002
    breaker_threshold: int = 8
    breaker_recovery_time: float = 0.1
    max_resumes: int = 2
    seed: int = 42

    def events_for_rate(self, target_rate: int) -> int:
        """Events to replay at one rate level: rate × duration, capped."""
        return max(
            1_000,
            min(self.max_events_per_rate, int(target_rate * self.run_seconds)),
        )

    def scaled(self, factor: float) -> "RobustnessExperimentConfig":
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        return replace(
            self,
            run_seconds=max(1.0, self.run_seconds * factor),
            max_events_per_rate=max(2_000, int(self.max_events_per_rate * factor)),
            stream_rounds=max(2_000, int(self.stream_rounds * factor)),
        )
