"""Figure 3d: stacked time-series plot of a Chronograph experiment run.

"The visualization contains data gathered from all workers as well as
the instrumented replayer component and relative errors of the online
computations of certain vertices.  The visualization indicates that
half of the worker's internal queues were saturated at the end of the
stream and kept the system busy due to the backlog of internal messages
for online processing."

Runs the Table-4 setup: an SNB-like stream at 2000 events/s with a 20 s
pause after 100k events and doubled rate for the next 50k, against the
simulated Chronograph-like platform with four workers running an online
influence rank, at evaluation level 2.  Produces the five stacked
series of the figure: replay rate, internal operation throughput,
worker CPU, per-worker queue lengths, and the retrospectively estimated
relative rank error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.pagerank import PageRank
from repro.core.analysis import retrospective_rank_errors, stacked_series
from repro.core.analysis import StackedSeries
from repro.core.harness import HarnessConfig, InternalProbeSpec, TestHarness
from repro.core.metrics import TimeSeries
from repro.core.models import chronograph_table4_stream
from repro.core.resultlog import ResultLog
from repro.core.stream import GraphStream
from repro.experiments.configs import ChronographExperimentConfig
from repro.gen.snb import SnbConfig
from repro.graph.builders import build_graph
from repro.platforms.chronolike import ChronoLikePlatform

__all__ = ["ChronographResult", "run_chronograph", "build_chronograph_stream"]


@dataclass(frozen=True, slots=True)
class ChronographResult:
    """All series behind Figure 3d plus run-level outcomes."""

    log: ResultLog
    replay_rate: TimeSeries
    internal_ops_rate: TimeSeries
    worker_cpu: dict[str, TimeSeries]
    worker_queues: dict[str, TimeSeries]
    rank_error: TimeSeries
    stream_end_time: float
    drained_time: float
    duration: float

    @property
    def backlog_seconds(self) -> float:
        """How long the system stayed busy after the stream stopped."""
        return max(0.0, self.drained_time - self.stream_end_time)

    def stacked(self, step: float = 1.0) -> StackedSeries:
        """The aligned stacked-series table of the figure."""
        extra = {"relative_rank_error": self.rank_error}
        specs = [("replay_rate", "ingress_rate", "replayer")]
        for label in self.worker_cpu:
            specs.append((f"cpu_{label}", "cpu_load", label))
        for label in self.worker_queues:
            specs.append((f"queue_{label}", "queue_length", label))
        return stacked_series(self.log, specs, step=step, extra=extra)


def build_chronograph_stream(config: ChronographExperimentConfig) -> GraphStream:
    """The Table-4 stream: SNB-like events with the control structure."""
    return chronograph_table4_stream(
        SnbConfig(total_events=config.total_events, seed=config.seed),
        pause_after=config.pause_after,
        pause_seconds=config.pause_seconds,
        double_rate_until=config.double_rate_until,
    )


def run_chronograph(
    config: ChronographExperimentConfig | None = None,
    stream: GraphStream | None = None,
    log_interval: float | None = None,
) -> ChronographResult:
    """Regenerate Figure 3d's data.

    ``log_interval=None`` picks a sampling period that resolves the
    pause and double-rate phases even for scaled-down configurations;
    pass 1.0 to match the paper's one-second sampling.
    """
    if config is None:
        config = ChronographExperimentConfig()
    if stream is None:
        stream = build_chronograph_stream(config)
    if log_interval is None:
        expected_duration = config.total_events / config.base_rate
        log_interval = max(0.05, min(1.0, expected_duration / 40.0))

    platform = ChronoLikePlatform(worker_count=config.worker_count)
    harness = TestHarness(
        platform,
        stream,
        HarnessConfig(rate=config.base_rate, level=2, log_interval=log_interval),
        internal_probes=[
            InternalProbeSpec(
                "queue_lengths",
                "queue_length",
                extract=lambda lengths: [
                    (f"worker-{i}", float(v)) for i, v in enumerate(lengths)
                ],
            ),
        ],
        object_probes={
            "ranks": lambda p: p.internal_probe("rank_estimates"),
        },
    )
    run = harness.run()

    # Retrospective reference: exact PageRank on the reconstructed
    # target graph; errors tracked for the most influential vertices.
    target_graph, __ = build_graph(stream)
    exact = PageRank().compute(target_graph)
    tracked = sorted(exact, key=lambda v: (-exact[v], v))[: config.tracked_top_k]
    rank_error = retrospective_rank_errors(
        run.object_series["ranks"], exact, tracked=tracked
    )

    worker_cpu = {
        f"{platform.name}-worker-{i}": run.log.series(
            "cpu_load", source=f"{platform.name}-worker-{i}"
        )
        for i in range(config.worker_count)
    }
    worker_queues = {
        f"{platform.name}-worker-{i}": run.log.series(
            "queue_length", source=f"{platform.name}-worker-{i}"
        )
        for i in range(config.worker_count)
    }
    internal_ops = run.log.series("internal_ops", source=platform.name).rate()

    stream_end = run.log.marker_time("replay-finished")
    return ChronographResult(
        log=run.log,
        replay_rate=run.log.series("ingress_rate", source="replayer"),
        internal_ops_rate=internal_ops,
        worker_cpu=worker_cpu,
        worker_queues=worker_queues,
        rank_error=rank_error,
        stream_end_time=stream_end,
        drained_time=run.duration,
        duration=run.duration,
    )
