"""Robustness experiment: rate-vs-achieved under injected runtime faults.

The Figure-3a question — "does the replayer hold its target rate?" —
asked again with the delivery path failing underneath it: every send
operation can fail, reset, or deliver only a partial batch (seeded
:class:`~repro.core.resilience.ChaosTransport`), while a
:class:`~repro.core.resilience.RetryingTransport` with a circuit
breaker keeps the replay alive.  Reported per target rate are the
achieved-rate *degradation band* (5th percentile / median / maximum,
like the paper's Figure 3a range plot) plus the fault counters that
explain the degradation, and a delivery audit: with retries and
checkpoint resume, no event may be lost (at-least-once), so
``received >= events`` must hold with the surplus accounted for by
``redeliveries``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.connectors import CallbackTransport
from repro.core.replayer import LiveReplayer
from repro.core.resilience import (
    ChaosConfig,
    ChaosTransport,
    CircuitBreaker,
    RetryPolicy,
    RetryingTransport,
)
from repro.experiments.configs import RobustnessExperimentConfig
from repro.experiments.fig3a import _events_for_rate, build_social_stream

__all__ = [
    "CorpusReplayRow",
    "RobustnessRow",
    "replay_corpus",
    "run_robustness",
]


@dataclass(frozen=True, slots=True)
class RobustnessRow:
    """One data point: a target rate replayed through a faulty path."""

    target_rate: int
    events: int
    received: int
    median_rate: float
    p5_rate: float
    max_rate: float
    duration: float
    chaos_faults: int
    retries: int
    redeliveries: int
    breaker_openings: int
    resumes: int

    @property
    def achieved_fraction(self) -> float:
        """Median achieved rate relative to the target."""
        return self.median_rate / self.target_rate if self.target_rate else 0.0

    @property
    def events_lost(self) -> int:
        """Events never delivered at all (must be 0 for a sound run)."""
        return max(0, self.events - self.received)


def _measure(
    config: RobustnessExperimentConfig, target_rate: int, events: list
) -> RobustnessRow:
    received = [0]

    def count(line: str) -> None:
        received[0] += 1

    # Per-rate sub-seed so every rate level draws an independent but
    # reproducible fault sequence.
    chaos = ChaosTransport(
        CallbackTransport(count),
        ChaosConfig(
            send_failure_probability=config.send_failure_probability,
            reset_probability=config.reset_probability,
            partial_batch_probability=config.partial_batch_probability,
            seed=config.seed * 1000 + target_rate,
        ),
    )
    transport = RetryingTransport(
        chaos,
        RetryPolicy(
            max_attempts=config.retry_attempts,
            base_delay=config.retry_base_delay,
            seed=config.seed,
        ),
        breaker=CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            recovery_time=config.breaker_recovery_time,
        ),
    )
    replayer = LiveReplayer(
        events,
        transport,
        rate=target_rate,
        batch_size=config.batch_size,
        max_resumes=config.max_resumes,
    )
    report = replayer.run()
    window_rates = list(report.window_rates) or [report.mean_rate]
    return RobustnessRow(
        target_rate=target_rate,
        events=len(events),
        received=received[0],
        median_rate=report.median_rate,
        p5_rate=report.p5_rate,
        max_rate=max(window_rates),
        duration=report.duration,
        chaos_faults=report.chaos_faults,
        retries=report.retries,
        redeliveries=report.redeliveries,
        breaker_openings=report.breaker_openings,
        resumes=report.resumes,
    )


def run_robustness(
    config: RobustnessExperimentConfig | None = None,
) -> list[RobustnessRow]:
    """One row per target rate, replayed through the chaos pipeline."""
    if config is None:
        config = RobustnessExperimentConfig()
    stream = build_social_stream_for(config)
    rows: list[RobustnessRow] = []
    for target_rate in config.target_rates:
        events = _events_for_rate(stream, config.events_for_rate(target_rate))
        rows.append(_measure(config, target_rate, events))
    return rows


@dataclass(frozen=True, slots=True)
class CorpusReplayRow:
    """One fuzz-corpus entry re-evaluated under its recorded config."""

    name: str
    found_as: str
    expected_signature: str
    actual_signature: str

    @property
    def matches(self) -> bool:
        """True when the fresh verdict reproduces the recorded one."""
        return self.expected_signature == self.actual_signature


def replay_corpus(corpus_dir) -> list[CorpusReplayRow]:
    """Replay every fuzz regression-corpus entry under ``corpus_dir``.

    Each entry's workload runs through the full evaluator pipeline with
    the evaluator knobs and baseline recorded in its ``meta.json``; the
    row compares the recorded verdict signature against the fresh one.
    This is the robustness experiment's regression gate: a mismatch
    means a previously-characterized adversarial workload now behaves
    differently.
    """
    from repro.fuzz import load_corpus, replay_entry

    rows: list[CorpusReplayRow] = []
    for entry in load_corpus(corpus_dir):
        verdict, __ = replay_entry(entry)
        rows.append(
            CorpusReplayRow(
                name=entry.name,
                found_as=entry.found_as,
                expected_signature=entry.verdict_signature,
                actual_signature=verdict.signature,
            )
        )
    return rows


def build_social_stream_for(config: RobustnessExperimentConfig):
    """The fig3a social workload at this experiment's scale."""
    from repro.experiments.configs import ReplayerExperimentConfig

    return build_social_stream(
        ReplayerExperimentConfig(
            stream_rounds=config.stream_rounds, seed=config.seed
        )
    )
