"""Figure 3a: median throughput of the Graph Stream Replayer.

"Our implementation is able to achieve robust streaming rates even with
a single streamer instance, both for piped and TCP-based connections.
For target throughput rates beyond [saturation], the actual throughput
did stick roughly to the targeted rate, but the measured range of rates
increased notably."

The experiment replays a generated social-network stream at each target
rate over a pipe and over local TCP, measuring per-second received
rates at the receiver; reported are the median, the 5th percentile and
the maximum per-window rate (the paper plots median with a 5th-
percentile-to-maximum range).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.connectors import PipeReceiver, PipeTransport, TcpReceiver, TcpTransport
from repro.core.events import Event, GraphEvent
from repro.core.generator import StreamGenerator
from repro.core.metrics import percentile
from repro.core.models import SocialNetworkRules
from repro.core.replayer import LiveReplayer
from repro.core.stream import GraphStream
from repro.experiments.configs import ReplayerExperimentConfig

__all__ = ["ReplayerThroughputRow", "run_replayer_throughput", "build_social_stream"]


@dataclass(frozen=True, slots=True)
class ReplayerThroughputRow:
    """One data point of Figure 3a."""

    transport: str
    target_rate: int
    median_rate: float
    p5_rate: float
    max_rate: float
    events: int
    duration: float

    @property
    def achieved_fraction(self) -> float:
        """Median achieved rate relative to the target."""
        return self.median_rate / self.target_rate if self.target_rate else 0.0


def build_social_stream(config: ReplayerExperimentConfig) -> GraphStream:
    """The generated social-network workload of Table 2."""
    generator = StreamGenerator(
        SocialNetworkRules(),
        rounds=config.stream_rounds,
        seed=config.seed,
        emit_phase_marker=False,
    )
    return generator.generate()


def _events_for_rate(
    stream: GraphStream, wanted: int
) -> list[Event]:
    """A stream slice with ``wanted`` graph events (repeat if short)."""
    graph_events = [e for e in stream if isinstance(e, GraphEvent)]
    if not graph_events:
        raise ValueError("stream contains no graph events")
    result: list[Event] = []
    while len(result) < wanted:
        take = min(wanted - len(result), len(graph_events))
        result.extend(graph_events[:take])
    return result


def _measure(
    transport_name: str,
    target_rate: int,
    events: list[Event],
) -> ReplayerThroughputRow:
    if transport_name == "pipe":
        read_fd, write_fd = os.pipe()
        receiver = PipeReceiver(read_fd)
        transport = PipeTransport(write_fd)
    elif transport_name == "tcp":
        receiver = TcpReceiver()
        receiver.start()
        transport = TcpTransport(receiver.host, receiver.port)
    else:
        raise ValueError(f"unknown transport {transport_name!r}")
    if transport_name == "pipe":
        receiver.start()

    replayer = LiveReplayer(events, transport, rate=target_rate)
    report = replayer.run()
    receiver.join(timeout=30.0)

    window_rates = receiver.counter.rates()
    if not window_rates:
        # Run shorter than one window: fall back to the mean rate.
        window_rates = [report.mean_rate]
    return ReplayerThroughputRow(
        transport=transport_name,
        target_rate=target_rate,
        median_rate=percentile(window_rates, 50),
        p5_rate=percentile(window_rates, 5),
        max_rate=max(window_rates),
        events=report.events_emitted,
        duration=report.duration,
    )


def run_replayer_throughput(
    config: ReplayerExperimentConfig | None = None,
    transports: tuple[str, ...] = ("pipe", "tcp"),
) -> list[ReplayerThroughputRow]:
    """Regenerate Figure 3a's data: one row per (transport, target rate)."""
    if config is None:
        config = ReplayerExperimentConfig()
    stream = build_social_stream(config)
    rows: list[ReplayerThroughputRow] = []
    for transport_name in transports:
        for target_rate in config.target_rates:
            events = _events_for_rate(stream, config.events_for_rate(target_rate))
            rows.append(_measure(transport_name, target_rate, events))
    return rows
