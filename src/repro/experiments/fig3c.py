"""Figure 3c: CPU usage of Weaver processes.

"CPU usage of Weaver processes with 10,000 events/s badged as 10 events
per transaction.  The evaluation showed a relatively high utilization
of the timestamper process of Weaver."

Runs the Figure-3b setup at 10,000 events/s with 10 events per
transaction and records the Level-0 per-process CPU series of the
``weaver-timestamper`` and ``weaver-shard`` processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.harness import HarnessConfig, TestHarness
from repro.core.metrics import TimeSeries
from repro.core.stream import GraphStream
from repro.experiments.configs import WeaverExperimentConfig
from repro.experiments.fig3b import (
    _cell_log_interval,
    _truncate_for_duration,
    build_weaver_stream,
)
from repro.platforms.weaverlike import WeaverLikePlatform

__all__ = ["WeaverCpuResult", "run_weaver_cpu"]


@dataclass(frozen=True, slots=True)
class WeaverCpuResult:
    """The per-process CPU series behind Figure 3c."""

    timestamper_cpu: TimeSeries
    shard_cpu: TimeSeries
    streaming_rate: int
    batch_size: int
    duration: float

    @property
    def timestamper_mean(self) -> float:
        return self.timestamper_cpu.mean()

    @property
    def shard_mean(self) -> float:
        return self.shard_cpu.mean()

    @property
    def timestamper_dominates(self) -> bool:
        """The paper's headline observation for this figure."""
        return self.timestamper_mean > self.shard_mean


def run_weaver_cpu(
    config: WeaverExperimentConfig | None = None,
    stream: GraphStream | None = None,
    streaming_rate: int = 10_000,
    batch_size: int = 10,
    log_interval: float | None = None,
) -> WeaverCpuResult:
    """Regenerate Figure 3c's data.

    ``log_interval=None`` picks a per-run sampling period suited to the
    scaled duration; pass 1.0 for the paper's one-second sampling.
    """
    if config is None:
        config = WeaverExperimentConfig()
    if stream is None:
        stream = build_weaver_stream(config)
    cell_stream = _truncate_for_duration(stream, streaming_rate, config.run_seconds)
    if log_interval is None:
        log_interval = _cell_log_interval(cell_stream, streaming_rate)

    platform = WeaverLikePlatform(batch_size=batch_size)
    harness = TestHarness(
        platform,
        cell_stream,
        HarnessConfig(
            rate=float(streaming_rate), level=0, log_interval=log_interval
        ),
    )
    run = harness.run()
    return WeaverCpuResult(
        timestamper_cpu=run.log.series("cpu_load", source="weaver-timestamper"),
        shard_cpu=run.log.series("cpu_load", source="weaver-shard"),
        streaming_rate=streaming_rate,
        batch_size=batch_size,
        duration=run.duration,
    )
