"""Figure 3b: events processed in Weaver under different streaming rates
and transaction batches.

"Weaver was only able to keep pace with lower streaming rates, while it
backthrottled faster rates. ... Independent of the actual streaming
rates, Weaver appeared to have an upper bound for throughput."

The experiment runs the Table-3 workload (Barabási–Albert bootstrap +
Zipf-biased evolution mix) against the simulated Weaver-like store for
every (streaming rate, batch size) combination and records the
committed-events-per-second time series measured at the client, which
is the level-0 observable the paper plots on a log axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.generator import StreamGenerator
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.metrics import TimeSeries
from repro.core.models import WeaverTable3Rules
from repro.core.stream import GraphStream
from repro.experiments.configs import WeaverExperimentConfig
from repro.platforms.weaverlike import WeaverLikePlatform

__all__ = ["WeaverThroughputResult", "run_weaver_throughput", "build_weaver_stream"]


@dataclass(frozen=True, slots=True)
class WeaverThroughputResult:
    """One (rate, batch) cell of Figure 3b."""

    streaming_rate: int
    batch_size: int
    throughput_series: TimeSeries
    committed_events: int
    duration: float
    rejected_attempts: int

    @property
    def mean_throughput(self) -> float:
        return self.committed_events / self.duration if self.duration > 0 else 0.0

    @property
    def kept_pace(self) -> bool:
        """Whether the store processed events as fast as they were offered."""
        return self.rejected_attempts == 0


def build_weaver_stream(config: WeaverExperimentConfig) -> GraphStream:
    """The Table-3 workload stream (bootstrap + evolution)."""
    rules = WeaverTable3Rules(
        n=config.bootstrap_n, m0=config.bootstrap_m0, m=config.bootstrap_m
    )
    generator = StreamGenerator(
        rules,
        rounds=config.evolution_rounds,
        seed=config.seed,
        emit_phase_marker=True,
        phase_pause_seconds=0.0,
    )
    return generator.generate()


def _truncate_for_duration(
    stream: GraphStream, rate: int, seconds: float
) -> GraphStream:
    """Limit a stream to roughly ``rate * seconds`` events."""
    limit = max(100, int(rate * seconds))
    if len(stream) <= limit:
        return stream
    return stream[:limit]


def _cell_log_interval(stream: GraphStream, rate: int) -> float:
    """Sampling period giving >= ~20 samples even for short scaled cells."""
    expected_duration = max(0.5, len(stream) / rate)
    return max(0.02, min(1.0, expected_duration / 20.0))


def run_weaver_throughput(
    config: WeaverExperimentConfig | None = None,
    stream: GraphStream | None = None,
    log_interval: float | None = None,
) -> list[WeaverThroughputResult]:
    """Regenerate Figure 3b's data: a throughput series per cell.

    ``log_interval=None`` (the default) picks a per-cell sampling
    period that yields roughly twenty samples however short the scaled
    run is; pass 1.0 to match the paper's one-second sampling.
    """
    if config is None:
        config = WeaverExperimentConfig()
    if stream is None:
        stream = build_weaver_stream(config)

    results: list[WeaverThroughputResult] = []
    for rate in config.streaming_rates:
        cell_stream = _truncate_for_duration(stream, rate, config.run_seconds)
        interval = (
            log_interval
            if log_interval is not None
            else _cell_log_interval(cell_stream, rate)
        )
        for batch_size in config.batch_sizes:
            platform = WeaverLikePlatform(batch_size=batch_size)
            harness = TestHarness(
                platform,
                cell_stream,
                HarnessConfig(rate=float(rate), level=0, log_interval=interval),
                query_probes={
                    "events_committed": lambda p: float(p.events_processed()),
                },
            )
            run = harness.run()
            committed = run.log.series("events_committed")
            results.append(
                WeaverThroughputResult(
                    streaming_rate=rate,
                    batch_size=batch_size,
                    throughput_series=committed.rate(),
                    committed_events=run.events_processed,
                    duration=run.duration,
                    rejected_attempts=run.rejected_attempts,
                )
            )
    return results
