"""The paper's experiments (section 5): one module per figure.

Each module exposes a ``run_*`` function that regenerates the data
behind the corresponding figure, parameterised by a scale factor so the
full paper-scale configuration and fast CI-scale versions share one
code path.  Configuration dataclasses mirror the paper's Tables 2–4.
"""

from repro.experiments.configs import (
    ChronographExperimentConfig,
    ReplayerExperimentConfig,
    RobustnessExperimentConfig,
    WeaverExperimentConfig,
)
from repro.experiments.fig3a import ReplayerThroughputRow, run_replayer_throughput
from repro.experiments.fig3b import WeaverThroughputResult, run_weaver_throughput
from repro.experiments.fig3c import WeaverCpuResult, run_weaver_cpu
from repro.experiments.fig3d import ChronographResult, run_chronograph
from repro.experiments.robustness import (
    CorpusReplayRow,
    RobustnessRow,
    replay_corpus,
    run_robustness,
)

__all__ = [
    "ReplayerExperimentConfig",
    "WeaverExperimentConfig",
    "ChronographExperimentConfig",
    "RobustnessExperimentConfig",
    "run_replayer_throughput",
    "ReplayerThroughputRow",
    "run_weaver_throughput",
    "WeaverThroughputResult",
    "run_weaver_cpu",
    "WeaverCpuResult",
    "run_chronograph",
    "ChronographResult",
    "run_robustness",
    "RobustnessRow",
    "replay_corpus",
    "CorpusReplayRow",
]
