"""Temporal properties of evolving graphs (section 3.2).

Dynamicity is reflected in the rate, locality and distribution of change
events — both topology churn and state updates.  This module derives
those temporal workload properties from a stream: growth curves, churn
rates per window, and update-locality distributions (how concentrated
state updates are on few entities).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.core.events import EventType, GraphEvent
from repro.core.stream import GraphStream

__all__ = [
    "GrowthPoint",
    "ChurnWindow",
    "growth_curve",
    "churn_rates",
    "update_locality",
    "locality_gini",
]


@dataclass(frozen=True, slots=True)
class GrowthPoint:
    """Graph size after a given number of stream events."""

    event_index: int
    vertices: int
    edges: int


@dataclass(frozen=True, slots=True)
class ChurnWindow:
    """Topology churn within one window of the stream.

    ``vertex_churn`` / ``edge_churn`` count adds plus removes of the
    respective entity type; ``net_vertex`` / ``net_edge`` are the signed
    changes (adds minus removes).
    """

    start_index: int
    end_index: int
    vertex_churn: int
    edge_churn: int
    net_vertex: int
    net_edge: int


def growth_curve(stream: GraphStream, sample_every: int = 1) -> list[GrowthPoint]:
    """Vertex/edge counts over the stream, sampled every N events.

    Processes the stream once without materialising graphs, tracking
    only counters (removing a vertex also removes its incident edges,
    which requires adjacency bookkeeping, so a lightweight adjacency is
    maintained).  Assumes a well-formed stream; precondition-violating
    events are ignored.
    """
    if sample_every <= 0:
        raise ValueError(f"sample_every must be positive, got {sample_every}")

    out_adj: dict[int, set[int]] = {}
    in_adj: dict[int, set[int]] = {}
    edges = 0
    points: list[GrowthPoint] = [GrowthPoint(0, 0, 0)]

    for index, event in enumerate(stream, start=1):
        if isinstance(event, GraphEvent):
            event_type = event.event_type
            if event_type is EventType.ADD_VERTEX:
                out_adj.setdefault(event.vertex_id, set())
                in_adj.setdefault(event.vertex_id, set())
            elif event_type is EventType.REMOVE_VERTEX:
                vertex = event.vertex_id
                if vertex in out_adj:
                    edges -= len(out_adj[vertex]) + len(in_adj[vertex])
                    for target in out_adj.pop(vertex):
                        in_adj[target].discard(vertex)
                    for source in in_adj.pop(vertex):
                        out_adj[source].discard(vertex)
            elif event_type is EventType.ADD_EDGE:
                edge = event.edge_id
                if (
                    edge.source in out_adj
                    and edge.target in out_adj
                    and edge.target not in out_adj[edge.source]
                ):
                    out_adj[edge.source].add(edge.target)
                    in_adj[edge.target].add(edge.source)
                    edges += 1
            elif event_type is EventType.REMOVE_EDGE:
                edge = event.edge_id
                if edge.source in out_adj and edge.target in out_adj[edge.source]:
                    out_adj[edge.source].discard(edge.target)
                    in_adj[edge.target].discard(edge.source)
                    edges -= 1
        if index % sample_every == 0:
            points.append(GrowthPoint(index, len(out_adj), edges))

    if points[-1].event_index != len(stream):
        points.append(GrowthPoint(len(stream), len(out_adj), edges))
    return points


def churn_rates(stream: GraphStream, window: int) -> list[ChurnWindow]:
    """Topology churn per window of ``window`` stream entries."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    events = stream.events
    result: list[ChurnWindow] = []
    for start in range(0, len(events), window):
        chunk = events[start : start + window]
        vertex_churn = edge_churn = net_vertex = net_edge = 0
        for event in chunk:
            if not isinstance(event, GraphEvent):
                continue
            event_type = event.event_type
            if event_type is EventType.ADD_VERTEX:
                vertex_churn += 1
                net_vertex += 1
            elif event_type is EventType.REMOVE_VERTEX:
                vertex_churn += 1
                net_vertex -= 1
            elif event_type is EventType.ADD_EDGE:
                edge_churn += 1
                net_edge += 1
            elif event_type is EventType.REMOVE_EDGE:
                edge_churn += 1
                net_edge -= 1
        result.append(
            ChurnWindow(
                start_index=start,
                end_index=start + len(chunk),
                vertex_churn=vertex_churn,
                edge_churn=edge_churn,
                net_vertex=net_vertex,
                net_edge=net_edge,
            )
        )
    return result


def update_locality(stream: GraphStream) -> dict[str, int]:
    """How state updates distribute over entities.

    Returns a histogram mapping entity key (``"v:<id>"`` for vertices,
    ``"e:<src>-<dst>"`` for edges) to the number of update events
    targeting it.  A heavy-tailed histogram indicates updates
    concentrated on few hot entities (the "huge numbers of state update
    operations on a single vertex" pattern from section 3.2).
    """
    counter: Counter[str] = Counter()
    for event in stream.graph_events():
        if event.event_type is EventType.UPDATE_VERTEX:
            counter[f"v:{event.vertex_id}"] += 1
        elif event.event_type is EventType.UPDATE_EDGE:
            counter[f"e:{event.edge_id}"] += 1
    return dict(counter)


def locality_gini(histogram: dict[str, int]) -> float:
    """Gini coefficient of an update-locality histogram.

    0.0 means perfectly uniform updates, values close to 1.0 mean nearly
    all updates hit a single entity.  Returns ``nan`` for an empty
    histogram.
    """
    counts = sorted(histogram.values())
    n = len(counts)
    if not n:
        return math.nan
    total = sum(counts)
    if not total:
        return 0.0
    cumulative = 0
    weighted = 0
    for i, value in enumerate(counts, start=1):
        cumulative += value
        weighted += cumulative
    # Gini from the Lorenz curve of sorted counts.
    return (n + 1 - 2 * weighted / total) / n
