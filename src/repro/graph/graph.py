"""Directed, stateful evolving graph (paper section 3.2, "Graph Types").

The model is a directed graph without multi-edges and without self
loops.  Both vertices and edges carry a mutable, user-defined string
state.  Vertices are identified by unique integer ids; edges by their
``(source, target)`` pair.

:class:`StreamGraph` enforces the preconditions of the six stream
operations and raises a dedicated error for each violation, which is
exactly what lets the framework study the effect of dropped, duplicated
or reordered events on graph consistency (section 3.2, "Streaming
Properties").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.events import EdgeId, EventType, GraphEvent
from repro.errors import (
    EdgeExistsError,
    EdgeNotFoundError,
    SelfLoopError,
    VertexExistsError,
    VertexNotFoundError,
)

__all__ = ["StreamGraph", "GraphDelta"]


@dataclass(frozen=True, slots=True)
class GraphDelta:
    """Summary of what a single applied event changed.

    ``removed_edges`` lists edges implicitly removed by a vertex
    removal (cascading delete), in addition to the operation target.
    """

    event: GraphEvent
    removed_edges: tuple[EdgeId, ...] = ()


class StreamGraph:
    """In-memory directed graph with stateful vertices and edges.

    The class is the reference graph representation used by the stream
    generator, by snapshot reconstruction, and by the simulated systems
    under test.  All six stream operations are methods; alternatively
    :meth:`apply` dispatches a :class:`~repro.core.events.GraphEvent`.
    """

    def __init__(self) -> None:
        self._vertex_state: dict[int, str] = {}
        self._edge_state: dict[EdgeId, str] = {}
        self._out: dict[int, set[int]] = {}
        self._in: dict[int, set[int]] = {}

    # -- vertex operations ------------------------------------------------

    def add_vertex(self, vertex_id: int, state: str = "") -> None:
        """Create a new vertex.  Raises :class:`VertexExistsError` if taken."""
        if vertex_id in self._vertex_state:
            raise VertexExistsError(f"vertex {vertex_id} already exists")
        self._vertex_state[vertex_id] = state
        self._out[vertex_id] = set()
        self._in[vertex_id] = set()

    def remove_vertex(self, vertex_id: int) -> tuple[EdgeId, ...]:
        """Delete a vertex and all incident edges.

        Returns the incident edges that were removed along with it.
        Raises :class:`VertexNotFoundError` for unknown ids.
        """
        if vertex_id not in self._vertex_state:
            raise VertexNotFoundError(f"vertex {vertex_id} does not exist")
        removed = tuple(
            [EdgeId(vertex_id, t) for t in sorted(self._out[vertex_id])]
            + [EdgeId(s, vertex_id) for s in sorted(self._in[vertex_id])]
        )
        for edge in removed:
            del self._edge_state[edge]
        for target in self._out.pop(vertex_id):
            self._in[target].discard(vertex_id)
        for source in self._in.pop(vertex_id):
            self._out[source].discard(vertex_id)
        del self._vertex_state[vertex_id]
        return removed

    def update_vertex(self, vertex_id: int, state: str) -> None:
        """Replace a vertex's state.  Raises :class:`VertexNotFoundError`."""
        if vertex_id not in self._vertex_state:
            raise VertexNotFoundError(f"vertex {vertex_id} does not exist")
        self._vertex_state[vertex_id] = state

    # -- edge operations ---------------------------------------------------

    def add_edge(self, source: int, target: int, state: str = "") -> None:
        """Create the directed edge ``source -> target``.

        Raises :class:`SelfLoopError` for self loops,
        :class:`VertexNotFoundError` when an endpoint is missing, and
        :class:`EdgeExistsError` for duplicates (no multigraphs).
        """
        if source == target:
            raise SelfLoopError(f"self loop on vertex {source} is not allowed")
        if source not in self._vertex_state:
            raise VertexNotFoundError(f"source vertex {source} does not exist")
        if target not in self._vertex_state:
            raise VertexNotFoundError(f"target vertex {target} does not exist")
        edge = EdgeId(source, target)
        if edge in self._edge_state:
            raise EdgeExistsError(f"edge {edge} already exists")
        self._edge_state[edge] = state
        self._out[source].add(target)
        self._in[target].add(source)

    def remove_edge(self, source: int, target: int) -> None:
        """Delete the edge ``source -> target``.

        Raises :class:`EdgeNotFoundError` when it is not present.
        """
        edge = EdgeId(source, target)
        if edge not in self._edge_state:
            raise EdgeNotFoundError(f"edge {edge} does not exist")
        del self._edge_state[edge]
        self._out[source].discard(target)
        self._in[target].discard(source)

    def update_edge(self, source: int, target: int, state: str) -> None:
        """Replace an edge's state.  Raises :class:`EdgeNotFoundError`."""
        edge = EdgeId(source, target)
        if edge not in self._edge_state:
            raise EdgeNotFoundError(f"edge {edge} does not exist")
        self._edge_state[edge] = state

    # -- event dispatch ----------------------------------------------------

    def apply(self, event: GraphEvent) -> GraphDelta:
        """Apply one graph-changing event, returning a :class:`GraphDelta`."""
        event_type = event.event_type
        if event_type is EventType.ADD_VERTEX:
            self.add_vertex(event.vertex_id, event.payload)
        elif event_type is EventType.REMOVE_VERTEX:
            removed = self.remove_vertex(event.vertex_id)
            return GraphDelta(event, removed)
        elif event_type is EventType.UPDATE_VERTEX:
            self.update_vertex(event.vertex_id, event.payload)
        elif event_type is EventType.ADD_EDGE:
            edge = event.edge_id
            self.add_edge(edge.source, edge.target, event.payload)
        elif event_type is EventType.REMOVE_EDGE:
            edge = event.edge_id
            self.remove_edge(edge.source, edge.target)
        elif event_type is EventType.UPDATE_EDGE:
            edge = event.edge_id
            self.update_edge(edge.source, edge.target, event.payload)
        else:  # pragma: no cover - GraphEvent constructor prevents this
            raise ValueError(f"cannot apply {event_type}")
        return GraphDelta(event)

    # -- accessors -----------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        return len(self._vertex_state)

    @property
    def edge_count(self) -> int:
        return len(self._edge_state)

    def has_vertex(self, vertex_id: int) -> bool:
        return vertex_id in self._vertex_state

    def has_edge(self, source: int, target: int) -> bool:
        return EdgeId(source, target) in self._edge_state

    def vertex_state(self, vertex_id: int) -> str:
        """State string of a vertex.  Raises :class:`VertexNotFoundError`."""
        try:
            return self._vertex_state[vertex_id]
        except KeyError:
            raise VertexNotFoundError(f"vertex {vertex_id} does not exist") from None

    def edge_state(self, source: int, target: int) -> str:
        """State string of an edge.  Raises :class:`EdgeNotFoundError`."""
        try:
            return self._edge_state[EdgeId(source, target)]
        except KeyError:
            raise EdgeNotFoundError(
                f"edge {format(EdgeId(source, target))} does not exist"
            ) from None

    def vertices(self) -> Iterator[int]:
        """Iterate over vertex ids (insertion order)."""
        return iter(self._vertex_state)

    def edges(self) -> Iterator[EdgeId]:
        """Iterate over edge ids (insertion order)."""
        return iter(self._edge_state)

    def successors(self, vertex_id: int) -> frozenset[int]:
        """Out-neighbours of a vertex.  Raises :class:`VertexNotFoundError`."""
        try:
            return frozenset(self._out[vertex_id])
        except KeyError:
            raise VertexNotFoundError(f"vertex {vertex_id} does not exist") from None

    def predecessors(self, vertex_id: int) -> frozenset[int]:
        """In-neighbours of a vertex.  Raises :class:`VertexNotFoundError`."""
        try:
            return frozenset(self._in[vertex_id])
        except KeyError:
            raise VertexNotFoundError(f"vertex {vertex_id} does not exist") from None

    def neighbors(self, vertex_id: int) -> frozenset[int]:
        """Union of in- and out-neighbours (undirected view)."""
        return self.successors(vertex_id) | self.predecessors(vertex_id)

    def out_degree(self, vertex_id: int) -> int:
        try:
            return len(self._out[vertex_id])
        except KeyError:
            raise VertexNotFoundError(f"vertex {vertex_id} does not exist") from None

    def in_degree(self, vertex_id: int) -> int:
        try:
            return len(self._in[vertex_id])
        except KeyError:
            raise VertexNotFoundError(f"vertex {vertex_id} does not exist") from None

    def degree(self, vertex_id: int) -> int:
        """Total degree (in + out)."""
        return self.in_degree(vertex_id) + self.out_degree(vertex_id)

    def copy(self) -> "StreamGraph":
        """An independent deep copy of the graph."""
        clone = StreamGraph()
        clone._vertex_state = dict(self._vertex_state)
        clone._edge_state = dict(self._edge_state)
        clone._out = {v: set(s) for v, s in self._out.items()}
        clone._in = {v: set(s) for v, s in self._in.items()}
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamGraph):
            return NotImplemented
        return (
            self._vertex_state == other._vertex_state
            and self._edge_state == other._edge_state
        )

    def __hash__(self) -> int:  # graphs are mutable; identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return (
            f"StreamGraph(vertices={self.vertex_count}, edges={self.edge_count})"
        )
