"""Reconstructing graphs from streams (exact-reference path, section 4.3).

Accuracy metrics compare a platform's approximate results against exact
results "prespecified by reconstructing the target graph and running a
separate batch computation as reference".  This module provides that
reconstruction: applying an event stream (or a prefix of it, up to an
index or a marker) to a fresh :class:`~repro.graph.graph.StreamGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.events import Event, GraphEvent, MarkerEvent
from repro.core.stream import GraphStream
from repro.errors import GraphOperationError
from repro.graph.graph import StreamGraph

__all__ = ["build_graph", "snapshot_at_marker", "snapshot_at_index", "ApplyReport"]


@dataclass(slots=True)
class ApplyReport:
    """Outcome of applying a stream to a graph.

    ``applied`` counts successfully executed graph events; ``failed``
    collects ``(stream_index, event, error)`` tuples for events whose
    preconditions were violated (which happens when replaying faulty
    streams with drops, duplicates, or reorderings).
    """

    applied: int = 0
    failed: list[tuple[int, GraphEvent, GraphOperationError]] = field(
        default_factory=list
    )

    @property
    def failure_rate(self) -> float:
        total = self.applied + len(self.failed)
        return len(self.failed) / total if total else 0.0


def build_graph(
    events: Iterable[Event],
    graph: StreamGraph | None = None,
    strict: bool = True,
) -> tuple[StreamGraph, ApplyReport]:
    """Apply all graph events of ``events`` to ``graph`` (or a new graph).

    With ``strict=True`` (the default) the first precondition violation
    propagates as a :class:`~repro.errors.GraphOperationError` — this is
    the behaviour expected from a reliable, ordered, exactly-once stream.
    With ``strict=False`` failing events are recorded in the returned
    :class:`ApplyReport` and skipped, which models a tolerant system fed
    with a fault-injected stream.
    """
    if graph is None:
        graph = StreamGraph()
    report = ApplyReport()
    for index, event in enumerate(events):
        if not isinstance(event, GraphEvent):
            continue
        try:
            graph.apply(event)
        except GraphOperationError as error:
            if strict:
                raise
            report.failed.append((index, event, error))
        else:
            report.applied += 1
    return graph, report


def snapshot_at_index(
    stream: GraphStream, index: int, strict: bool = True
) -> StreamGraph:
    """Graph defined by the stream prefix ``stream[:index]``.

    ``index`` is an exclusive upper bound into the full stream (markers
    and control events count as positions but do not change the graph).
    """
    if index < 0:
        raise ValueError(f"index must be >= 0, got {index}")
    graph, __ = build_graph(stream[:index], strict=strict)
    return graph


def snapshot_at_marker(
    stream: GraphStream, label: str, strict: bool = True
) -> StreamGraph:
    """Graph defined by all events preceding the marker ``label``.

    This is the exact reference a computation result correlated with
    that marker should be compared against.  Raises :class:`ValueError`
    when the marker does not exist.
    """
    index = stream.marker_index(label)
    return snapshot_at_index(stream, index, strict=strict)


def marker_snapshots(
    stream: GraphStream, strict: bool = True
) -> list[tuple[MarkerEvent, StreamGraph]]:
    """Snapshots at every marker, computed in a single pass.

    Returns ``(marker, graph_copy)`` pairs in stream order.  More
    efficient than calling :func:`snapshot_at_marker` per label because
    the graph is built once and copied at each marker.
    """
    graph = StreamGraph()
    snapshots: list[tuple[MarkerEvent, StreamGraph]] = []
    report = ApplyReport()
    for index, event in enumerate(stream):
        if isinstance(event, MarkerEvent):
            snapshots.append((event, graph.copy()))
        elif isinstance(event, GraphEvent):
            try:
                graph.apply(event)
            except GraphOperationError as error:
                if strict:
                    raise
                report.failed.append((index, event, error))
    return snapshots
