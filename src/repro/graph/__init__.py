"""Graph substrate: directed stateful graphs, builders, and properties."""

from repro.graph.builders import (
    ApplyReport,
    build_graph,
    marker_snapshots,
    snapshot_at_index,
    snapshot_at_marker,
)
from repro.graph.graph import GraphDelta, StreamGraph

__all__ = [
    "StreamGraph",
    "GraphDelta",
    "build_graph",
    "snapshot_at_index",
    "snapshot_at_marker",
    "marker_snapshots",
    "ApplyReport",
]
