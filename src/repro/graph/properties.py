"""Structural graph properties (section 3.2, "Graph Evolution Properties").

Static structural measures of a single graph snapshot: size, degree
distributions, density, clustering, and reciprocity.  Temporal
properties of evolving graphs live in :mod:`repro.graph.temporal`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.graph.graph import StreamGraph

__all__ = [
    "GraphSummary",
    "summarize",
    "degree_distribution",
    "in_degree_distribution",
    "out_degree_distribution",
    "density",
    "average_degree",
    "clustering_coefficient",
    "global_clustering",
    "reciprocity",
]


@dataclass(frozen=True, slots=True)
class GraphSummary:
    """Compact set of global structural properties of one snapshot."""

    vertex_count: int
    edge_count: int
    density: float
    average_degree: float
    max_in_degree: int
    max_out_degree: int
    reciprocity: float


def degree_distribution(graph: StreamGraph) -> dict[int, int]:
    """Histogram mapping total degree -> number of vertices."""
    return dict(Counter(graph.degree(v) for v in graph.vertices()))


def in_degree_distribution(graph: StreamGraph) -> dict[int, int]:
    """Histogram mapping in-degree -> number of vertices."""
    return dict(Counter(graph.in_degree(v) for v in graph.vertices()))


def out_degree_distribution(graph: StreamGraph) -> dict[int, int]:
    """Histogram mapping out-degree -> number of vertices."""
    return dict(Counter(graph.out_degree(v) for v in graph.vertices()))


def density(graph: StreamGraph) -> float:
    """Directed density ``m / (n * (n - 1))``; 0.0 for graphs with n < 2."""
    n = graph.vertex_count
    if n < 2:
        return 0.0
    return graph.edge_count / (n * (n - 1))


def average_degree(graph: StreamGraph) -> float:
    """Mean total degree ``2m / n``; 0.0 for the empty graph."""
    n = graph.vertex_count
    if not n:
        return 0.0
    return 2 * graph.edge_count / n


def clustering_coefficient(graph: StreamGraph, vertex_id: int) -> float:
    """Local clustering of one vertex on the undirected view.

    Fraction of pairs of neighbours that are themselves connected (in
    either direction).  Vertices with fewer than two neighbours have a
    coefficient of 0.0.
    """
    neighbors = sorted(graph.neighbors(vertex_id))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    for i, u in enumerate(neighbors):
        for w in neighbors[i + 1 :]:
            if graph.has_edge(u, w) or graph.has_edge(w, u):
                links += 1
    return 2 * links / (k * (k - 1))


def global_clustering(graph: StreamGraph) -> float:
    """Average local clustering coefficient; 0.0 for the empty graph."""
    n = graph.vertex_count
    if not n:
        return 0.0
    total = sum(clustering_coefficient(graph, v) for v in graph.vertices())
    return total / n


def reciprocity(graph: StreamGraph) -> float:
    """Fraction of edges whose reverse edge also exists; 0.0 if no edges."""
    m = graph.edge_count
    if not m:
        return 0.0
    reciprocated = sum(
        1 for e in graph.edges() if graph.has_edge(e.target, e.source)
    )
    return reciprocated / m


def summarize(graph: StreamGraph) -> GraphSummary:
    """All global properties of :class:`GraphSummary` in one pass."""
    vertices = list(graph.vertices())
    max_in = max((graph.in_degree(v) for v in vertices), default=0)
    max_out = max((graph.out_degree(v) for v in vertices), default=0)
    return GraphSummary(
        vertex_count=graph.vertex_count,
        edge_count=graph.edge_count,
        density=density(graph),
        average_degree=average_degree(graph),
        max_in_degree=max_in,
        max_out_degree=max_out,
        reciprocity=reciprocity(graph),
    )
