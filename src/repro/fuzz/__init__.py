"""Adversarial workload fuzzer: mutate, evaluate, minimize, archive.

The Perun-style loop over GraphTides workloads: seeded mutators
(:mod:`repro.fuzz.mutators`) perturb generator configs and stream files
in both on-disk formats, an evaluator (:mod:`repro.fuzz.evaluator`)
runs each candidate through the real parse → round-trip → shard →
platform → replay pipeline behind a watchdog, a ddmin minimizer
(:mod:`repro.fuzz.minimizer`) shrinks findings, and survivors land in a
versioned regression corpus (:mod:`repro.fuzz.corpus`) replayed by CI
and the robustness experiment.
"""

from repro.fuzz.corpus import CorpusEntry, load_corpus, replay_entry, save_entry
from repro.fuzz.engine import Finding, FuzzConfig, FuzzReport, run_fuzz
from repro.fuzz.evaluator import (
    Baseline,
    EvaluatorConfig,
    Verdict,
    calibrate,
    evaluate,
)
from repro.fuzz.minimizer import ddmin, minimize_workload
from repro.fuzz.mutators import (
    BYTE_MUTATORS,
    ESCAPE_DICTIONARY,
    EVENT_MUTATORS,
    apply_byte_mutator,
    apply_event_mutators,
)
from repro.fuzz.workload import (
    BaseConfig,
    Workload,
    build_base,
    bytes_to_events,
    events_to_bytes,
    unwrap_slot_stream,
)

__all__ = [
    "BaseConfig",
    "Baseline",
    "BYTE_MUTATORS",
    "CorpusEntry",
    "ESCAPE_DICTIONARY",
    "EVENT_MUTATORS",
    "EvaluatorConfig",
    "Finding",
    "FuzzConfig",
    "FuzzReport",
    "Verdict",
    "Workload",
    "apply_byte_mutator",
    "apply_event_mutators",
    "build_base",
    "bytes_to_events",
    "calibrate",
    "events_to_bytes",
    "ddmin",
    "evaluate",
    "load_corpus",
    "minimize_workload",
    "replay_entry",
    "run_fuzz",
    "unwrap_slot_stream",
    "save_entry",
]
