"""The fuzz evaluator: one candidate through the real pipeline, judged.

Stages (each a real framework entry point, not a model of one):

1. ``parse``      — :func:`repro.core.codec.parse_stream_file` (format
                    autodetected, so binary candidates walk binfmt).
2. ``roundtrip``  — CSV↔GTB1↔back conversion; the reparsed event list
                    must equal the original exactly (payload bytes,
                    float controls included).
3. ``shard``      — :func:`repro.core.sharding.write_shards` with
                    ``shard_by="hash"`` (the streamed byte-level
                    partitioner); the resulting :class:`ShardPlan`'s
                    graph-event balance feeds the skew cliff oracle.
4. ``platform``   — a simulated-time :class:`TestHarness` run into a
                    real platform; the sampled ``backlog`` series feeds
                    the backlog-blowup cliff oracle against a
                    calibrated baseline.  Virtual time keeps this stage
                    deterministic and immune to pause bombs.
5. ``replay``     — a straight :class:`LiveReplayer` run, then a
                    chaos+retry+checkpoint-resume run (seeded per
                    candidate, ``batch_size=1`` so the fault sequence
                    is independent of pacing); delivered-line counts
                    must not regress — the silent-loss oracle.

The whole pipeline runs in a watchdog thread: exceeding the deadline is
itself a verdict (``hang``), recorded with the stage that wedged.

Oracle verdicts (:class:`Verdict.status`):

* ``ok``         — all stages clean.
* ``rejected``   — a stage refused the input with a typed
                   :class:`~repro.errors.GraphTidesError` (the correct
                   response to malformed input; not a finding).
* ``crash``      — an *untyped* exception escaped a stage.
* ``hang``       — the deadline elapsed.
* ``divergence`` — the format round trip changed the event list.
* ``loss``       — the resilient replay delivered fewer lines than the
                   straight replay.
* ``cliff``      — shard imbalance or backlog blowup beyond the
                   calibrated baseline.
"""

from __future__ import annotations

import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import codec
from repro.core.connectors import CallbackTransport
from repro.core.events import Event, PauseEvent, SpeedEvent, pause, speed
from repro.core.harness import HarnessConfig, TestHarness
from repro.core.replayer import LiveReplayer
from repro.core.resilience import (
    ChaosConfig,
    ChaosTransport,
    RetryPolicy,
    RetryingTransport,
)
from repro.core.sharding import write_shards
from repro.core.stream import GraphStream
from repro.errors import GraphTidesError
from repro.fuzz.workload import Workload

__all__ = [
    "Verdict",
    "Baseline",
    "EvaluatorConfig",
    "FINDING_STATUSES",
    "evaluate",
    "calibrate",
]

#: Verdict statuses that count as findings (everything else is clean).
FINDING_STATUSES = ("crash", "hang", "divergence", "loss", "cliff")


@dataclass(frozen=True, slots=True)
class Verdict:
    """The oracle outcome for one candidate."""

    status: str
    stage: str
    detail: str = ""
    kind: str = ""

    @property
    def is_finding(self) -> bool:
        return self.status in FINDING_STATUSES

    @property
    def signature(self) -> str:
        """Dedup/minimization identity: hangs keep only their stage
        (the wedged operation can shift under shrinking); every other
        status keys on the failure kind too."""
        if self.status == "hang":
            return f"hang:{self.stage}"
        return f"{self.status}:{self.stage}:{self.kind}"

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "stage": self.stage,
            "detail": self.detail,
            "kind": self.kind,
            "signature": self.signature,
        }


@dataclass(frozen=True, slots=True)
class Baseline:
    """Calibrated clean-workload reference for the cliff oracles."""

    peak_backlog: float = 0.0


@dataclass(frozen=True, slots=True)
class EvaluatorConfig:
    """Knobs of one evaluation run (all recorded into corpus metadata)."""

    seed: int = 42
    deadline: float = 20.0
    workers: int = 4
    harness_rate: float = 2000.0
    harness_log_interval: float = 0.02
    platform_service_time: float = 20e-6
    platform_queue_capacity: int = 32
    platform_speed_floor: float = 0.05
    platform_pause_cap: float = 0.25
    replay_rate: float = 20000.0
    replay_pause_budget: float = 5.0
    max_replay_events: int = 20000
    cliff_imbalance: float = 3.0
    cliff_backlog_factor: float = 8.0
    cliff_backlog_floor: float = 50.0
    send_failure_probability: float = 0.02
    reset_probability: float = 0.01
    partial_batch_probability: float = 0.0
    retry_attempts: int = 6
    retry_base_delay: float = 0.001
    max_resumes: int = 2

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EvaluatorConfig":
        import dataclasses

        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass
class _Progress:
    """Shared cell the watchdog reads while the pipeline thread runs."""

    stage: str = "parse"
    verdict: Verdict | None = None
    lock: threading.Lock = field(default_factory=threading.Lock)

    def enter(self, stage: str) -> None:
        with self.lock:
            self.stage = stage

    def current(self) -> str:
        with self.lock:
            return self.stage


def _first_difference(
    original: list[Event], reparsed: list[Event]
) -> str:
    if len(original) != len(reparsed):
        return (
            f"event count changed: {len(original)} -> {len(reparsed)}"
        )
    for index, (a, b) in enumerate(zip(original, reparsed)):
        if a != b:
            return f"event {index} changed: {a!r} -> {b!r}"
    return "streams differ"


def _stage_parse(path: Path) -> list[Event]:
    return codec.parse_stream_file(path)


def _stage_roundtrip(
    events: list[Event], workload: Workload, tmp: Path
) -> Verdict | None:
    """Convert to the other format and back; events must survive."""
    other = "csv" if workload.fmt == "binary" else "binary"
    first = tmp / f"rt-first{'.gtb' if other == 'binary' else '.csv'}"
    second = tmp / f"rt-second{workload.suffix}"
    codec.write_stream_file(first, events, format=other)
    reparsed_other = codec.parse_stream_file(first)
    codec.write_stream_file(second, reparsed_other, format=workload.fmt)
    reparsed = codec.parse_stream_file(second)
    if reparsed != events:
        return Verdict(
            "divergence",
            "roundtrip",
            _first_difference(events, reparsed),
            kind=f"{workload.fmt}-{other}-{workload.fmt}",
        )
    return None


def _stage_shard(
    path: Path, config: EvaluatorConfig, tmp: Path
) -> Verdict | None:
    """Streamed byte-level partitioning; imbalance is the skew cliff."""
    shard_dir = tmp / "shards"
    plan = write_shards(
        path, config.workers, shard_dir, shard_by="hash"
    )
    total = plan.total_graph_events
    if total >= 8 * config.workers:
        mean = total / config.workers
        peak = max(plan.graph_events)
        imbalance = peak / mean if mean else 0.0
        if imbalance >= config.cliff_imbalance:
            return Verdict(
                "cliff",
                "shard",
                f"hash-shard imbalance {imbalance:.2f}x "
                f"(shards {list(plan.graph_events)})",
                kind="shard-imbalance",
            )
    return None


def _platform_metrics(
    events: list[Event], config: EvaluatorConfig
) -> tuple[float, int, bool]:
    """(peak sampled backlog, rejected attempts, drained) of a
    simulated-time harness run — all virtual-clock quantities, so the
    numbers are exact functions of the event list and the config."""
    from repro.algorithms.pagerank import OnlinePageRank
    from repro.platforms.inmem import InMemoryPlatform

    # Bound the *simulated* duration: a SPEED,1e-9 or PAUSE,3600 would
    # make the virtual clock crawl through millions of backlog samples
    # (a wall-clock hang in a stage that must stay cheap).  Flooring the
    # factor and capping pauses leaves the cliff metrics intact — a
    # 0.25s simulated pause already fully drains the bounded queue.
    bounded: list[Event] = []
    for event in events:
        if isinstance(event, SpeedEvent) and event.factor < config.platform_speed_floor:
            bounded.append(speed(config.platform_speed_floor))
        elif isinstance(event, PauseEvent) and event.seconds > config.platform_pause_cap:
            bounded.append(pause(config.platform_pause_cap))
        else:
            bounded.append(event)

    platform = InMemoryPlatform(
        service_time=config.platform_service_time,
        queue_capacity=config.platform_queue_capacity,
    )
    platform.add_online(OnlinePageRank(work_per_event=8))
    result = TestHarness(
        platform,
        GraphStream(bounded),
        HarnessConfig(
            rate=config.harness_rate,
            level=1,
            log_interval=config.harness_log_interval,
        ),
    ).run()
    try:
        peak = max(result.log.series("backlog").values)
    except GraphTidesError:
        peak = 0.0
    return float(peak), result.rejected_attempts, result.drained


def _stage_platform(
    events: list[Event], config: EvaluatorConfig, baseline: Baseline
) -> Verdict | None:
    """Simulated-time harness run; backlog blowup vs the baseline.

    Two cliff signals: the bounded input queue overflowing (exact,
    burst-proof — a rejection means arrivals outran service by a whole
    queue) and the sampled backlog series exceeding the calibrated
    baseline by ``cliff_backlog_factor``.
    """
    peak, rejected, drained = _platform_metrics(events, config)
    if rejected > 0:
        return Verdict(
            "cliff",
            "platform",
            f"input queue overflowed: {rejected} rejection(s) at "
            f"capacity {config.platform_queue_capacity} "
            f"(drained={drained})",
            kind="queue-overflow",
        )
    threshold = max(
        config.cliff_backlog_floor,
        config.cliff_backlog_factor * (baseline.peak_backlog + 1.0),
    )
    if peak >= threshold:
        return Verdict(
            "cliff",
            "platform",
            f"backlog peaked at {peak:.0f} "
            f"(baseline {baseline.peak_backlog:.0f}, "
            f"threshold {threshold:.0f}, drained={drained})",
            kind="backlog-blowup",
        )
    return None


def _stage_replay(
    events: list[Event], workload: Workload, config: EvaluatorConfig
) -> Verdict | None:
    """Straight replay vs chaos+retry+resume replay, by delivered count."""
    if len(events) > config.max_replay_events:
        return None

    # Predict the wall-clock cost before spending it: the replayer
    # blocks on PAUSE and paces at 1/(rate*factor) by design, so the
    # stream's replay duration is a pure function of its controls.  A
    # stream that must block past the budget is a guaranteed wedge —
    # report the hang without waiting for the watchdog (same signature,
    # so minimization probes reproduce it instantly).
    duration = 0.0
    pause_total = 0.0
    factor = 1.0
    for event in events:
        if isinstance(event, SpeedEvent):
            factor = event.factor
        elif isinstance(event, PauseEvent):
            pause_total += event.seconds
        else:
            duration += 1.0 / (config.replay_rate * max(factor, 1e-12))
    if duration + pause_total > config.replay_pause_budget:
        return Verdict(
            "hang",
            "replay",
            f"replay must block for {duration + pause_total:.1f}s "
            f"({pause_total:.1f}s of PAUSE), over the "
            f"{config.replay_pause_budget:g}s budget",
            kind="pause-budget",
        )
    # Under budget, pauses only slow the runs down without affecting
    # the delivered-count comparison — strip them from both replays.
    events = [e for e in events if not isinstance(e, PauseEvent)]

    straight = [0]
    LiveReplayer(
        events,
        CallbackTransport(lambda line: straight.__setitem__(0, straight[0] + 1)),
        rate=config.replay_rate,
        batch_size=1,
    ).run()

    resilient = [0]
    # Per-candidate sub-seed: stable across runs and processes, distinct
    # per workload content.
    chaos_seed = (config.seed * 0x9E3779B1 + workload.digest) & 0x7FFFFFFF

    def build_transport():
        return RetryingTransport(
            ChaosTransport(
                CallbackTransport(
                    lambda line: resilient.__setitem__(0, resilient[0] + 1)
                ),
                ChaosConfig(
                    send_failure_probability=config.send_failure_probability,
                    reset_probability=config.reset_probability,
                    partial_batch_probability=config.partial_batch_probability,
                    seed=chaos_seed,
                ),
            ),
            RetryPolicy(
                max_attempts=config.retry_attempts,
                base_delay=config.retry_base_delay,
                seed=chaos_seed,
            ),
        )

    LiveReplayer(
        events,
        build_transport(),
        rate=config.replay_rate,
        batch_size=1,
        max_resumes=config.max_resumes,
        transport_factory=build_transport,
    ).run()

    if resilient[0] < straight[0]:
        return Verdict(
            "loss",
            "replay",
            f"straight replay delivered {straight[0]} line(s), "
            f"resilient replay only {resilient[0]}",
            kind="resume-undercount",
        )
    return None


def _run_pipeline(
    workload: Workload,
    config: EvaluatorConfig,
    baseline: Baseline,
    progress: _Progress,
    tmp: Path,
) -> Verdict:
    path = tmp / f"workload{workload.suffix}"
    path.write_bytes(workload.data)

    progress.enter("parse")
    if workload.fmt == "shm":
        # Slot-layer candidates route through the ring's own header
        # validators first (scan_slot_stream — the checks a live
        # RingConsumer applies), then the reassembled inner stream
        # walks the rest of the pipeline like any other workload.
        from repro.fuzz.workload import unwrap_slot_stream

        inner_fmt, inner_data = unwrap_slot_stream(workload.data)
        workload = Workload(inner_fmt, inner_data)
        path = tmp / f"workload-inner{workload.suffix}"
        path.write_bytes(workload.data)
    events = _stage_parse(path)

    progress.enter("roundtrip")
    verdict = _stage_roundtrip(events, workload, tmp)
    if verdict is not None:
        return verdict

    progress.enter("shard")
    verdict = _stage_shard(path, config, tmp)
    if verdict is not None:
        return verdict

    progress.enter("platform")
    verdict = _stage_platform(events, config, baseline)
    if verdict is not None:
        return verdict

    progress.enter("replay")
    verdict = _stage_replay(events, workload, config)
    if verdict is not None:
        return verdict

    return Verdict("ok", "replay", f"{len(events)} event(s) clean")


def evaluate(
    workload: Workload,
    config: EvaluatorConfig | None = None,
    baseline: Baseline | None = None,
) -> Verdict:
    """Run one candidate through the pipeline behind the watchdog."""
    if config is None:
        config = EvaluatorConfig()
    if baseline is None:
        baseline = Baseline()
    progress = _Progress()
    holder: dict = {}

    with tempfile.TemporaryDirectory(prefix="graphtides-fuzz-") as tmpdir:
        tmp = Path(tmpdir)

        def body() -> None:
            try:
                holder["verdict"] = _run_pipeline(
                    workload, config, baseline, progress, tmp
                )
            except GraphTidesError as exc:
                holder["verdict"] = Verdict(
                    "rejected",
                    progress.current(),
                    str(exc),
                    kind=type(exc).__name__,
                )
            except BaseException as exc:  # the crash oracle
                holder["verdict"] = Verdict(
                    "crash",
                    progress.current(),
                    f"{type(exc).__name__}: {exc}",
                    kind=type(exc).__name__,
                )

        worker = threading.Thread(
            target=body, name="fuzz-evaluator", daemon=True
        )
        worker.start()
        worker.join(config.deadline)
        if worker.is_alive():
            # The worker is wedged (e.g. a pause bomb mid-replay); it is
            # a daemon, so it cannot outlive the process.  The temp dir
            # may be cleaned under it — acceptable on this path.
            return Verdict(
                "hang",
                progress.current(),
                f"deadline of {config.deadline:g}s exceeded "
                f"in stage {progress.current()!r}",
                kind="deadline",
            )
    verdict = holder.get("verdict")
    if verdict is None:  # pragma: no cover - defensive
        return Verdict("crash", progress.current(), "worker died silently")
    return verdict


def calibrate(
    base: Workload,
    config: EvaluatorConfig | None = None,
) -> Baseline:
    """Measure the clean base workload's peak backlog for cliff oracles."""
    if config is None:
        config = EvaluatorConfig()
    with tempfile.TemporaryDirectory(prefix="graphtides-fuzz-") as tmpdir:
        path = Path(tmpdir) / f"base{base.suffix}"
        path.write_bytes(base.data)
        events = codec.parse_stream_file(path)
    peak, __, __ = _platform_metrics(events, config)
    return Baseline(peak_backlog=peak)
