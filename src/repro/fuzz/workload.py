"""Fuzz workloads: serialized stream candidates plus their base builders.

A :class:`Workload` is the unit the fuzzer mutates, evaluates and
minimizes — a stream file's exact bytes in one of the two on-disk
formats.  Keeping candidates as bytes (not event lists) means byte-level
mutators and the minimizer operate on precisely what the parsers see,
including malformed content no event object could represent.

Base workloads come from the real generator engine
(:class:`~repro.core.generator.StreamGenerator`), parameterised by a
small :class:`BaseConfig` the engine's config mutators perturb — the
"mutators over generator configs" half of the fuzzer.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core import binfmt, codec
from repro.core.events import Event
from repro.core.generator import StreamGenerator
from repro.core.models import SocialNetworkRules, UniformRules

__all__ = [
    "Workload",
    "BaseConfig",
    "build_base",
    "events_to_bytes",
    "bytes_to_events",
    "unwrap_slot_stream",
    "mutate_base_config",
]


@dataclass(frozen=True, slots=True)
class Workload:
    """One fuzz candidate: the exact bytes of a stream file.

    ``fmt`` is ``"csv"``, ``"binary"`` or ``"shm"`` — the format the
    bytes claim to be (the evaluator still autodetects, so a byte
    mutator that destroys the magic simply demotes a binary candidate
    to CSV parsing, which is itself an interesting path).  ``"shm"``
    candidates are flat ``GTRS`` slot streams — the exact framing the
    shared-memory ring publishes — so the slot-header validators in
    :mod:`repro.core.shm` become a fuzzed surface too.
    """

    fmt: str
    data: bytes

    @property
    def suffix(self) -> str:
        if self.fmt == "binary":
            return ".gtb"
        if self.fmt == "shm":
            return ".shm"
        return ".csv"

    @property
    def digest(self) -> int:
        """Process-stable content fingerprint (used for sub-seeding)."""
        return zlib.crc32(self.data)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_bytes(self.data)
        return path

    @classmethod
    def from_file(cls, path: str | Path) -> "Workload":
        path = Path(path)
        data = path.read_bytes()
        from repro.core import shm

        if data.startswith(shm.SLOT_STREAM_MAGIC):
            return cls(fmt="shm", data=data)
        fmt = codec.detect_stream_format(path)
        return cls(fmt=fmt, data=data)


def events_to_bytes(events: list[Event], fmt: str) -> bytes:
    """Serialize events to stream-file bytes in ``fmt``."""
    if fmt == "binary":
        buffer = io.BytesIO()
        binfmt.write_binary_stream(buffer, events)
        return buffer.getvalue()
    if fmt == "shm":
        return _events_to_slot_stream(events)
    if fmt != "csv":
        raise ValueError(f"unknown workload format {fmt!r}")
    return codec.format_events(events).encode("utf-8")


def _events_to_slot_stream(events: list[Event], batch_records: int = 256) -> bytes:
    """Serialize events as the flat GTRS slot stream a ring would carry.

    Graph-event runs become FRAME slots (one GTB1 frame each, up to
    ``batch_records`` records), control events become single-record
    FRAME slots, and a trailing EOF slot closes the stream — the wire
    layout :class:`repro.core.connectors.ShmTransport` publishes.
    """
    from repro.core import shm
    from repro.core.events import GraphEvent

    slots: list[tuple[int, int, bytes]] = []
    pending: list[GraphEvent] = []

    def flush() -> None:
        if pending:
            frame = binfmt.encode_graph_frame(pending)
            slots.append((shm.SLOT_FRAME, len(pending), frame))
            pending.clear()

    for event in events:
        if isinstance(event, GraphEvent):
            pending.append(event)
            if len(pending) >= batch_records:
                flush()
        else:
            flush()
            slots.append((shm.SLOT_FRAME, 1, binfmt.encode_control_frame(event)))
    flush()
    slots.append((shm.SLOT_EOF, 0, b""))
    return shm.dump_slot_stream(slots)


def unwrap_slot_stream(data: bytes) -> tuple[str, bytes]:
    """Validate a GTRS slot stream and reassemble the inner stream.

    Returns ``(fmt, stream_bytes)`` — what a live
    :class:`~repro.core.connectors.ShmReceiver` in sink mode would have
    written to disk: FRAME payloads behind the GTB1 magic, or RAW
    payloads concatenated as CSV.  Raises
    :class:`~repro.errors.StreamFormatError` (with the slot's byte
    offset) on any corrupt header or payload, and on streams mixing the
    two payload kinds — the transport never interleaves them.
    """
    from repro.core import shm
    from repro.errors import StreamFormatError

    shm.scan_slot_stream(data)
    kinds = set()
    payloads: list[bytes] = []
    position = len(shm.SLOT_STREAM_MAGIC)
    for kind, __, payload in shm.iter_slot_stream(data):
        if kind != shm.SLOT_EOF:
            if kinds and kind not in kinds:
                raise StreamFormatError(
                    "slot stream mixes RAW and FRAME payloads",
                    byte_offset=position,
                )
            kinds.add(kind)
            payloads.append(bytes(payload))
        position += shm._WIRE_SLOT.size + len(payload)
    if shm.SLOT_FRAME in kinds:
        return "binary", binfmt.MAGIC + b"".join(payloads)
    return "csv", b"".join(payloads)


def bytes_to_events(workload: Workload) -> list[Event]:
    """Parse a workload's bytes back into events (raises on malformed)."""
    import tempfile

    fmt, data = workload.fmt, workload.data
    if fmt == "shm":
        fmt, data = unwrap_slot_stream(data)
    suffix = ".gtb" if fmt == "binary" else ".csv"
    with tempfile.TemporaryDirectory(prefix="graphtides-fuzz-") as tmp:
        path = Path(tmp) / f"workload{suffix}"
        path.write_bytes(data)
        return codec.parse_stream_file(path)


# ---------------------------------------------------------------------------
# Base workload builders (generator-config mutation targets)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BaseConfig:
    """Generator parameters a config mutator perturbs.

    Every field is part of the candidate's identity: the engine caches
    built base streams keyed on this config, so equal configs always
    produce byte-identical workloads.
    """

    model: str = "uniform"  # "uniform" | "social"
    rounds: int = 120
    bootstrap_vertices: int = 12
    bootstrap_edges: int = 16
    seed: int = 0
    fmt: str = "csv"


_MODELS = ("uniform", "social")
_FORMATS = ("csv", "binary", "shm")


def build_base(config: BaseConfig) -> Workload:
    """Generate the base stream for ``config`` and serialize it."""
    if config.model == "social":
        rules = SocialNetworkRules()
    else:
        rules = UniformRules(
            bootstrap_vertices=config.bootstrap_vertices,
            bootstrap_edges=config.bootstrap_edges,
        )
    stream = StreamGenerator(
        rules, rounds=config.rounds, seed=config.seed
    ).generate()
    return Workload(config.fmt, events_to_bytes(list(stream), config.fmt))


def mutate_base_config(config: BaseConfig, rng) -> BaseConfig:
    """Perturb one generator parameter (seeded; identity-preserving)."""
    choice = rng.randrange(5)
    if choice == 0:
        return replace(config, model=_MODELS[rng.randrange(len(_MODELS))])
    if choice == 1:
        return replace(config, rounds=max(10, rng.randrange(20, 400)))
    if choice == 2:
        return replace(
            config,
            bootstrap_vertices=rng.randrange(2, 40),
            bootstrap_edges=rng.randrange(0, 60),
        )
    if choice == 3:
        return replace(config, seed=rng.randrange(1 << 16))
    return replace(config, fmt=_FORMATS[rng.randrange(len(_FORMATS))])
