"""Fuzz workloads: serialized stream candidates plus their base builders.

A :class:`Workload` is the unit the fuzzer mutates, evaluates and
minimizes — a stream file's exact bytes in one of the two on-disk
formats.  Keeping candidates as bytes (not event lists) means byte-level
mutators and the minimizer operate on precisely what the parsers see,
including malformed content no event object could represent.

Base workloads come from the real generator engine
(:class:`~repro.core.generator.StreamGenerator`), parameterised by a
small :class:`BaseConfig` the engine's config mutators perturb — the
"mutators over generator configs" half of the fuzzer.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass, replace
from pathlib import Path

from repro.core import binfmt, codec
from repro.core.events import Event
from repro.core.generator import StreamGenerator
from repro.core.models import SocialNetworkRules, UniformRules

__all__ = [
    "Workload",
    "BaseConfig",
    "build_base",
    "events_to_bytes",
    "bytes_to_events",
    "mutate_base_config",
]


@dataclass(frozen=True, slots=True)
class Workload:
    """One fuzz candidate: the exact bytes of a stream file.

    ``fmt`` is ``"csv"`` or ``"binary"`` — the format the bytes claim
    to be (the evaluator still autodetects, so a byte mutator that
    destroys the magic simply demotes a binary candidate to CSV
    parsing, which is itself an interesting path).
    """

    fmt: str
    data: bytes

    @property
    def suffix(self) -> str:
        return ".gtb" if self.fmt == "binary" else ".csv"

    @property
    def digest(self) -> int:
        """Process-stable content fingerprint (used for sub-seeding)."""
        return zlib.crc32(self.data)

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_bytes(self.data)
        return path

    @classmethod
    def from_file(cls, path: str | Path) -> "Workload":
        path = Path(path)
        fmt = codec.detect_stream_format(path)
        return cls(fmt=fmt, data=path.read_bytes())


def events_to_bytes(events: list[Event], fmt: str) -> bytes:
    """Serialize events to stream-file bytes in ``fmt``."""
    if fmt == "binary":
        buffer = io.BytesIO()
        binfmt.write_binary_stream(buffer, events)
        return buffer.getvalue()
    if fmt != "csv":
        raise ValueError(f"unknown workload format {fmt!r}")
    return codec.format_events(events).encode("utf-8")


def bytes_to_events(workload: Workload) -> list[Event]:
    """Parse a workload's bytes back into events (raises on malformed)."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="graphtides-fuzz-") as tmp:
        path = Path(tmp) / f"workload{workload.suffix}"
        path.write_bytes(workload.data)
        return codec.parse_stream_file(path)


# ---------------------------------------------------------------------------
# Base workload builders (generator-config mutation targets)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BaseConfig:
    """Generator parameters a config mutator perturbs.

    Every field is part of the candidate's identity: the engine caches
    built base streams keyed on this config, so equal configs always
    produce byte-identical workloads.
    """

    model: str = "uniform"  # "uniform" | "social"
    rounds: int = 120
    bootstrap_vertices: int = 12
    bootstrap_edges: int = 16
    seed: int = 0
    fmt: str = "csv"


_MODELS = ("uniform", "social")
_FORMATS = ("csv", "binary")


def build_base(config: BaseConfig) -> Workload:
    """Generate the base stream for ``config`` and serialize it."""
    if config.model == "social":
        rules = SocialNetworkRules()
    else:
        rules = UniformRules(
            bootstrap_vertices=config.bootstrap_vertices,
            bootstrap_edges=config.bootstrap_edges,
        )
    stream = StreamGenerator(
        rules, rounds=config.rounds, seed=config.seed
    ).generate()
    return Workload(config.fmt, events_to_bytes(list(stream), config.fmt))


def mutate_base_config(config: BaseConfig, rng) -> BaseConfig:
    """Perturb one generator parameter (seeded; identity-preserving)."""
    choice = rng.randrange(5)
    if choice == 0:
        return replace(config, model=_MODELS[rng.randrange(len(_MODELS))])
    if choice == 1:
        return replace(config, rounds=max(10, rng.randrange(20, 400)))
    if choice == 2:
        return replace(
            config,
            bootstrap_vertices=rng.randrange(2, 40),
            bootstrap_edges=rng.randrange(0, 60),
        )
    if choice == 3:
        return replace(config, seed=rng.randrange(1 << 16))
    return replace(config, fmt=_FORMATS[rng.randrange(len(_FORMATS))])
