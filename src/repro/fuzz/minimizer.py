"""ddmin-style workload minimization.

Classic delta debugging (Zeller & Hildebrandt) over a finding's
*atoms*: CSV candidates shrink line-by-line, binary candidates shrink
over fixed-size byte chunks (structure-blind on purpose — the predicate
decides what still reproduces, so even a reduced file that no longer
parses is a valid, smaller reproducer of a parse-stage finding).

The predicate is "re-evaluation yields the same verdict signature"; the
evaluation budget is capped so a pathological candidate cannot stall
the fuzz loop.  Minimization is fully deterministic: no randomness,
atoms are tried in a fixed order.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.fuzz.evaluator import Baseline, EvaluatorConfig, Verdict, evaluate
from repro.fuzz.workload import Workload

__all__ = ["ddmin", "minimize_workload"]

#: Chunk size for binary (structure-blind) atomization.
BINARY_ATOM_BYTES = 16


def ddmin(
    atoms: Sequence,
    test: Callable[[list], bool],
    *,
    max_tests: int = 200,
) -> list:
    """Minimize ``atoms`` to a smaller list still satisfying ``test``.

    ``test`` receives a candidate atom list and returns True when the
    behaviour of interest persists.  The input itself must satisfy
    ``test``.  Stops early when ``max_tests`` candidate evaluations
    have been spent.
    """
    atoms = list(atoms)
    tests_spent = 0
    granularity = 2
    while len(atoms) >= 2:
        chunk = max(1, len(atoms) // granularity)
        reduced = False
        position = 0
        while position < len(atoms):
            complement = atoms[:position] + atoms[position + chunk :]
            if not complement:
                position += chunk
                continue
            if tests_spent >= max_tests:
                return atoms
            tests_spent += 1
            if test(complement):
                atoms = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            position += chunk
        if not reduced:
            if granularity >= len(atoms):
                break
            granularity = min(len(atoms), granularity * 2)
    return atoms


def _atomize(workload: Workload) -> tuple[list[bytes], bytes]:
    """(atoms, joiner) for a workload's bytes."""
    if workload.fmt == "csv":
        return workload.data.split(b"\n"), b"\n"
    data = workload.data
    atoms = [
        data[i : i + BINARY_ATOM_BYTES]
        for i in range(0, len(data), BINARY_ATOM_BYTES)
    ]
    return atoms, b""


def minimize_workload(
    workload: Workload,
    verdict: Verdict,
    config: EvaluatorConfig | None = None,
    baseline: Baseline | None = None,
    *,
    max_tests: int = 200,
) -> Workload:
    """Shrink ``workload`` while its verdict signature reproduces.

    Hang findings re-evaluate with a tightened deadline (each failing
    probe costs a full deadline wait); the returned workload's verdict
    is re-checked by the caller before archiving.
    """
    if config is None:
        config = EvaluatorConfig()
    if verdict.status == "hang" and config.deadline > 3.0:
        import dataclasses

        config = dataclasses.replace(config, deadline=3.0)
    target = verdict.signature
    atoms, joiner = _atomize(workload)

    def test(candidate_atoms: list) -> bool:
        candidate = Workload(workload.fmt, joiner.join(candidate_atoms))
        return evaluate(candidate, config, baseline).signature == target

    reduced = ddmin(atoms, test, max_tests=max_tests)
    return Workload(workload.fmt, joiner.join(reduced))
