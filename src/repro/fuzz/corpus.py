"""The versioned regression corpus: findings on disk, replayable by seed.

Layout (one directory per entry)::

    corpus/
      <class>/                  # found_as: crash | hang | divergence | ...
        <name>/
          workload.csv|.gtb     # the (minimized) reproducer bytes
          meta.json             # schema, seed, verdict, evaluator knobs

``meta.json`` records the verdict the *current* code produces — after a
finding's underlying bug is fixed, the entry stays checked in with its
original class in ``found_as`` and the post-fix verdict (typically
``rejected`` or ``ok``) as the recorded expectation.  ``replay_entry``
re-evaluates the stored bytes under the stored evaluator config and
compares signatures, which is exactly what the CI corpus gate and
``tests/fuzz`` assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.fuzz.evaluator import (
    Baseline,
    EvaluatorConfig,
    Verdict,
    evaluate,
)
from repro.fuzz.workload import Workload

__all__ = [
    "CORPUS_SCHEMA",
    "CorpusEntry",
    "save_entry",
    "load_corpus",
    "load_entry",
    "replay_entry",
]

CORPUS_SCHEMA = 1


@dataclass(frozen=True, slots=True)
class CorpusEntry:
    """One archived finding: reproducer bytes plus recorded expectations."""

    name: str
    path: Path
    workload: Workload
    found_as: str
    seed: int
    verdict_signature: str
    verdict: dict
    evaluator: EvaluatorConfig
    baseline: Baseline
    notes: str = ""


def _workload_filename(workload: Workload) -> str:
    return f"workload{workload.suffix}"


def save_entry(
    root: str | Path,
    name: str,
    workload: Workload,
    verdict: Verdict,
    *,
    found_as: str,
    seed: int,
    evaluator: EvaluatorConfig,
    baseline: Baseline | None = None,
    notes: str = "",
) -> Path:
    """Write one corpus entry directory; returns its path."""
    if baseline is None:
        baseline = Baseline()
    entry_dir = Path(root) / found_as / name
    entry_dir.mkdir(parents=True, exist_ok=True)
    workload.write(entry_dir / _workload_filename(workload))
    meta = {
        "schema": CORPUS_SCHEMA,
        "name": name,
        "found_as": found_as,
        "seed": seed,
        "format": workload.fmt,
        "workload_file": _workload_filename(workload),
        "verdict": verdict.as_dict(),
        "evaluator": evaluator.as_dict(),
        "baseline": {"peak_backlog": baseline.peak_backlog},
        "notes": notes,
    }
    with open(entry_dir / "meta.json", "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return entry_dir


def load_entry(entry_dir: str | Path) -> CorpusEntry:
    """Load one entry directory (raises on schema mismatch)."""
    entry_dir = Path(entry_dir)
    with open(entry_dir / "meta.json", "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    schema = meta.get("schema")
    if schema != CORPUS_SCHEMA:
        raise ValueError(
            f"{entry_dir}: unsupported corpus schema {schema!r} "
            f"(expected {CORPUS_SCHEMA})"
        )
    workload_path = entry_dir / meta["workload_file"]
    workload = Workload(meta["format"], workload_path.read_bytes())
    return CorpusEntry(
        name=meta["name"],
        path=entry_dir,
        workload=workload,
        found_as=meta["found_as"],
        seed=meta["seed"],
        verdict_signature=meta["verdict"]["signature"],
        verdict=meta["verdict"],
        evaluator=EvaluatorConfig.from_dict(meta["evaluator"]),
        baseline=Baseline(
            peak_backlog=meta.get("baseline", {}).get("peak_backlog", 0.0)
        ),
        notes=meta.get("notes", ""),
    )


def load_corpus(root: str | Path) -> list[CorpusEntry]:
    """Load every entry under ``root``, sorted by (class, name)."""
    root = Path(root)
    if not root.is_dir():
        return []
    entries = []
    for meta_path in sorted(root.glob("*/*/meta.json")):
        entries.append(load_entry(meta_path.parent))
    return entries


def replay_entry(entry: CorpusEntry) -> tuple[Verdict, bool]:
    """Re-evaluate an entry under its recorded config.

    Returns ``(verdict, matches)`` where ``matches`` is True when the
    fresh verdict's signature equals the recorded one — the corpus
    gate's pass condition.
    """
    verdict = evaluate(entry.workload, entry.evaluator, entry.baseline)
    return verdict, verdict.signature == entry.verdict_signature
