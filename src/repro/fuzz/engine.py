"""The fuzz loop: seeded candidate generation → evaluate → minimize.

Determinism contract (the acceptance criterion): ``run_fuzz`` with the
same :class:`FuzzConfig` produces the identical finding list — same
signatures, same candidate indices, byte-identical minimized
reproducers — because

* candidate ``i`` draws from ``random.Random(f"{seed}:{i}")`` (string
  seeding is process-stable, unlike ``hash``-based mixing);
* base workloads come from seeded generators and are cached by config;
* the evaluator's chaos sub-seed derives from the candidate's content
  digest, not from time or identity;
* cliff oracles compare simulated-time metrics against a baseline
  calibrated once per run from the unmutated base workload;
* minimization is randomness-free ddmin.

The only wall-clock dependence is the watchdog deadline: a machine too
slow to finish a clean pipeline within ``deadline`` seconds would
misclassify candidates as hangs, so deadlines default generously.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.fuzz.evaluator import (
    Baseline,
    EvaluatorConfig,
    Verdict,
    calibrate,
    evaluate,
)
from repro.fuzz.minimizer import minimize_workload
from repro.fuzz.mutators import BYTE_MUTATORS, EVENT_MUTATORS, apply_byte_mutator
from repro.fuzz.workload import (
    BaseConfig,
    Workload,
    build_base,
    bytes_to_events,
    events_to_bytes,
    mutate_base_config,
)

__all__ = ["FuzzConfig", "Finding", "FuzzReport", "run_fuzz"]


@dataclass(frozen=True, slots=True)
class FuzzConfig:
    """One fuzz run: seed, candidate budget, evaluator knobs."""

    seed: int = 42
    budget: int = 50
    evaluator: EvaluatorConfig = field(default_factory=EvaluatorConfig)
    minimize: bool = True
    minimizer_tests: int = 120
    byte_mutation_probability: float = 0.35
    corpus_dir: str | None = None


@dataclass(frozen=True, slots=True)
class Finding:
    """One deduplicated finding with its minimized reproducer."""

    name: str
    candidate_index: int
    signature: str
    verdict: Verdict
    workload: Workload
    minimized: Workload
    mutators: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class FuzzReport:
    """The outcome of one fuzz run."""

    seed: int
    budget: int
    candidates: int
    findings: tuple[Finding, ...]
    status_counts: dict[str, int]
    baseline: Baseline

    def summary_lines(self) -> list[str]:
        lines = [
            f"fuzz: seed={self.seed} budget={self.budget} "
            f"candidates={self.candidates} findings={len(self.findings)}"
        ]
        for status in sorted(self.status_counts):
            lines.append(f"  {status}: {self.status_counts[status]}")
        for finding in self.findings:
            lines.append(
                f"  [{finding.candidate_index:04d}] {finding.signature} "
                f"({len(finding.workload.data)} -> "
                f"{len(finding.minimized.data)} bytes, "
                f"mutators {','.join(finding.mutators) or '-'})"
            )
        return lines


def _candidate_rng(seed: int, index: int) -> random.Random:
    # String seeding hashes via SHA-512 internally — stable across
    # processes and PYTHONHASHSEED values.
    return random.Random(f"graphtides-fuzz:{seed}:{index}")


def _build_candidate(
    rng: random.Random,
    base_config: BaseConfig,
    base_cache: dict[BaseConfig, Workload],
    byte_mutation_probability: float = 0.35,
) -> tuple[Workload, BaseConfig, tuple[str, ...]]:
    """One candidate: perturbed config, event mutators, byte mutators."""
    config = base_config
    for __ in range(rng.randrange(3)):
        config = mutate_base_config(config, rng)
    base = base_cache.get(config)
    if base is None:
        base = build_base(config)
        base_cache[config] = base
    applied: list[str] = []
    data = base.data
    fmt = base.fmt

    event_names = list(EVENT_MUTATORS)
    count = 1 + rng.randrange(3)
    chosen = [event_names[rng.randrange(len(event_names))] for __ in range(count)]
    try:
        events = bytes_to_events(base)
        for name in chosen:
            events = EVENT_MUTATORS[name](events, rng)
            applied.append(name)
        data = events_to_bytes(events, fmt)
    except Exception:
        # A prior byte-level artefact made the base unparseable (cannot
        # happen for cached clean bases, but stay defensive): fall back
        # to the raw bytes.
        data = base.data
        applied = []

    if rng.random() < byte_mutation_probability:
        byte_names = list(BYTE_MUTATORS)
        name = byte_names[rng.randrange(len(byte_names))]
        data = apply_byte_mutator(data, name, rng)
        applied.append(f"bytes:{name}")
    return Workload(fmt, data), config, tuple(applied)


def run_fuzz(config: FuzzConfig | None = None) -> FuzzReport:
    """Run the seeded fuzz loop and return the (deterministic) report."""
    if config is None:
        config = FuzzConfig()
    root_config = BaseConfig(seed=config.seed % (1 << 16))
    base_cache: dict[BaseConfig, Workload] = {}
    base = build_base(root_config)
    base_cache[root_config] = base
    baseline = calibrate(base, config.evaluator)

    findings: list[Finding] = []
    seen: set[str] = set()
    status_counts: dict[str, int] = {}
    candidates = 0
    for index in range(config.budget):
        rng = _candidate_rng(config.seed, index)
        workload, __, applied = _build_candidate(
            rng,
            root_config,
            base_cache,
            byte_mutation_probability=config.byte_mutation_probability,
        )
        candidates += 1
        verdict = evaluate(workload, config.evaluator, baseline)
        status_counts[verdict.status] = (
            status_counts.get(verdict.status, 0) + 1
        )
        if not verdict.is_finding or verdict.signature in seen:
            continue
        seen.add(verdict.signature)
        minimized = workload
        if config.minimize:
            minimized = minimize_workload(
                workload,
                verdict,
                config.evaluator,
                baseline,
                max_tests=config.minimizer_tests,
            )
        safe_signature = (
            verdict.signature.replace(":", "-").replace("/", "-") or "finding"
        )
        findings.append(
            Finding(
                name=f"{safe_signature}-{index:04d}",
                candidate_index=index,
                signature=verdict.signature,
                verdict=verdict,
                workload=workload,
                minimized=minimized,
                mutators=applied,
            )
        )

    if config.corpus_dir is not None:
        from repro.fuzz.corpus import save_entry

        for finding in findings:
            # Archive with the *minimized* reproducer's own verdict so
            # replaying the entry reproduces exactly what is stored.
            stored = evaluate(
                finding.minimized, config.evaluator, baseline
            )
            save_entry(
                config.corpus_dir,
                finding.name,
                finding.minimized,
                stored,
                found_as=finding.verdict.status,
                seed=config.seed,
                evaluator=config.evaluator,
                baseline=baseline,
                notes=(
                    f"candidate {finding.candidate_index} of budget "
                    f"{config.budget}; mutators: "
                    f"{', '.join(finding.mutators) or 'none'}"
                ),
            )

    return FuzzReport(
        seed=config.seed,
        budget=config.budget,
        candidates=candidates,
        findings=tuple(findings),
        status_counts=status_counts,
        baseline=baseline,
    )
