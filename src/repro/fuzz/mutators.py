"""Seeded mutators over event streams and raw stream bytes.

Two registries, both deterministic functions of their ``rng``:

* :data:`EVENT_MUTATORS` — ``(events, rng) -> events`` transformations
  applied before serialization: degree/shard skew, burst trains,
  marker storms, escape-heavy and oversized payloads, pause bombs,
  adversarial float controls, duplication/reordering.
* :data:`BYTE_MUTATORS` — ``(data, rng) -> data`` transformations
  applied to the serialized file: truncation, bit flips, garbage
  prefixes, splices, non-UTF-8 injection — the binfmt/codec frame-walk
  attack surface.

Mutators never touch module-level randomness; every draw comes from the
caller's seeded ``random.Random``, so a candidate is a pure function of
``(base workload, mutator names, sub-seed)``.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.core.events import (
    EdgeId,
    Event,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
    SpeedEvent,
    marker,
    pause,
    speed,
)

__all__ = [
    "EVENT_MUTATORS",
    "BYTE_MUTATORS",
    "ESCAPE_DICTIONARY",
    "ADVERSARIAL_FLOATS",
    "apply_event_mutators",
    "apply_byte_mutator",
]

#: Escape-heavy strings aimed at the CSV quoting machinery and the
#: CSV↔GTB1 round trip: every separator the format escapes, ambiguous
#: backslash runs, unknown escape sequences, and multi-byte UTF-8.
ESCAPE_DICTIONARY: tuple[str, ...] = (
    ",",
    ",,",
    "\\",
    "\\\\",
    "\\\\\\",
    "\\,",
    "\\n",
    "\n",
    "\r",
    "\r\n",
    "\n\r",
    "a,b\\c\nd\re",
    "trailing\\",
    "\\x41",
    "\\,\\,\\,",
    ",\n,\r,\\",
    "label,with,commas",
    "päyload ü",
    "\x00stray-nul",
    "MARKER,fake,",
    "ADD_VERTEX,9,injected",
)

#: Floats whose ``%g`` rendering loses precision — the historical
#: CSV↔binary divergence — plus denormals, extremes and exact values.
ADVERSARIAL_FLOATS: tuple[float, ...] = (
    1.2345678901234567,
    0.30000000000000004,  # 0.1 + 0.2
    1e-9,
    5e-324,
    1.7976931348623157e308,
    3.141592653589793,
    123456.78901234567,
    2.5,
    1.0,
    0.0625,
)


def _graph_indices(events: list[Event]) -> list[int]:
    return [i for i, e in enumerate(events) if isinstance(e, GraphEvent)]


def _with_entity(event: GraphEvent, entity) -> GraphEvent:
    return GraphEvent(event.event_type, entity, event.payload)


def _with_payload(event: GraphEvent, payload: str) -> GraphEvent:
    return GraphEvent(event.event_type, event.entity, payload)


# ---------------------------------------------------------------------------
# Event-level mutators
# ---------------------------------------------------------------------------


def skew_hub(events: list[Event], rng: random.Random) -> list[Event]:
    """Redirect a large fraction of edge events at one hub vertex.

    Every rewritten edge keys to the same entity, so ``shard_by=hash``
    partitioning collapses onto one shard — the degree-distribution /
    hub-collision cliff.
    """
    indices = _graph_indices(events)
    if not indices:
        return events
    hub = rng.randrange(100)
    fraction = 0.5 + rng.random() * 0.45
    out = list(events)
    for i in indices:
        event = out[i]
        if rng.random() >= fraction:
            continue
        if isinstance(event.entity, EdgeId):
            if event.entity.target != hub:
                out[i] = _with_entity(event, EdgeId(hub, event.entity.target))
        else:
            out[i] = _with_entity(event, hub)
    return out


def burst_train(events: list[Event], rng: random.Random) -> list[Event]:
    """Insert SPEED bursts: short windows of 10-80x arrival rate."""
    out = list(events)
    bursts = 1 + rng.randrange(3)
    for __ in range(bursts):
        if not out:
            break
        factor = 10.0 + rng.random() * 70.0
        start = rng.randrange(len(out))
        width = 1 + rng.randrange(max(1, len(out) // 2))
        end = min(len(out), start + width)
        out.insert(end, speed(1.0))
        out.insert(start, speed(factor))
    return out


def marker_storm(events: list[Event], rng: random.Random) -> list[Event]:
    """Insert many markers (escape-heavy labels) at random positions."""
    out = list(events)
    count = 3 + rng.randrange(12)
    for __ in range(count):
        label = ESCAPE_DICTIONARY[rng.randrange(len(ESCAPE_DICTIONARY))]
        if rng.random() < 0.5:
            label = f"m{rng.randrange(1000)}-{label}"
        out.insert(rng.randrange(len(out) + 1), marker(label))
    return out


def escape_payloads(events: list[Event], rng: random.Random) -> list[Event]:
    """Replace graph payloads with draws from the escape dictionary."""
    out = list(events)
    for i in _graph_indices(out):
        if rng.random() < 0.4:
            text = ESCAPE_DICTIONARY[rng.randrange(len(ESCAPE_DICTIONARY))]
            if rng.random() < 0.3:
                text = text * (1 + rng.randrange(4))
            out[i] = _with_payload(out[i], text)
    return out


def oversize_payloads(events: list[Event], rng: random.Random) -> list[Event]:
    """Blow a few payloads up to multi-KiB strings."""
    out = list(events)
    indices = _graph_indices(out)
    if not indices:
        return out
    for __ in range(1 + rng.randrange(3)):
        i = indices[rng.randrange(len(indices))]
        unit = ESCAPE_DICTIONARY[rng.randrange(len(ESCAPE_DICTIONARY))] or "x"
        size = 1 << (10 + rng.randrange(5))  # 1 KiB .. 16 KiB
        out[i] = _with_payload(out[i], (unit * (size // len(unit) + 1))[:size])
    return out


def pause_bomb(events: list[Event], rng: random.Random) -> list[Event]:
    """Insert a PAUSE far beyond any sane replay deadline."""
    out = list(events)
    seconds = float(60 + rng.randrange(3600))
    out.insert(rng.randrange(len(out) + 1), pause(seconds))
    return out


def float_jitter(events: list[Event], rng: random.Random) -> list[Event]:
    """Insert SPEED/PAUSE controls with precision-hostile floats."""
    out = list(events)
    for __ in range(1 + rng.randrange(4)):
        value = ADVERSARIAL_FLOATS[rng.randrange(len(ADVERSARIAL_FLOATS))]
        position = rng.randrange(len(out) + 1)
        if rng.random() < 0.5:
            out.insert(position, speed(max(value, 1e-9)))
        else:
            out.insert(position, pause(min(abs(value), 1e6)))
    return out


def dup_and_reorder(events: list[Event], rng: random.Random) -> list[Event]:
    """Duplicate, drop and swap windows of the stream."""
    out = list(events)
    for __ in range(1 + rng.randrange(3)):
        if len(out) < 4:
            break
        start = rng.randrange(len(out) - 2)
        width = 1 + rng.randrange(min(16, len(out) - start))
        window = out[start : start + width]
        action = rng.randrange(3)
        if action == 0:  # duplicate
            out[start + width : start + width] = window
        elif action == 1:  # drop
            del out[start : start + width]
        else:  # swap with the neighbouring window
            end = min(len(out), start + 2 * width)
            neighbour = out[start + width : end]
            out[start:end] = neighbour + window
    return out


EVENT_MUTATORS: dict[str, Callable[[list[Event], random.Random], list[Event]]] = {
    "skew_hub": skew_hub,
    "burst_train": burst_train,
    "marker_storm": marker_storm,
    "escape_payloads": escape_payloads,
    "oversize_payloads": oversize_payloads,
    "pause_bomb": pause_bomb,
    "float_jitter": float_jitter,
    "dup_and_reorder": dup_and_reorder,
}


def apply_event_mutators(
    events: list[Event], names: list[str], rng: random.Random
) -> list[Event]:
    """Apply named event mutators in order (unknown names raise)."""
    for name in names:
        events = EVENT_MUTATORS[name](events, rng)
    return events


# ---------------------------------------------------------------------------
# Byte-level mutators
# ---------------------------------------------------------------------------


def truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the file at an arbitrary byte offset (mid-frame, mid-line)."""
    if len(data) < 2:
        return data
    return data[: rng.randrange(1, len(data))]


def bit_flip(data: bytes, rng: random.Random) -> bytes:
    """Flip 1-8 random bits anywhere in the file."""
    if not data:
        return data
    out = bytearray(data)
    for __ in range(1 + rng.randrange(8)):
        position = rng.randrange(len(out))
        out[position] ^= 1 << rng.randrange(8)
    return bytes(out)


def garbage_prefix(data: bytes, rng: random.Random) -> bytes:
    """Prepend random bytes (destroys magic / first-line detection)."""
    length = 1 + rng.randrange(16)
    prefix = bytes(rng.randrange(256) for __ in range(length))
    return prefix + data


def splice(data: bytes, rng: random.Random) -> bytes:
    """Copy one random slice of the file over another position."""
    if len(data) < 8:
        return data
    start = rng.randrange(len(data) - 4)
    width = 1 + rng.randrange(min(64, len(data) - start))
    target = rng.randrange(len(data))
    out = bytearray(data)
    out[target:target] = data[start : start + width]
    return bytes(out)


def non_utf8_inject(data: bytes, rng: random.Random) -> bytes:
    """Overwrite a few bytes with invalid UTF-8 sequences."""
    if not data:
        return data
    out = bytearray(data)
    bad = (b"\xff", b"\xfe\xfd", b"\xc0\x80", b"\xf8\x88")
    for __ in range(1 + rng.randrange(3)):
        chunk = bad[rng.randrange(len(bad))]
        position = rng.randrange(len(out))
        out[position : position + len(chunk)] = chunk
    return bytes(out)


def corrupt_header(data: bytes, rng: random.Random) -> bytes:
    """Scramble bytes in the first 32 — magic, first frame header."""
    if not data:
        return data
    out = bytearray(data)
    limit = min(32, len(out))
    for __ in range(1 + rng.randrange(4)):
        out[rng.randrange(limit)] = rng.randrange(256)
    return bytes(out)


BYTE_MUTATORS: dict[str, Callable[[bytes, random.Random], bytes]] = {
    "truncate": truncate,
    "bit_flip": bit_flip,
    "garbage_prefix": garbage_prefix,
    "splice": splice,
    "non_utf8_inject": non_utf8_inject,
    "corrupt_header": corrupt_header,
}


def apply_byte_mutator(data: bytes, name: str, rng: random.Random) -> bytes:
    """Apply one named byte mutator (unknown names raise)."""
    return BYTE_MUTATORS[name](data, rng)
