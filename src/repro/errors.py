"""Exception hierarchy for the GraphTides reproduction.

All errors raised by this library derive from :class:`GraphTidesError` so
callers can catch framework failures with a single ``except`` clause while
still being able to distinguish the finer-grained categories below.
"""

from __future__ import annotations


class GraphTidesError(Exception):
    """Base class for all errors raised by this library."""


class StreamFormatError(GraphTidesError):
    """A stream file line or event payload violates the stream format.

    Carries the offending line number (1-based) when parsed from a CSV
    file, or the offending byte offset (0-based) when parsed from a
    binary stream or raw byte buffer.
    """

    def __init__(
        self,
        message: str,
        line_number: int | None = None,
        *,
        byte_offset: int | None = None,
    ):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        elif byte_offset is not None:
            message = f"byte offset {byte_offset}: {message}"
        super().__init__(message)
        self.line_number = line_number
        self.byte_offset = byte_offset


class GraphOperationError(GraphTidesError):
    """Base class for graph-operation precondition violations."""


class VertexExistsError(GraphOperationError):
    """Raised when adding a vertex whose identifier is already present."""


class VertexNotFoundError(GraphOperationError):
    """Raised when an operation references a vertex that does not exist."""


class EdgeExistsError(GraphOperationError):
    """Raised when adding an edge that is already present (no multigraphs)."""


class EdgeNotFoundError(GraphOperationError):
    """Raised when an operation references an edge that does not exist."""


class SelfLoopError(GraphOperationError):
    """Raised when adding an edge from a vertex to itself (not modelled)."""


class GeneratorError(GraphTidesError):
    """A user-supplied generator rule misbehaved (bad selection, etc.)."""


class ReplayError(GraphTidesError):
    """The stream replayer could not emit the stream as requested."""


class ConnectorError(GraphTidesError):
    """A platform connector failed to deliver or acknowledge events."""


class TransientTransportError(ConnectorError):
    """A send failed in a way that is worth retrying.

    ``delivered`` is the number of leading batch lines the transport
    *knows* reached the system under test before the failure (a partial
    batch write); ``unacknowledged`` is the number of lines that were
    possibly delivered but never acknowledged (a connection reset after
    the write) — a retrier must resend them, producing at-least-once
    redelivery.
    """

    def __init__(self, message: str, delivered: int = 0, unacknowledged: int = 0):
        super().__init__(message)
        self.delivered = delivered
        self.unacknowledged = unacknowledged


class CircuitOpenError(ConnectorError):
    """Delivery refused because the circuit breaker is open.

    Raised instead of attempting a send when the system under test has
    failed repeatedly; the caller should degrade (checkpoint, resume
    later) rather than block on a dead endpoint.
    """


class DeliveryExhaustedError(ConnectorError):
    """A retrying transport gave up after exhausting its retry budget."""

    def __init__(self, message: str, attempts: int = 0):
        super().__init__(message)
        self.attempts = attempts


class PlatformError(GraphTidesError):
    """A system under test rejected a request or reached an invalid state."""


class EvaluationLevelError(GraphTidesError):
    """An operation requires a higher evaluation level than the platform has.

    Evaluation levels follow the paper's section 4: level 0 treats the system
    under test as a black box, level 1 adds a native metrics interface, and
    level 2 grants full internal access.
    """

    def __init__(self, required: int, actual: int):
        super().__init__(
            f"operation requires evaluation level {required}, "
            f"but the platform only supports level {actual}"
        )
        self.required = required
        self.actual = actual


class MethodologyError(GraphTidesError):
    """An experiment design or statistical analysis request is invalid."""


class AnalysisError(GraphTidesError):
    """A result-log analysis could not be performed on the given data."""


class PerfDbError(GraphTidesError):
    """A perf-database record, snapshot, or comparison request is invalid."""
