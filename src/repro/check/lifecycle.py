"""Resource-lifecycle rules (``RES``/``EXC``/``HOT``) on the CFG engine.

These rules are flow-sensitive: they run the
:mod:`repro.check.dataflow` solver over per-function
:mod:`repro.check.cfg` graphs, tracking which acquired resources are
still *held* at each program point.

* ``RES001`` — a resource acquired without ``with`` (files, sockets,
  mmaps, ``Popen``, explicit ``lock.acquire()``) must reach a release
  (``close``/``wait``/``release``...) on **every** path to the
  function's exit, including the exception edges, unless ownership is
  transferred first.  ``SharedMemory(create=True, ...)`` is tracked as
  two obligations at once: the owner must both ``close`` its mapping
  and ``unlink`` the name, or the segment outlives the process in
  ``/dev/shm``.
* ``RES002`` — a ``Thread``/``Process`` spawned in a function must be
  joined on every path, or transferred out (returned, stored on an
  object, registered for cleanup).
* ``EXC001`` — a broad ``except`` whose body neither re-raises,
  returns, nor calls anything (no release, no logging, no accounting)
  swallows the failure while acquired resources are still held.
* ``HOT001`` — blocking calls (``time.sleep``, unbounded
  ``recv``/``accept``, ``Queue.get``/``put`` or ``join``/``wait``
  without a timeout) inside a function marked ``# hot-path`` or
  reachable from one through the module's call graph.

**Ownership transfer** kills tracking: returning or yielding the
resource, storing it into an attribute, subscript or container, or
passing it as a *call argument* (the callee may adopt or close it — a
deliberate under-approximation that keeps false positives out of the
leak report; method calls *on* the resource, ``f.read()``, do not
transfer).  Guard patterns are understood through branch refinement:
on the ``false`` edge of ``if f:`` / ``if f is not None:`` the
resource is provably absent, so ``finally: if f is not None:
f.close()`` is recognised as a release on every path.

The ``# hot-path`` marker goes on the ``def`` line (or the line
directly above it); hotness propagates to everything the function
calls within its module.  Intentional blocking (the replayer's pacing
sleeps) is suppressed in place with
``# repro-check: disable=HOT001 -- <why>``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.check.cfg import (
    CFG,
    CFGEdge,
    CFGNode,
    _walk_executed,
    build_cfg,
    iter_function_defs,
)
from repro.check.dataflow import Analysis, DataflowResult, solve
from repro.check.framework import CheckedModule, Rule, Violation, dotted_name

__all__ = [
    "ResourceLeakRule",
    "UnjoinedSpawnRule",
    "SwallowedExceptionRule",
    "BlockingHotPathRule",
    "LIFECYCLE_RULES",
    "HOT_PATH_MARKER",
]

#: Comment marking a function as a latency-critical loop for HOT001.
HOT_PATH_MARKER = "# hot-path"

#: Acquiring call (matched on the last dotted component) -> resource
#: kind and the methods that release it.  ``RES001`` facts.
_RESOURCE_ACQUIRERS: dict[str, tuple[str, frozenset[str]]] = {
    "open": ("file", frozenset({"close"})),
    "fdopen": ("file", frozenset({"close"})),
    "makefile": ("file", frozenset({"close", "detach"})),
    "NamedTemporaryFile": ("file", frozenset({"close"})),
    "TemporaryFile": ("file", frozenset({"close"})),
    "socket": ("socket", frozenset({"close", "detach"})),
    "create_connection": ("socket", frozenset({"close", "detach"})),
    "mmap": ("mmap", frozenset({"close"})),
    "Popen": (
        "process",
        frozenset({"wait", "communicate", "terminate", "kill"}),
    ),
}

#: Acquirers whose resource needs EVERY listed release to die (one
#: fact is emitted per release set, so each must be reached on all
#: paths).  A ``SharedMemory`` segment created here (``create=True``)
#: is owned: the owner must drop its mapping with ``close`` AND remove
#: the name with ``unlink`` — missing either leaks a ``/dev/shm``
#: entry.  A plain attachment only maps an existing segment and owes
#: just the ``close``.
_MULTI_RELEASE_ACQUIRERS: dict[
    str, tuple[str, tuple[frozenset[str], ...]]
] = {
    "SharedMemory": (
        "shared_memory",
        (frozenset({"close"}), frozenset({"unlink"})),
    ),
}


def _multi_acquirer_for(
    call: ast.Call,
) -> tuple[str, tuple[frozenset[str], ...]] | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    spec = _MULTI_RELEASE_ACQUIRERS.get(name.rsplit(".", 1)[-1])
    if spec is None:
        return None
    kind, release_sets = spec
    for keyword in call.keywords:
        if keyword.arg == "create":
            value = keyword.value
            if not (
                isinstance(value, ast.Constant) and value.value is False
            ):
                # create=True (or a dynamic value — assume owning).
                return kind, release_sets
            break
    # Attaching to an existing segment: only the mapping is owed.
    return kind, (release_sets[0],)


#: Spawning call -> kind for ``RES002`` facts; released by ``join``.
_SPAWN_CALLS: dict[str, str] = {
    "Thread": "thread",
    "Timer": "thread",
    "Process": "process",
}
_SPAWN_RELEASES = frozenset({"join"})


def _acquirer_for(call: ast.Call) -> tuple[str, frozenset[str]] | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    spec = _RESOURCE_ACQUIRERS.get(last)
    if spec is not None:
        return spec
    if last.endswith("_mmap"):
        # Project idiom: helpers like ``_open_stream_mmap`` hand back a
        # live mmap (or None) the caller must close.
        return _RESOURCE_ACQUIRERS["mmap"]
    return None


def _spawner_for(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    return _SPAWN_CALLS.get(name.rsplit(".", 1)[-1])


@dataclass(frozen=True, slots=True)
class Acquisition:
    """One tracked acquisition site within a function."""

    fact: int
    var: str
    kind: str
    releases: frozenset[str]
    line: int
    column: int
    family: str  # "resource" (RES001) or "spawn" (RES002)


class _NodeEvents:
    """Per-CFG-node gen/kill summary, precomputed once."""

    __slots__ = ("gens", "released", "transferred", "rebound")

    def __init__(self) -> None:
        self.gens: list[int] = []
        self.released: set[tuple[str, str]] = set()  # (var, method)
        self.transferred: set[str] = set()
        self.rebound: set[str] = set()


class _Aliases:
    """Union-find over simple ``a = b`` name copies."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, name: str) -> str:
        parent = self._parent
        while parent.get(name, name) != name:
            name = parent[name]
        return name

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _escaping_names(expr: ast.expr) -> Iterator[str]:
    """Names whose *object* escapes through this value expression.

    ``return handle`` and ``return (a, handle)`` hand the resource to
    the caller; ``return handle.read()`` hands over only the call's
    result, so the resource itself does not escape.
    """
    if isinstance(expr, ast.Name):
        yield expr.id
    elif isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        for element in expr.elts:
            yield from _escaping_names(element)
    elif isinstance(expr, ast.Dict):
        for part in list(expr.keys) + list(expr.values):
            if part is not None:
                yield from _escaping_names(part)
    elif isinstance(expr, ast.Starred):
        yield from _escaping_names(expr.value)
    elif isinstance(expr, ast.IfExp):
        yield from _escaping_names(expr.body)
        yield from _escaping_names(expr.orelse)
    elif isinstance(expr, ast.NamedExpr):
        yield from _escaping_names(expr.value)


def _assign_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return stmt.targets
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        return [stmt.target]
    return []


class _LifecycleAnalysis(Analysis[frozenset[int]]):
    """Forward may-hold analysis: which acquisitions are still live.

    The state is the set of acquisition facts that *may* be held; a
    fact surviving to the exit (or raise-exit) node on some path is a
    leak on that path.  Exception edges carry the kills but not the
    gens of their source statement — a statement that raised never
    completed its acquisition, while a release attempt is credited
    even if it raised (``close`` frees the fd even on error).
    """

    direction = "forward"

    def __init__(self, func_node: ast.AST, cfg: CFG):
        self.cfg = cfg
        self.acquisitions: list[Acquisition] = []
        self.aliases = _Aliases()
        self.events: dict[int, _NodeEvents] = {}
        self._by_var: dict[str, list[Acquisition]] = {}
        self._collect(cfg)

    # -- lattice -----------------------------------------------------------

    def bottom(self) -> frozenset[int]:
        return frozenset()

    def join(self, a: frozenset[int], b: frozenset[int]) -> frozenset[int]:
        return a | b

    # -- event collection --------------------------------------------------

    def _canon(self, name: str) -> str:
        return self.aliases.find(name)

    def _collect(self, cfg: CFG) -> None:
        # Alias pass first so acquisition vars canonicalise stably.
        for node in cfg.nodes:
            stmt = node.stmt
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Name
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.aliases.union(target.id, stmt.value.id)
        for node in cfg.nodes:
            if node.stmt is None or node.kind in ("handler",):
                continue
            events = self._events_for(node)
            if events is not None:
                self.events[node.index] = events

    def _events_for(self, node: CFGNode) -> _NodeEvents | None:
        stmt = node.stmt
        events = _NodeEvents()
        walk_root: ast.AST = stmt
        if node.kind == "test":
            walk_root = (
                stmt.test
                if isinstance(stmt, (ast.If, ast.While))
                else stmt.iter if isinstance(stmt, (ast.For, ast.AsyncFor))
                else stmt
            )
        if node.kind == "try":
            return None  # body statements have their own nodes
        if node.kind == "with":
            assert isinstance(stmt, (ast.With, ast.AsyncWith))
            for item in stmt.items:
                # ``with f:`` / ``with closing(f):`` manage the release.
                if isinstance(item.context_expr, ast.Name):
                    events.transferred.add(self._canon(item.context_expr.id))
                self._scan_expr(item.context_expr, events)
                for name in self._target_names(item.optional_vars):
                    events.rebound.add(self._canon(name))
            return events

        # Rebinds / stores / returns at statement level.
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and node.kind == "test":
            for name in self._target_names(stmt.target):
                events.rebound.add(self._canon(name))
            self._scan_expr(stmt.iter, events)
            return events
        if node.kind == "test":
            self._scan_expr(walk_root, events)
            return events

        for target in _assign_targets(stmt):
            for name in self._target_names(target):
                events.rebound.add(self._canon(name))
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                value = getattr(stmt, "value", None)
                if value is not None:
                    for used in _escaping_names(value):
                        events.transferred.add(self._canon(used))
        if isinstance(stmt, (ast.Return, ast.Delete)):
            value_nodes = (
                [stmt.value] if isinstance(stmt, ast.Return) else stmt.targets
            )
            for value in value_nodes:
                if value is not None:
                    for used in _escaping_names(value):
                        events.transferred.add(self._canon(used))

        self._scan_stmt(stmt, events)

        # Acquisitions: simple-name binding of an acquiring call, or an
        # explicit ``<target>.acquire()`` lock statement.
        self._scan_acquisitions(stmt, events, node)
        return events

    @staticmethod
    def _target_names(target: ast.expr | None) -> Iterator[str]:
        if target is None:
            return
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                yield sub.id

    @staticmethod
    def _names_in(expr: ast.AST) -> Iterator[str]:
        for sub in _walk_executed(expr):
            if isinstance(sub, ast.Name):
                yield sub.id

    def _scan_stmt(self, stmt: ast.stmt, events: _NodeEvents) -> None:
        for sub in _walk_executed(stmt):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value:
                for used in _escaping_names(sub.value):
                    events.transferred.add(self._canon(used))
            if isinstance(sub, ast.Call):
                self._scan_call(sub, events)

    def _scan_expr(self, expr: ast.AST, events: _NodeEvents) -> None:
        for sub in _walk_executed(expr):
            if isinstance(sub, ast.Call):
                self._scan_call(sub, events)

    def _scan_call(self, call: ast.Call, events: _NodeEvents) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value)
            if receiver is not None:
                var = (
                    self._canon(receiver) if "." not in receiver else receiver
                )
                events.released.add((var, func.attr))
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for used in self._names_in(arg):
                events.transferred.add(self._canon(used))

    def _scan_acquisitions(
        self, stmt: ast.stmt, events: _NodeEvents, node: CFGNode
    ) -> None:
        value = getattr(stmt, "value", None)
        if (
            isinstance(stmt, (ast.Assign, ast.AnnAssign))
            and isinstance(value, ast.Call)
        ):
            targets = _assign_targets(stmt)
            if len(targets) == 1 and isinstance(targets[0], ast.Name):
                var = self._canon(targets[0].id)
                multi = _multi_acquirer_for(value)
                if multi is not None:
                    kind, release_sets = multi
                    for releases in release_sets:
                        self._add_fact(
                            events, node, var, kind, releases, "resource", value
                        )
                    return
                spec = _acquirer_for(value)
                if spec is not None:
                    kind, releases = spec
                    self._add_fact(
                        events, node, var, kind, releases, "resource", value
                    )
                    return
                spawn_kind = _spawner_for(value)
                if spawn_kind is not None:
                    self._add_fact(
                        events,
                        node,
                        var,
                        spawn_kind,
                        _SPAWN_RELEASES,
                        "spawn",
                        value,
                    )
                    return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "acquire"
            ):
                receiver = dotted_name(call.func.value)
                if receiver is not None:
                    var = (
                        self._canon(receiver)
                        if "." not in receiver
                        else receiver
                    )
                    self._add_fact(
                        events,
                        node,
                        var,
                        "lock",
                        frozenset({"release"}),
                        "resource",
                        call,
                    )

    def _add_fact(
        self,
        events: _NodeEvents,
        node: CFGNode,
        var: str,
        kind: str,
        releases: frozenset[str],
        family: str,
        site: ast.AST,
    ) -> None:
        fact = Acquisition(
            fact=len(self.acquisitions),
            var=var,
            kind=kind,
            releases=releases,
            line=getattr(site, "lineno", node.line),
            column=getattr(site, "col_offset", 0),
            family=family,
        )
        self.acquisitions.append(fact)
        self._by_var.setdefault(var, []).append(fact)
        events.gens.append(fact.fact)

    # -- transfer ----------------------------------------------------------

    def _apply_kills(
        self, events: _NodeEvents, state: frozenset[int]
    ) -> frozenset[int]:
        if not state:
            return state
        dead = set()
        for fact_id in state:
            fact = self.acquisitions[fact_id]
            if fact.var in events.rebound or fact.var in events.transferred:
                dead.add(fact_id)
                continue
            for var, method in events.released:
                if var == fact.var and method in fact.releases:
                    dead.add(fact_id)
                    break
        return state - dead if dead else state

    def transfer(
        self, node: CFGNode, state: frozenset[int]
    ) -> frozenset[int]:
        events = self.events.get(node.index)
        if events is None:
            return state
        state = self._apply_kills(events, state)
        if events.gens:
            state = state | frozenset(events.gens)
        return state

    def flow(
        self,
        cfg: CFG,
        edge: CFGEdge,
        node: CFGNode,
        state: frozenset[int],
    ) -> frozenset[int]:
        events = self.events.get(node.index)
        if events is not None:
            state = self._apply_kills(events, state)
            if edge.kind == "exception":
                # If ``t.start()`` itself raised, no thread was launched
                # — there is nothing to join on this path.
                started = {
                    var for var, method in events.released if method == "start"
                }
                if started and state:
                    state = frozenset(
                        fact_id
                        for fact_id in state
                        if not (
                            self.acquisitions[fact_id].family == "spawn"
                            and self.acquisitions[fact_id].var in started
                        )
                    )
            else:
                if events.gens:
                    state = state | frozenset(events.gens)
        if edge.kind in ("true", "false"):
            state = self._refine_branch(node, edge.kind, state)
        return state

    def _refine_branch(
        self, node: CFGNode, branch: str, state: frozenset[int]
    ) -> frozenset[int]:
        """On the branch edge where a tested name is provably None/falsy,
        its facts cannot be held."""
        stmt = node.stmt
        test = (
            stmt.test if isinstance(stmt, (ast.If, ast.While)) else None
        )
        if test is None or not state:
            return state
        var, none_branch = self._none_branch(test)
        if var is None or branch != none_branch:
            return state
        canon = self._canon(var)
        return frozenset(
            fact_id
            for fact_id in state
            if self.acquisitions[fact_id].var != canon
        )

    @staticmethod
    def _none_branch(test: ast.expr) -> tuple[str | None, str]:
        """``(tested_var, branch_on_which_it_is_None)`` or ``(None, "")``."""
        if isinstance(test, ast.Name):
            return test.id, "false"
        if (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
        ):
            return test.operand.id, "true"
        if (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and len(test.ops) == 1
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            if isinstance(test.ops[0], ast.Is):
                return test.left.id, "true"
            if isinstance(test.ops[0], ast.IsNot):
                return test.left.id, "false"
        return None, ""


@dataclass(slots=True)
class _FunctionFacts:
    """Solved lifecycle analysis of one function."""

    qualname: str
    node: ast.AST
    cfg: CFG
    analysis: _LifecycleAnalysis
    result: DataflowResult[frozenset[int]]

    def leaks(self) -> Iterator[tuple[Acquisition, str]]:
        """``(acquisition, path_kind)`` for facts that survive to an
        exit; ``path_kind`` is ``"exception"`` when the leak happens
        only when an exception escapes, else ``"return"``."""
        at_exit = self.result[self.cfg.exit]
        at_raise = self.result[self.cfg.raise_exit]
        for fact_id in sorted(at_exit | at_raise):
            kind = "return" if fact_id in at_exit else "exception"
            yield self.analysis.acquisitions[fact_id], kind


def _module_facts(module: CheckedModule) -> list[_FunctionFacts]:
    """Build-and-solve once per module; shared by the RES/EXC rules."""
    cached = getattr(module, "_lifecycle_facts", None)
    if cached is not None:
        return cached
    facts: list[_FunctionFacts] = []
    for qualname, func, __ in iter_function_defs(module.tree):
        cfg = build_cfg(func, qualname)
        analysis = _LifecycleAnalysis(func, cfg)
        if not analysis.acquisitions:
            continue
        facts.append(
            _FunctionFacts(qualname, func, cfg, analysis, solve(cfg, analysis))
        )
    module._lifecycle_facts = facts  # type: ignore[attr-defined]
    return facts


class ResourceLeakRule(Rule):
    """``RES001``: every acquisition must reach a release on all paths."""

    rule_id = "RES001"
    title = "resources acquired without 'with' must be released on all paths"
    severity = "error"

    family = "resource"

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        for facts in _module_facts(module):
            for acq, path_kind in facts.leaks():
                if acq.family != self.family:
                    continue
                yield Violation(
                    rule_id=self.rule_id,
                    message=self._message(facts, acq, path_kind),
                    path=str(module.path),
                    line=acq.line,
                    column=acq.column,
                    severity=self.severity,
                )

    @staticmethod
    def _message(facts: _FunctionFacts, acq: Acquisition, path: str) -> str:
        where = (
            "when an exception escapes"
            if path == "exception"
            else "on a return path"
        )
        releases = "/".join(sorted(acq.releases))
        return (
            f"{acq.kind} '{acq.var}' acquired in '{facts.qualname}' may "
            f"leak {where}: no {releases} on every path; use 'with', add "
            "a try/finally release, or transfer ownership "
            "(return/store/pass it on)"
        )


class UnjoinedSpawnRule(ResourceLeakRule):
    """``RES002``: spawned threads/processes need a dominating join."""

    rule_id = "RES002"
    title = "spawned threads/processes must be joined or handed off"
    severity = "error"

    family = "spawn"

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        yield from super().check_module(module)
        # ``Thread(...).start()`` never bound to a name can never be
        # joined; flag it directly.
        for sub in ast.walk(module.tree):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "start"
                and isinstance(sub.func.value, ast.Call)
                and _spawner_for(sub.func.value) is not None
            ):
                yield self.violation(
                    module,
                    sub,
                    "thread/process is started without being bound to a "
                    "name, so it can never be joined; keep a reference "
                    "and join it (or hand it to an owner with a stop path)",
                )

    @staticmethod
    def _message(facts: _FunctionFacts, acq: Acquisition, path: str) -> str:
        where = (
            "when an exception escapes"
            if path == "exception"
            else "on a return path"
        )
        return (
            f"{acq.kind} '{acq.var}' spawned in '{facts.qualname}' is not "
            f"joined {where}: join it, return/store it for its owner to "
            "join, or register a cleanup"
        )


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in types:
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None
        )
        if name in ("Exception", "BaseException"):
            return True
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """No re-raise, no return, no call: the failure vanishes silently."""
    for stmt in handler.body:
        for sub in _walk_executed(stmt):
            if isinstance(sub, (ast.Raise, ast.Return, ast.Call)):
                return False
    return True


class SwallowedExceptionRule(Rule):
    """``EXC001``: broad silent ``except`` while resources are held."""

    rule_id = "EXC001"
    title = "broad except must not silently swallow with resources held"
    severity = "warning"

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        for facts in _module_facts(module):
            for sub in ast.walk(facts.node):
                if not isinstance(sub, ast.ExceptHandler):
                    continue
                if not _is_broad_handler(sub) or not _swallows(sub):
                    continue
                state = facts.result.at(sub)
                if not state:
                    continue
                held = sorted(
                    {
                        facts.analysis.acquisitions[fact_id].var
                        for fact_id in state
                    }
                )
                yield self.violation(
                    module,
                    sub,
                    f"except block in '{facts.qualname}' swallows the "
                    f"exception while {', '.join(repr(v) for v in held)} "
                    "is still held; release/account for the failure, "
                    "narrow the exception type, or re-raise",
                )


# -- HOT001 ------------------------------------------------------------------

#: ``.get``/``.put`` receivers that look like queues (never dicts).
_QUEUEISH = ("queue", "_q")

_SOCKET_BLOCKING_METHODS = frozenset({"accept", "recv", "recv_into", "recvfrom"})


def _has_timeout(call: ast.Call) -> bool:
    if any(kw.arg == "timeout" for kw in call.keywords):
        return True
    return False


def _queueish(receiver: str | None) -> bool:
    if receiver is None:
        return False
    lowered = receiver.lower()
    last = lowered.rsplit(".", 1)[-1]
    return any(part in lowered for part in _QUEUEISH) or last == "q"


def _blocking_reason(call: ast.Call, bound_imports: dict[str, str]) -> str | None:
    """Why this call can block unboundedly, or ``None``."""
    name = dotted_name(call.func)
    if name is not None:
        last = name.rsplit(".", 1)[-1]
        if name == "time.sleep" or (
            last == "sleep" and bound_imports.get("sleep") == "time.sleep"
        ):
            return "time.sleep() stalls the loop"
        if name == "input":
            return "input() blocks on the terminal"
        if name == "select.select" and len(call.args) == 3:
            return "select.select() without a timeout blocks indefinitely"
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    receiver = dotted_name(func.value)
    if method in _SOCKET_BLOCKING_METHODS:
        return (
            f"socket .{method}() can block indefinitely; set a timeout "
            "and poll a stop flag"
        )
    if method in ("get", "put") and _queueish(receiver):
        if _has_timeout(call):
            return None
        if method == "get" and call.args:
            first = call.args[0]
            if isinstance(first, ast.Constant) and first.value is False:
                return None  # Queue.get(False) is non-blocking
            if len(call.args) >= 2:
                return None  # Queue.get(block, timeout)
        return f"queue .{method}() without a timeout blocks indefinitely"
    if method in ("join", "wait") and not call.args and not _has_timeout(call):
        return f".{method}() without a timeout blocks indefinitely"
    return None


class BlockingHotPathRule(Rule):
    """``HOT001``: no unbounded blocking calls on the hot path."""

    rule_id = "HOT001"
    title = "no blocking calls in '# hot-path' functions or their callees"
    severity = "warning"

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        functions = list(iter_function_defs(module.tree))
        by_name: dict[str, list[tuple[str, ast.AST, str | None]]] = {}
        for record in functions:
            by_name.setdefault(record[1].name, []).append(record)

        hot: dict[str, str] = {}  # qualname -> root qualname
        worklist: list[tuple[str, ast.AST, str]] = []
        for qualname, func, __ in functions:
            if self._is_annotated(module, func):
                hot[qualname] = qualname
                worklist.append((qualname, func, qualname))
        while worklist:
            qualname, func, root = worklist.pop()
            for callee_q, callee_f in self._callees(func, by_name):
                if callee_q not in hot:
                    hot[callee_q] = root
                    worklist.append((callee_q, callee_f, root))

        if not hot:
            return
        from repro.check.framework import from_imports

        bound = from_imports(module.tree)
        for qualname, func, __ in functions:
            root = hot.get(qualname)
            if root is None:
                continue
            for call in self._own_calls(func):
                reason = _blocking_reason(call, bound)
                if reason is None:
                    continue
                via = "" if root == qualname else f" (hot via '{root}')"
                yield self.violation(
                    module,
                    call,
                    f"blocking call on hot path '{qualname}'{via}: "
                    f"{reason}; bound it with a timeout or justify with "
                    "'# repro-check: disable=HOT001 -- <why>'",
                )

    @staticmethod
    def _is_annotated(module: CheckedModule, func: ast.AST) -> bool:
        line = getattr(func, "lineno", 0)
        return HOT_PATH_MARKER in module.line_text(line) or (
            HOT_PATH_MARKER in module.line_text(line - 1)
        )

    @staticmethod
    def _own_calls(func: ast.AST) -> Iterator[ast.Call]:
        """Calls in the function's own body, not in nested defs."""
        for stmt in func.body:  # type: ignore[attr-defined]
            for sub in _walk_executed(stmt):
                if isinstance(sub, ast.Call):
                    yield sub

    def _callees(
        self,
        func: ast.AST,
        by_name: dict[str, list[tuple[str, ast.AST, str | None]]],
    ) -> Iterator[tuple[str, ast.AST]]:
        for call in self._own_calls(func):
            target = call.func
            name: str | None = None
            if isinstance(target, ast.Name):
                name = target.id
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            ):
                name = target.attr
            if name is None:
                continue
            for qualname, callee, __ in by_name.get(name, ()):
                yield qualname, callee


LIFECYCLE_RULES: tuple[type[Rule], ...] = (
    ResourceLeakRule,
    UnjoinedSpawnRule,
    SwallowedExceptionRule,
    BlockingHotPathRule,
)
