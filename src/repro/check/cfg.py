"""Per-function control-flow graphs for the ``repro check`` dataflow rules.

:func:`build_cfg` lowers one ``ast`` function body into a
:class:`CFG`: one node per simple statement or compound-statement
header, plus synthetic ``entry`` / ``exit`` / ``raise-exit`` nodes.
Edges model

* sequential flow (``next``) and branch outcomes (``true`` / ``false``
  out of ``if`` / ``while`` / ``for`` headers, so analyses can refine
  state per branch);
* loop back-edges (``back``) and ``break`` / ``continue`` jumps;
* early ``return`` (routed to the exit node *through* every enclosing
  ``finally`` body);
* exception flow (``exception``): every statement that may raise gets
  an edge to the innermost ``except`` dispatch, or through the
  enclosing ``finally`` chain to the synthetic ``raise-exit`` node
  that represents an exception escaping the function.

``try``/``except``/``finally`` is modelled with a per-``try`` dispatch
node (fanning out to the handlers, and onward when no catch-all
handler exists) and a single shared ``finally`` subgraph whose exit
connects to every continuation that actually entered it (normal
fall-through, the loop being broken, the function exit, the outer
exception target).  Sharing the ``finally`` body merges exit kinds —
a sound over-approximation: the graph may contain a few paths the
program cannot take, never fewer.

The lowering is deliberately syntactic: no name resolution, no
interprocedural edges.  :mod:`repro.check.dataflow` runs lattice
analyses over these graphs; :mod:`repro.check.lifecycle` builds the
RES/EXC/HOT rule pack on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = [
    "CFG",
    "CFGEdge",
    "CFGNode",
    "build_cfg",
    "iter_function_defs",
    "may_raise",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

_TRY_TYPES: tuple[type, ...] = (ast.Try,) + (
    (ast.TryStar,) if hasattr(ast, "TryStar") else ()
)


@dataclass(frozen=True, slots=True)
class CFGEdge:
    """A directed edge; ``kind`` says why control flows along it."""

    src: int
    dst: int
    kind: str = "next"


class CFGNode:
    """One CFG node: a statement (or header), or a synthetic marker.

    ``stmt`` is the originating AST node (``None`` for the synthetic
    entry/exit nodes); ``kind`` distinguishes statement nodes
    (``stmt``), branch headers (``test``), ``with`` headers, exception
    dispatch (``except-dispatch``), handler entries (``handler``),
    ``finally`` entries and the three synthetic boundary nodes.
    """

    __slots__ = ("index", "stmt", "kind", "line")

    def __init__(self, index: int, stmt: ast.AST | None, kind: str):
        self.index = index
        self.stmt = stmt
        self.kind = kind
        self.line = getattr(stmt, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        what = type(self.stmt).__name__ if self.stmt is not None else "-"
        return f"<CFGNode {self.index} {self.kind} {what} line={self.line}>"


@dataclass
class CFG:
    """A per-function control-flow graph.

    ``exit`` is reached by falling off the end of the body or by
    ``return``; ``raise_exit`` by an exception escaping the function.
    ``node_of`` maps AST statement/handler identity to its node index
    so rules can look up dataflow states at syntax they walked
    themselves.
    """

    name: str
    func: ast.AST | None
    nodes: list[CFGNode] = field(default_factory=list)
    edges: list[CFGEdge] = field(default_factory=list)
    entry: int = 0
    exit: int = 1
    raise_exit: int = 2
    node_of: dict[int, int] = field(default_factory=dict)

    def successors(self, index: int) -> list[CFGEdge]:
        return self._succ[index]

    def predecessors(self, index: int) -> list[CFGEdge]:
        return self._pred[index]

    def finalize(self) -> "CFG":
        """Deduplicate edges and build adjacency; called by the builder."""
        unique = list(dict.fromkeys(self.edges))
        self.edges = unique
        self._succ: list[list[CFGEdge]] = [[] for _ in self.nodes]
        self._pred: list[list[CFGEdge]] = [[] for _ in self.nodes]
        for edge in unique:
            self._succ[edge.src].append(edge)
            self._pred[edge.dst].append(edge)
        return self

    def node_for(self, node: ast.AST) -> CFGNode | None:
        index = self.node_of.get(id(node))
        return self.nodes[index] if index is not None else None


def may_raise(node: ast.AST) -> bool:
    """May evaluating this statement/expression raise an exception?

    Syntactic approximation: calls, ``await``, ``raise`` and ``assert``
    may raise; pure data movement may not.  Lambda bodies do not
    execute at the statement, so they are skipped; comprehension bodies
    do execute and are walked.
    """
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # A ``def`` statement runs its decorators and default values,
        # not its body.  Applying any decorator is a call.
        if node.decorator_list:
            return True
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        return any(may_raise(default) for default in defaults)
    for sub in _walk_executed(node):
        if isinstance(sub, (ast.Call, ast.Await, ast.Raise, ast.Assert)):
            return True
    return False


def _walk_executed(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into deferred bodies."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            stack.append(child)


def iter_function_defs(
    tree: ast.AST,
) -> Iterator[tuple[str, FunctionNode, str | None]]:
    """Yield ``(qualname, def_node, enclosing_class_or_None)`` for every
    function in ``tree``, including methods and nested functions."""

    def visit(
        node: ast.AST, prefix: str, class_name: str | None
    ) -> Iterator[tuple[str, FunctionNode, str | None]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                yield qualname, child, class_name
                yield from visit(child, f"{qualname}.", class_name)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.", child.name)
            else:
                yield from visit(child, prefix, class_name)

    yield from visit(tree, "", None)


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------

#: Predecessor hand-off during construction: (node index, edge kind).
_Preds = list[tuple[int, str]]


class _FinallyFrame:
    """One ``finally`` body shared by all the ways control enters it."""

    __slots__ = ("entry", "continuations")

    def __init__(self, entry: int):
        self.entry = entry
        # Where control goes after the finally body: node indices, or
        # mutable collector lists (a loop's pending break edges).
        self.continuations: list[tuple[object, str]] = []

    def add_continuation(self, target: object, kind: str) -> None:
        if (target, kind) not in self.continuations:
            self.continuations.append((target, kind))


class _LoopFrame:
    __slots__ = ("head", "break_preds", "finally_depth")

    def __init__(self, head: int, finally_depth: int):
        self.head = head
        self.break_preds: _Preds = []
        self.finally_depth = finally_depth


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch every exception a statement can raise?"""
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [_last_name(element) for element in handler.type.elts]
    else:
        names = [_last_name(handler.type)]
    return any(name in ("Exception", "BaseException") for name in names)


def _last_name(node: ast.expr) -> str | None:
    """``Exception`` for both ``Exception`` and ``mod.Exception``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _Builder:
    def __init__(self, func: FunctionNode | ast.Module, name: str):
        self.cfg = CFG(name=name, func=func)
        self._new(None, "entry")
        self._new(None, "exit")
        self._new(None, "raise-exit")
        # Innermost-last frames exceptions unwind through: ``("dispatch",
        # node)`` for a try with handlers, ``("finally", frame)`` for a
        # finalbody.
        self._exc_stack: list[tuple[str, object]] = []
        self._loops: list[_LoopFrame] = []
        self._finally_frames: list[_FinallyFrame] = []

    # -- low-level graph assembly -----------------------------------------

    def _new(self, stmt: ast.AST | None, kind: str) -> int:
        index = len(self.cfg.nodes)
        self.cfg.nodes.append(CFGNode(index, stmt, kind))
        if stmt is not None and id(stmt) not in self.cfg.node_of:
            self.cfg.node_of[id(stmt)] = index
        return index

    def _edge(self, src: int, dst: int, kind: str) -> None:
        self.cfg.edges.append(CFGEdge(src, dst, kind))

    def _connect(self, preds: _Preds, dst: int) -> None:
        for src, kind in preds:
            self._edge(src, dst, kind)

    # -- exception routing -------------------------------------------------

    def _resolve_exc(self, depth: int) -> int:
        """Where an exception at unwind depth ``depth`` lands.

        Walking outward: the first ``except`` dispatch wins; a
        ``finally`` on the way is entered, with its continuation
        registered as the resolution of the rest of the stack.
        """
        while depth >= 0:
            tag, obj = self._exc_stack[depth]
            if tag == "dispatch":
                return obj  # type: ignore[return-value]
            frame: _FinallyFrame = obj  # type: ignore[assignment]
            below = self._resolve_exc(depth - 1)
            frame.add_continuation(below, "exception")
            return frame.entry
        return self.cfg.raise_exit

    def _raise_edge(self, src: int) -> None:
        self._edge(src, self._resolve_exc(len(self._exc_stack) - 1), "exception")

    # -- jump routing (return / break / continue) --------------------------

    def _crossed_finallys(self, outer_depth: int) -> list[_FinallyFrame]:
        """Finally frames between here and a jump target that sits at
        ``outer_depth`` frames from the bottom, innermost first."""
        return list(reversed(self._finally_frames[outer_depth:]))

    def _jump(
        self, src: int, target: object, kind: str, outer_depth: int = 0
    ) -> None:
        """Route a jump through the finallys it crosses to ``target``
        (a node index, or a pending-preds collector list)."""
        frames = self._crossed_finallys(outer_depth)
        if not frames:
            if isinstance(target, list):
                target.append((src, kind))
            else:
                self._edge(src, target, kind)
            return
        self._edge(src, frames[0].entry, kind)
        for inner, outer in zip(frames, frames[1:]):
            inner.add_continuation(outer.entry, kind)
        frames[-1].add_continuation(target, kind)

    # -- statement lowering ------------------------------------------------

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        preds = self._stmts(body, [(self.cfg.entry, "next")])
        self._connect(preds, self.cfg.exit)
        return self.cfg.finalize()

    def _stmts(self, body: Sequence[ast.stmt], preds: _Preds) -> _Preds:
        for stmt in body:
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: _Preds) -> _Preds:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, preds)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, preds)
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, preds)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, preds)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, preds)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, preds)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds)
        return self._simple(stmt, preds)

    def _simple(self, stmt: ast.stmt, preds: _Preds) -> _Preds:
        node = self._new(stmt, "stmt")
        self._connect(preds, node)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            # A nested def/class is one binding statement; its body is a
            # separate CFG and its decorators rarely raise.
            return [(node, "next")]
        if may_raise(stmt):
            self._raise_edge(node)
        return [(node, "next")]

    def _if(self, stmt: ast.If, preds: _Preds) -> _Preds:
        node = self._new(stmt, "test")
        self._connect(preds, node)
        if may_raise(stmt.test):
            self._raise_edge(node)
        out = self._stmts(stmt.body, [(node, "true")])
        if stmt.orelse:
            out += self._stmts(stmt.orelse, [(node, "false")])
        else:
            out.append((node, "false"))
        return out

    @staticmethod
    def _constant_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value) is True

    def _while(self, stmt: ast.While, preds: _Preds) -> _Preds:
        head = self._new(stmt, "test")
        self._connect(preds, head)
        if may_raise(stmt.test):
            self._raise_edge(head)
        frame = _LoopFrame(head, len(self._finally_frames))
        self._loops.append(frame)
        body_end = self._stmts(stmt.body, [(head, "true")])
        self._loops.pop()
        for src, __ in body_end:
            self._edge(src, head, "back")
        out: _Preds = list(frame.break_preds)
        if not self._constant_true(stmt.test):
            exit_preds: _Preds = [(head, "false")]
            if stmt.orelse:
                exit_preds = self._stmts(stmt.orelse, exit_preds)
            out += exit_preds
        return out

    def _for(self, stmt: ast.For | ast.AsyncFor, preds: _Preds) -> _Preds:
        head = self._new(stmt, "test")
        self._connect(preds, head)
        if may_raise(stmt.iter):
            self._raise_edge(head)
        frame = _LoopFrame(head, len(self._finally_frames))
        self._loops.append(frame)
        body_end = self._stmts(stmt.body, [(head, "true")])
        self._loops.pop()
        for src, __ in body_end:
            self._edge(src, head, "back")
        exit_preds: _Preds = [(head, "false")]
        if stmt.orelse:
            exit_preds = self._stmts(stmt.orelse, exit_preds)
        return list(frame.break_preds) + exit_preds

    def _with(self, stmt: ast.With | ast.AsyncWith, preds: _Preds) -> _Preds:
        node = self._new(stmt, "with")
        self._connect(preds, node)
        if any(may_raise(item.context_expr) for item in stmt.items):
            self._raise_edge(node)
        return self._stmts(stmt.body, [(node, "next")])

    def _return(self, stmt: ast.Return, preds: _Preds) -> _Preds:
        node = self._new(stmt, "stmt")
        self._connect(preds, node)
        if stmt.value is not None and may_raise(stmt.value):
            self._raise_edge(node)
        self._jump(node, self.cfg.exit, "return")
        return []

    def _raise(self, stmt: ast.Raise, preds: _Preds) -> _Preds:
        node = self._new(stmt, "stmt")
        self._connect(preds, node)
        self._raise_edge(node)
        return []

    def _break(self, stmt: ast.Break, preds: _Preds) -> _Preds:
        node = self._new(stmt, "stmt")
        self._connect(preds, node)
        if self._loops:
            frame = self._loops[-1]
            self._jump(node, frame.break_preds, "break", frame.finally_depth)
        return []

    def _continue(self, stmt: ast.Continue, preds: _Preds) -> _Preds:
        node = self._new(stmt, "stmt")
        self._connect(preds, node)
        if self._loops:
            frame = self._loops[-1]
            self._jump(node, frame.head, "continue", frame.finally_depth)
        return []

    def _match(self, stmt: ast.Match, preds: _Preds) -> _Preds:
        node = self._new(stmt, "test")
        self._connect(preds, node)
        if may_raise(stmt.subject):
            self._raise_edge(node)
        out: _Preds = []
        wildcard = False
        for case in stmt.cases:
            out += self._stmts(case.body, [(node, "true")])
            if (
                isinstance(case.pattern, ast.MatchAs)
                and case.pattern.pattern is None
                and case.guard is None
            ):
                wildcard = True
        if not wildcard:
            out.append((node, "false"))
        return out

    def _try(self, stmt: ast.Try, preds: _Preds) -> _Preds:
        marker = self._new(stmt, "try")
        self._connect(preds, marker)

        fin: _FinallyFrame | None = None
        if stmt.finalbody:
            fin_entry = self._new(stmt.finalbody[0], "finally")
            fin = _FinallyFrame(fin_entry)
            self._exc_stack.append(("finally", fin))
            self._finally_frames.append(fin)

        dispatch: int | None = None
        if stmt.handlers:
            dispatch = self._new(stmt, "except-dispatch")
            self._exc_stack.append(("dispatch", dispatch))

        body_preds = self._stmts(stmt.body, [(marker, "next")])

        if dispatch is not None:
            self._exc_stack.pop()

        # ``else`` runs after a non-raising body; its own exceptions are
        # *not* caught by this try's handlers (dispatch already popped).
        if stmt.orelse:
            body_preds = self._stmts(stmt.orelse, body_preds)

        handler_preds: _Preds = []
        if dispatch is not None:
            for handler in stmt.handlers:
                h_node = self._new(handler, "handler")
                self._edge(dispatch, h_node, "exception")
                handler_preds += self._stmts(handler.body, [(h_node, "next")])
            if not any(_is_catch_all(handler) for handler in stmt.handlers):
                # No catch-all: the exception may continue outward.
                self._edge(
                    dispatch,
                    self._resolve_exc(len(self._exc_stack) - 1),
                    "exception",
                )

        normal_preds = body_preds + handler_preds
        if fin is None:
            return normal_preds

        self._exc_stack.pop()
        self._finally_frames.pop()
        self._connect(normal_preds, fin.entry)
        fin_exit = self._stmts(stmt.finalbody, [(fin.entry, "next")])
        for target, kind in fin.continuations:
            for src, __ in fin_exit:
                if isinstance(target, list):
                    target.append((src, kind))
                else:
                    self._edge(src, target, kind)
        # Fall-through continuation: the next statement after the try.
        return fin_exit


def build_cfg(func: FunctionNode, name: str | None = None) -> CFG:
    """Build the CFG of one function definition."""
    return _Builder(func, name or func.name).build(func.body)
