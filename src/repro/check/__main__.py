"""``python -m repro.check [paths...]`` — run the static check suite."""

from __future__ import annotations

import sys

from repro.check.reporting import check_main

if __name__ == "__main__":
    sys.exit(check_main())
