"""Schema-consistency rules (``SCHEMA0xx``): event model ↔ codec lockstep.

The batched codec keeps hand-maintained per-command dispatch tables
(``_DISPATCH``/``_DISPATCH_TRUSTED``) and a formatter table; nothing in
the language ties them to :class:`~repro.core.events.EventType`, so a
new event type (or a deleted dispatch entry) would silently fall back
to the slow parser — or fail at replay time.  These rules verify the
tables against the enum by introspecting the *imported* modules (the
tables are built programmatically, so textual AST matching cannot see
their contents):

* ``SCHEMA001`` — every ``EventType`` member has a parse entry in both
  dispatch tables, and no table carries stale entries.
* ``SCHEMA002`` — every concrete :class:`~repro.core.events.Event`
  subclass has a formatter registered in ``_FORMATTERS``.
* ``SCHEMA003`` — a sample event of every ``EventType`` member
  round-trips through ``format_event`` → ``parse_line`` unchanged (in
  both careful and trusted modes).
* ``SCHEMA004`` — the binary codec's hand-maintained wire-tag table
  (``binfmt._TAG_BY_TYPE``) covers every ``EventType`` member with a
  unique tag and a registered decoder, and a sample of every member
  decodes identically through the binary and CSV paths.

The rules anchor their findings at the dispatch-table assignments in
``core/codec.py`` (or ``core/binfmt.py`` for the binary rule) when
that file is part of the scanned tree.  For testing, alternative
``codec``/``events``/``binfmt`` module objects may be injected via the
constructor.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.check.framework import CheckedModule, ProjectRule, Violation

__all__ = [
    "BinaryTagCoverageRule",
    "DispatchCoverageRule",
    "FormatterCoverageRule",
    "RoundTripRule",
    "SCHEMA_RULES",
]

_CODEC_SCOPE_PATH = "core/codec.py"
_BINFMT_SCOPE_PATH = "core/binfmt.py"


class _SchemaRule(ProjectRule):
    """Shared plumbing: module resolution and violation anchoring."""

    def __init__(self, codec=None, events=None):
        self._codec = codec
        self._events = events

    def _resolve_modules(self):
        codec, events = self._codec, self._events
        if codec is None:
            from repro.core import codec as codec  # noqa: PLW0127
        if events is None:
            from repro.core import events as events  # noqa: PLW0127
        return codec, events

    def _should_run(self, modules: Sequence[CheckedModule]) -> bool:
        """Run when the codec is part of the scan or explicitly injected.

        Scanning an unrelated tree (a fixture directory, a single
        generator file) must not drag repro's own codec into the
        report.
        """
        if self._codec is not None:
            return True
        return any(
            module.scope_path == _CODEC_SCOPE_PATH for module in modules
        )

    _scope_path = _CODEC_SCOPE_PATH

    def _anchor(
        self, modules: Sequence[CheckedModule], symbol: str
    ) -> tuple[str, int]:
        """(path, line) of ``symbol``'s assignment in the scanned module."""
        for module in modules:
            if module.scope_path != self._scope_path:
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                else:
                    continue
                if any(
                    isinstance(target, ast.Name) and target.id == symbol
                    for target in targets
                ):
                    return str(module.path), node.lineno
            return str(module.path), 1
        return f"repro/{self._scope_path}", 1

    def _make_violation(
        self,
        modules: Sequence[CheckedModule],
        symbol: str,
        message: str,
    ) -> Violation:
        path, line = self._anchor(modules, symbol)
        return Violation(
            rule_id=self.rule_id, message=message, path=path, line=line
        )


class DispatchCoverageRule(_SchemaRule):
    """``SCHEMA001``: EventType and the codec dispatch tables move in
    lockstep — no missing and no stale entries."""

    rule_id = "SCHEMA001"
    title = "every EventType member has entries in both dispatch tables"

    def check_project(
        self, modules: Sequence[CheckedModule]
    ) -> Iterator[Violation]:
        if not self._should_run(modules):
            return
        codec, events = self._resolve_modules()
        expected = {member.value for member in events.EventType}
        for table_name in ("_DISPATCH", "_DISPATCH_TRUSTED"):
            table = getattr(codec, table_name, None)
            if table is None:
                yield self._make_violation(
                    modules,
                    table_name,
                    f"codec has no {table_name} dispatch table",
                )
                continue
            for missing in sorted(expected - set(table)):
                yield self._make_violation(
                    modules,
                    table_name,
                    f"EventType.{missing} has no parse entry in "
                    f"codec.{table_name}; streams with this command fall "
                    "off the fast path (or fail to parse)",
                )
            for stale in sorted(set(table) - expected):
                yield self._make_violation(
                    modules,
                    table_name,
                    f"codec.{table_name} entry {stale!r} does not "
                    "correspond to any EventType member",
                )


class FormatterCoverageRule(_SchemaRule):
    """``SCHEMA002``: every concrete Event subclass can be formatted."""

    rule_id = "SCHEMA002"
    title = "every concrete Event subclass has a registered formatter"

    def check_project(
        self, modules: Sequence[CheckedModule]
    ) -> Iterator[Violation]:
        if not self._should_run(modules):
            return
        codec, events = self._resolve_modules()
        formatters = getattr(codec, "_FORMATTERS", None)
        if formatters is None:
            yield self._make_violation(
                modules, "_FORMATTERS", "codec has no _FORMATTERS table"
            )
            return
        base = events.Event
        concrete = [
            value
            for value in vars(events).values()
            if isinstance(value, type)
            and issubclass(value, base)
            and value is not base
        ]
        for event_class in sorted(concrete, key=lambda cls: cls.__name__):
            if event_class not in formatters:
                yield self._make_violation(
                    modules,
                    "_FORMATTERS",
                    f"{event_class.__name__} has no formatter in "
                    "codec._FORMATTERS; format_events falls back to "
                    "per-event isinstance dispatch (or fails)",
                )


def _sample_event(events, member):
    """A representative event for ``member``, or None when unknown.

    An unknown member is itself a schema violation: whoever adds an
    ``EventType`` must teach the codec (and this table) about it.
    """
    if member.is_vertex_event:
        return events.GraphEvent(member, 7, "state,with\\escapes")
    if member.is_edge_event:
        return events.GraphEvent(member, events.EdgeId(3, 4), "s")
    name = member.name
    if name == "MARKER":
        return events.MarkerEvent("phase,one")
    if name == "SPEED":
        return events.SpeedEvent(2.5)
    if name == "PAUSE":
        return events.PauseEvent(0.25)
    return None


class RoundTripRule(_SchemaRule):
    """``SCHEMA003``: format → parse is the identity for every member,
    in both trusted and untrusted parse modes."""

    rule_id = "SCHEMA003"
    title = "every EventType member round-trips through the codec"

    def check_project(
        self, modules: Sequence[CheckedModule]
    ) -> Iterator[Violation]:
        if not self._should_run(modules):
            return
        codec, events = self._resolve_modules()
        for member in events.EventType:
            sample = _sample_event(events, member)
            if sample is None:
                yield self._make_violation(
                    modules,
                    "_DISPATCH",
                    f"EventType.{member.name} has no codec support: add "
                    "parse/format handling (and a sample in the schema "
                    "checker) for the new event type",
                )
                continue
            try:
                line = codec.format_event(sample)
            except Exception as exc:
                yield self._make_violation(
                    modules,
                    "_FORMATTERS",
                    f"formatting a sample EventType.{member.name} event "
                    f"failed: {exc}",
                )
                continue
            for trusted in (False, True):
                try:
                    parsed = codec.parse_line(line, trusted=trusted)
                except Exception as exc:
                    yield self._make_violation(
                        modules,
                        "_DISPATCH",
                        f"parsing the formatted sample for "
                        f"EventType.{member.name} failed "
                        f"(trusted={trusted}): {exc}",
                    )
                    continue
                if parsed != sample:
                    yield self._make_violation(
                        modules,
                        "_DISPATCH",
                        f"EventType.{member.name} does not round-trip "
                        f"(trusted={trusted}): {sample!r} -> {line!r} -> "
                        f"{parsed!r}",
                    )


class BinaryTagCoverageRule(_SchemaRule):
    """``SCHEMA004``: the binary wire-tag table moves in lockstep with
    ``EventType`` and the CSV codec.

    ``binfmt._TAG_BY_TYPE`` is a hand-maintained literal (the tags are
    wire format, so they must never shift when the enum is reordered);
    this rule is what makes forgetting an entry a check failure rather
    than a replay-time crash.  Beyond coverage it verifies tag
    uniqueness, decoder registration, and that a sample of every
    member decodes to the same event through ``encode_event`` →
    ``decode_event`` as through ``format_event`` → ``parse_line``.
    """

    rule_id = "SCHEMA004"
    title = "every EventType member has a unique binary wire tag"
    _scope_path = _BINFMT_SCOPE_PATH

    def __init__(self, codec=None, events=None, binfmt=None):
        super().__init__(codec=codec, events=events)
        self._binfmt = binfmt

    def _resolve_binfmt(self):
        if self._binfmt is not None:
            return self._binfmt
        from repro.core import binfmt

        return binfmt

    def _should_run(self, modules: Sequence[CheckedModule]) -> bool:
        if self._binfmt is not None:
            return True
        return any(
            module.scope_path in (_BINFMT_SCOPE_PATH, _CODEC_SCOPE_PATH)
            for module in modules
        )

    def check_project(
        self, modules: Sequence[CheckedModule]
    ) -> Iterator[Violation]:
        if not self._should_run(modules):
            return
        codec, events = self._resolve_modules()
        binfmt = self._resolve_binfmt()
        tags = getattr(binfmt, "_TAG_BY_TYPE", None)
        if tags is None:
            yield self._make_violation(
                modules,
                "_TAG_BY_TYPE",
                "binfmt has no _TAG_BY_TYPE wire-tag table",
            )
            return
        for missing in sorted(
            member.name for member in events.EventType if member not in tags
        ):
            yield self._make_violation(
                modules,
                "_TAG_BY_TYPE",
                f"EventType.{missing} has no wire tag in "
                "binfmt._TAG_BY_TYPE; binary streams cannot carry this "
                "event type",
            )
        for stale in sorted(
            getattr(member, "name", repr(member))
            for member in tags
            if member not in set(events.EventType)
        ):
            yield self._make_violation(
                modules,
                "_TAG_BY_TYPE",
                f"binfmt._TAG_BY_TYPE entry {stale} does not correspond "
                "to any EventType member",
            )
        if len(set(tags.values())) != len(tags):
            seen: dict[int, str] = {}
            for member, tag in tags.items():
                if tag in seen:
                    yield self._make_violation(
                        modules,
                        "_TAG_BY_TYPE",
                        f"wire tag {tag} is assigned to both "
                        f"{seen[tag]} and {member.name}; tags must be "
                        "unique (decode would be ambiguous)",
                    )
                else:
                    seen[tag] = member.name
        decoders = getattr(binfmt, "_DECODERS", {})
        for member, tag in sorted(tags.items(), key=lambda item: item[1]):
            if member not in set(events.EventType):
                continue
            if tag not in decoders:
                yield self._make_violation(
                    modules,
                    "_DECODERS",
                    f"wire tag {tag} (EventType.{member.name}) has no "
                    "decoder in binfmt._DECODERS",
                )
                continue
            sample = _sample_event(events, member)
            if sample is None:
                # SCHEMA003 already reports the missing sample.
                continue
            try:
                via_binary = binfmt.decode_event(binfmt.encode_event(sample))
            except Exception as exc:
                yield self._make_violation(
                    modules,
                    "_TAG_BY_TYPE",
                    f"EventType.{member.name} does not round-trip "
                    f"through the binary codec: {exc}",
                )
                continue
            via_csv = codec.parse_line(codec.format_event(sample))
            if via_binary != via_csv:
                yield self._make_violation(
                    modules,
                    "_TAG_BY_TYPE",
                    f"EventType.{member.name} decodes differently "
                    f"through binary and CSV: {via_binary!r} != "
                    f"{via_csv!r}",
                )


SCHEMA_RULES: tuple[type[ProjectRule], ...] = (
    DispatchCoverageRule,
    FormatterCoverageRule,
    RoundTripRule,
    BinaryTagCoverageRule,
)
