"""Runtime thread-sanitizer harness (the dynamic half of ``repro check``).

The static concurrency rules (``CONC0xx``) prove lock *discipline*;
this module observes actual executions.  A :class:`Monitor` records a
``(thread, lock-set, access)`` tuple for every read/write of the
instrumented fields, and reports **races**: pairs of accesses to the
same field from different threads, at least one a write, whose held
lock-sets are disjoint (the classic Eraser lockset algorithm) and
which are not ordered by a happens-before edge (vector clocks updated
at ``Thread.start``/``Thread.join``, so the replayer's
write-then-join-then-read hand-off of ``_reader_error`` is correctly
*not* a race).

Typical test usage::

    monitor = Monitor()
    with watch_threads(monitor):          # start/join happens-before
        replayer = LiveReplayer(path, transport, rate=5000.0)
        instrument(replayer, monitor, fields=("_reader_error", "_queue"))
        replayer.run()
    assert monitor.races() == []

``instrument`` swaps the object's class for a recording subclass and
transparently wraps any plain ``threading.Lock``/``RLock`` attributes
in :class:`TrackedLock` so ``with self._lock:`` blocks feed the
lock-set tracking.  The overhead is one monitor call per instrumented
field access — built for tests, not production replays.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Access",
    "Race",
    "TrackedLock",
    "Monitor",
    "instrument",
    "watch_threads",
]


@dataclass(frozen=True, slots=True)
class Access:
    """One recorded field access."""

    seq: int
    thread: int
    owner: str
    field: str
    write: bool
    lockset: frozenset[int]
    clock: dict[int, int]
    location: str

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        held = len(self.lockset)
        return (
            f"{kind} of {self.owner}.{self.field} on thread {self.thread} "
            f"holding {held} lock(s) at {self.location}"
        )


@dataclass(frozen=True, slots=True)
class Race:
    """Two lockset-disjoint, unordered cross-thread accesses."""

    field: str
    first: Access
    second: Access

    def describe(self) -> str:
        return (
            f"race on {self.first.owner}.{self.field}:\n"
            f"  {self.first.describe()}\n"
            f"  {self.second.describe()}"
        )


def _dominates(first: dict[int, int], second: dict[int, int]) -> bool:
    """True when vector clock ``first`` <= ``second`` component-wise."""
    return all(value <= second.get(key, 0) for key, value in first.items())


def _concurrent(first: dict[int, int], second: dict[int, int]) -> bool:
    return not _dominates(first, second) and not _dominates(second, first)


class TrackedLock:
    """A lock wrapper feeding acquire/release into a :class:`Monitor`.

    Wraps an existing ``threading.Lock``/``RLock`` (or creates a fresh
    ``Lock``) and mirrors its context-manager and ``acquire``/
    ``release`` API, so it is a drop-in replacement inside ``with
    self._lock:`` blocks.
    """

    def __init__(self, monitor: "Monitor", inner=None, name: str = "lock"):
        self._monitor = monitor
        self._inner = inner if inner is not None else threading.Lock()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor._on_acquire(id(self))
        return acquired

    def release(self) -> None:
        self._monitor._on_release(id(self))
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class Monitor:
    """Collects accesses, lock-sets, and thread happens-before edges.

    Thread-safe: every recording call serialises on one internal
    (untracked) lock, which also gives accesses a global sequence
    number.  Vector clocks advance one tick per recorded event; start
    and join edges merge clocks between parent and child threads.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._accesses: list[Access] = []
        self._clocks: dict[int, dict[int, int]] = {}
        self._locksets: dict[int, set[int]] = {}
        self._finished_clocks: dict[int, dict[int, int]] = {}
        self._seq = 0

    # -- recording ---------------------------------------------------------

    def record_access(
        self, owner: str, field: str, *, write: bool, location: str = ""
    ) -> None:
        ident = threading.get_ident()
        with self._lock:
            clock = self._tick(ident)
            self._seq += 1
            self._accesses.append(
                Access(
                    seq=self._seq,
                    thread=ident,
                    owner=owner,
                    field=field,
                    write=write,
                    lockset=frozenset(self._locksets.get(ident, ())),
                    clock=dict(clock),
                    location=location,
                )
            )

    def _on_acquire(self, lock_id: int) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._locksets.setdefault(ident, set()).add(lock_id)

    def _on_release(self, lock_id: int) -> None:
        ident = threading.get_ident()
        with self._lock:
            self._locksets.get(ident, set()).discard(lock_id)

    # -- happens-before edges ---------------------------------------------

    def _tick(self, ident: int) -> dict[int, int]:
        clock = self._clocks.setdefault(ident, {})
        clock[ident] = clock.get(ident, 0) + 1
        return clock

    def on_thread_start(self, parent: int) -> dict[int, int]:
        """Called in the parent just before a child thread starts;
        returns the clock snapshot the child inherits."""
        with self._lock:
            return dict(self._tick(parent))

    def on_thread_begin(self, child: int, inherited: dict[int, int]) -> None:
        """Called as the first action on the child thread."""
        with self._lock:
            clock = self._clocks.setdefault(child, {})
            for key, value in inherited.items():
                clock[key] = max(clock.get(key, 0), value)
            self._tick(child)

    def on_thread_end(self, child: int) -> None:
        """Called as the child thread finishes; snapshots its clock so a
        later join can establish the edge."""
        with self._lock:
            self._finished_clocks[child] = dict(self._tick(child))

    def on_thread_join(self, parent: int, child: int) -> None:
        """Called in the parent after a successful join of ``child``."""
        with self._lock:
            final = self._finished_clocks.get(child)
            if final is None:
                return
            clock = self._clocks.setdefault(parent, {})
            for key, value in final.items():
                clock[key] = max(clock.get(key, 0), value)
            self._tick(parent)

    # -- reporting ---------------------------------------------------------

    @property
    def accesses(self) -> list[Access]:
        with self._lock:
            return list(self._accesses)

    def races(self, *, max_per_field: int = 1) -> list[Race]:
        """Lockset-disjoint, unordered cross-thread conflicting accesses.

        ``max_per_field`` caps how many conflicting pairs are reported
        per field (one is enough to fail a test; the full access log
        stays available on :attr:`accesses` for debugging).
        """
        races: list[Race] = []
        by_field: dict[tuple[str, str], list[Access]] = {}
        for access in self.accesses:
            by_field.setdefault((access.owner, access.field), []).append(access)
        for (__, field), accesses in sorted(by_field.items()):
            found = 0
            writes = [access for access in accesses if access.write]
            for write in writes:
                if found >= max_per_field:
                    break
                for other in accesses:
                    if other.thread == write.thread:
                        continue
                    if write.lockset & other.lockset:
                        continue
                    if not _concurrent(write.clock, other.clock):
                        continue
                    first, second = sorted(
                        (write, other), key=lambda access: access.seq
                    )
                    races.append(Race(field=field, first=first, second=second))
                    found += 1
                    break
        return races

    def assert_race_free(self) -> None:
        """Raise ``AssertionError`` describing every detected race."""
        races = self.races()
        if races:
            details = "\n".join(race.describe() for race in races)
            raise AssertionError(f"{len(races)} data race(s) detected:\n{details}")


def _caller_location(depth: int = 2) -> str:
    frame = sys._getframe(depth)
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _is_plain_lock(value: object) -> bool:
    if isinstance(value, TrackedLock):
        return False
    return type(value).__module__ == "_thread" and hasattr(value, "acquire")


def instrument(
    obj: object,
    monitor: Monitor,
    fields: Iterable[str],
    *,
    label: str | None = None,
    wrap_locks: bool = True,
) -> object:
    """Instrument ``obj`` so accesses to ``fields`` are recorded.

    Swaps the object's class for a dynamically created subclass whose
    ``__getattribute__``/``__setattr__`` report reads/writes of the
    named fields to ``monitor`` before delegating.  With
    ``wrap_locks`` (default), every plain ``threading.Lock``/``RLock``
    attribute of the object is replaced by a :class:`TrackedLock` so
    the monitor sees which locks protect which accesses.  Returns
    ``obj`` (instrumented in place).

    Objects using ``__slots__`` cannot be instrumented this way; the
    shared state of the replayer/transport stack is held in plain
    classes precisely so tests can wrap it.
    """
    cls = type(obj)
    field_set = frozenset(fields)
    owner = label if label is not None else cls.__name__

    if wrap_locks:
        for attr_name, value in list(vars(obj).items()):
            if _is_plain_lock(value):
                object.__setattr__(
                    obj,
                    attr_name,
                    TrackedLock(monitor, inner=value, name=attr_name),
                )

    base_get = cls.__getattribute__
    base_set = cls.__setattr__

    def __getattribute__(self, name):
        if name in field_set:
            monitor.record_access(
                owner, name, write=False, location=_caller_location()
            )
        return base_get(self, name)

    def __setattr__(self, name, value):
        if name in field_set:
            monitor.record_access(
                owner, name, write=True, location=_caller_location()
            )
        base_set(self, name, value)

    instrumented = type(
        f"Tsan{cls.__name__}",
        (cls,),
        {
            "__getattribute__": __getattribute__,
            "__setattr__": __setattr__,
            "__tsan_fields__": field_set,
        },
    )
    object.__setattr__(obj, "__class__", instrumented)
    return obj


@contextmanager
def watch_threads(monitor: Monitor) -> Iterator[Monitor]:
    """Patch ``threading.Thread`` start/join to feed happens-before edges.

    Inside the context, every thread start hands the parent's vector
    clock to the child, and every *successful* join merges the child's
    final clock back into the joiner — so hand-offs that are ordered
    by thread lifecycle (write in child, ``join()``, read in parent)
    are correctly excluded from race reports.  Timed-out joins merge
    nothing.  The patch is process-global; use from one test at a time
    (the pytest fixture serialises naturally).
    """
    original_start = threading.Thread.start
    original_join = threading.Thread.join

    def start(self):
        inherited = monitor.on_thread_start(threading.get_ident())
        original_run = self.run

        def run():
            ident = threading.get_ident()
            monitor.on_thread_begin(ident, inherited)
            try:
                original_run()
            finally:
                monitor.on_thread_end(ident)

        self.run = run
        original_start(self)

    def join(self, timeout=None):
        original_join(self, timeout)
        if not self.is_alive() and self.ident is not None:
            monitor.on_thread_join(threading.get_ident(), self.ident)

    threading.Thread.start = start  # type: ignore[method-assign]
    threading.Thread.join = join  # type: ignore[method-assign]
    try:
        yield monitor
    finally:
        threading.Thread.start = original_start  # type: ignore[method-assign]
        threading.Thread.join = original_join  # type: ignore[method-assign]
