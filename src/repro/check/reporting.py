"""Rendering and CLI plumbing for ``repro check``.

Shared by the ``graphtides check`` subcommand and the
``python -m repro.check`` entry point so both print identical reports
and exit codes (0 clean, 1 violations, 2 usage error).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.check.framework import CheckResult, Rule, run_check

__all__ = [
    "render_report",
    "render_json",
    "render_github",
    "render_rule_catalogue",
    "run_and_report",
    "build_check_parser",
    "check_main",
]

#: Supported ``--format`` values, in help order.
FORMATS = ("text", "json", "github")


def render_report(result: CheckResult) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [violation.render() for violation in result.violations]
    if result.violations:
        lines.append(
            f"repro check: {len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s)"
        )
    else:
        lines.append(
            f"repro check: OK ({result.files_checked} file(s), "
            f"{result.rules_run} rule(s))"
        )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Machine-readable report: stable keys, one object per violation."""
    payload = {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules_run": result.rules_run,
        "violations": [
            {
                "rule_id": violation.rule_id,
                "severity": violation.severity,
                "path": violation.path,
                "line": violation.line,
                "column": violation.column + 1,
                "message": violation.message,
            }
            for violation in result.violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_github(result: CheckResult) -> str:
    """GitHub Actions workflow commands: clickable PR annotations.

    One ``::error`` / ``::warning`` line per violation (severity maps
    to the annotation level) plus a trailing plain summary line.
    """
    lines = []
    for violation in result.violations:
        level = "warning" if violation.severity == "warning" else "error"
        message = violation.message.replace("%", "%25").replace(
            "\n", "%0A"
        )
        lines.append(
            f"::{level} file={violation.path},line={violation.line},"
            f"col={violation.column + 1},title={violation.rule_id}::"
            f"{violation.rule_id} {message}"
        )
    if result.violations:
        lines.append(
            f"repro check: {len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s)"
        )
    else:
        lines.append(
            f"repro check: OK ({result.files_checked} file(s), "
            f"{result.rules_run} rule(s))"
        )
    return "\n".join(lines)


_RENDERERS = {
    "text": render_report,
    "json": render_json,
    "github": render_github,
}


def render_rule_catalogue(rules: Sequence[Rule]) -> str:
    """The ``--list-rules`` output: id, scope, and title per rule."""
    lines = ["rule      scope                                    description"]
    for rule in rules:
        scope = ",".join(rule.scope) if rule.scope else "(all files)"
        lines.append(f"{rule.rule_id:<9} {scope:<40} {rule.title}")
    return "\n".join(lines)


def build_check_parser(prog: str = "repro-check") -> argparse.ArgumentParser:
    """Argument parser shared by the CLI subcommand and ``__main__``."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static determinism/concurrency/schema checks for the "
            "GraphTides reproduction (see README: 'repro check')."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        dest="format",
        help=(
            "report format: text (default), json, or github "
            "(::error/::warning workflow-command annotations)"
        ),
    )
    return parser


def run_and_report(
    paths: Sequence[str],
    *,
    list_rules: bool = False,
    format: str = "text",
) -> int:
    """Run the full rule catalogue and print the report; returns exit code."""
    from repro.check import all_rules

    if list_rules:
        print(render_rule_catalogue(all_rules()))
        return 0
    renderer = _RENDERERS.get(format)
    if renderer is None:
        print(f"repro check: unknown format: {format}", file=sys.stderr)
        return 2
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"repro check: no such path: {path}", file=sys.stderr)
        return 2
    result = run_check(paths)
    print(renderer(result))
    return 0 if result.ok else 1


def check_main(argv: Sequence[str] | None = None) -> int:
    """Entry point shared by ``python -m repro.check`` and the console
    script."""
    args = build_check_parser().parse_args(argv)
    return run_and_report(
        args.paths, list_rules=args.list_rules, format=args.format
    )
