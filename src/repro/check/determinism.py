"""Determinism rules (``DET0xx``): seeded randomness only, no wall clock.

The generator, simulation kernel, platform models, and stream
generators must behave identically run-to-run for the paper's
statistical methodology to hold, so inside :data:`DETERMINISM_SCOPE`:

* ``DET001`` — no wall-clock reads or real sleeps (``time.time``,
  ``time.perf_counter``, ``datetime.now``, ...); simulated code takes
  its clock from the simulation kernel.
* ``DET002`` — no module-level :mod:`random` calls and no unseeded
  ``random.Random()``; every RNG must be constructed from an explicit
  seed and threaded through parameters.  (Checked everywhere, not just
  the simulated scope: hidden global RNG state is never acceptable.)
* ``DET003`` — no hard-coded ``random.Random(<literal>)`` fallbacks;
  the seed must come from a parameter or config so callers control it.
* ``DET004`` — no iteration over ``set``/``frozenset`` values or bare
  ``dict.keys()`` calls: set order depends on hash seeds and can leak
  into emitted streams.  Iterate ``sorted(...)`` or a list instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.framework import (
    CheckedModule,
    Rule,
    Violation,
    dotted_name,
    from_imports,
    imported_names,
)

__all__ = [
    "DETERMINISM_SCOPE",
    "WallClockRule",
    "UnseededRandomRule",
    "HardcodedSeedRule",
    "SetIterationRule",
    "DETERMINISM_RULES",
]

#: Directories (plus single files) holding *simulated* code, where
#: wall-clock time and unordered iteration are forbidden outright.
DETERMINISM_SCOPE: tuple[str, ...] = (
    "sim/",
    "platforms/",
    "gen/",
    "core/generator.py",
)

#: Dotted-call suffixes that read the wall clock or really sleep.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.sleep",
        "time.localtime",
        "time.gmtime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: Module-level :mod:`random` functions drawing from the hidden global RNG.
_GLOBAL_RANDOM_CALLS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "seed",
        "getrandbits",
        "betavariate",
        "expovariate",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "triangular",
        "vonmisesvariate",
        "weibullvariate",
    }
)


def _matches_wall_clock(name: str) -> bool:
    if name in _WALL_CLOCK_CALLS:
        return True
    return any(name.endswith("." + call) for call in _WALL_CLOCK_CALLS)


class WallClockRule(Rule):
    """``DET001``: simulated code must not read the wall clock."""

    rule_id = "DET001"
    title = "no wall-clock reads inside simulated code"
    scope = DETERMINISM_SCOPE

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        imports = imported_names(module.tree)
        if not ({"time", "datetime"} & imports):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or not _matches_wall_clock(name):
                continue
            yield self.violation(
                module,
                node,
                f"wall-clock call {name}() in simulated code; take time "
                "from the simulation kernel instead",
            )


class UnseededRandomRule(Rule):
    """``DET002``: no hidden global RNG state, anywhere in the tree."""

    rule_id = "DET002"
    title = "no global-RNG calls or unseeded random.Random()"
    # Deliberately unscoped: module-level random state is global mutable
    # state and breaks reproducibility wherever it hides.

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        if "random" not in imported_names(module.tree):
            return
        bound = from_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in bound:
                name = bound[name]
            if name == "random.Random" and not node.args and not node.keywords:
                yield self.violation(
                    module,
                    node,
                    "unseeded random.Random(); construct it from an "
                    "explicit seed parameter",
                )
            elif (
                name.startswith("random.")
                and name.removeprefix("random.") in _GLOBAL_RANDOM_CALLS
            ):
                yield self.violation(
                    module,
                    node,
                    f"module-level {name}() draws from the hidden global "
                    "RNG; thread a seeded random.Random through parameters",
                )


class HardcodedSeedRule(Rule):
    """``DET003``: seeds come from parameters, not literals."""

    rule_id = "DET003"
    title = "no hard-coded random.Random(<literal>) fallbacks"
    scope = DETERMINISM_SCOPE

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        if "random" not in imported_names(module.tree):
            return
        bound = from_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in bound:
                name = bound[name]
            if name != "random.Random":
                continue
            if len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
                yield self.violation(
                    module,
                    node,
                    f"hard-coded RNG seed {node.args[0].value!r}; accept the "
                    "seed as an explicit parameter so callers control it",
                )


class SetIterationRule(Rule):
    """``DET004``: hash order must not leak into simulated output."""

    rule_id = "DET004"
    title = "no iteration over unordered sets in simulated code"
    scope = DETERMINISM_SCOPE

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        yield from self._check_scope(module, module.tree, {})

    def _check_scope(
        self,
        module: CheckedModule,
        scope: ast.AST,
        outer_env: dict[str, bool],
    ) -> Iterator[Violation]:
        """Walk one function/module scope tracking set-valued names.

        ``env`` maps local names to "definitely a set right now"; a
        rebinding to anything else clears the flag, so converting via
        ``sorted()``/``list()`` before iterating is always clean.
        """
        env = dict(outer_env)
        for node in ast.iter_child_nodes(scope):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from self._check_scope(module, node, env)
                continue
            for sub in self._walk_statement(node):
                if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        sub.targets
                        if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    value = sub.value
                    for target in targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = value is not None and (
                                self._is_set_expr(value)
                            )
                elif isinstance(sub, (ast.For, ast.AsyncFor)):
                    yield from self._flag_iterable(module, sub.iter, env)
                    if isinstance(sub.target, ast.Name):
                        env[sub.target.id] = False
                elif isinstance(
                    sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for comp in sub.generators:
                        yield from self._flag_iterable(module, comp.iter, env)

    @staticmethod
    def _walk_statement(node: ast.AST) -> Iterator[ast.AST]:
        """Walk a statement without descending into nested def/class."""
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from SetIterationRule._walk_statement(child)

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in ("set", "frozenset")
        return False

    def _flag_iterable(
        self,
        module: CheckedModule,
        iterable: ast.expr,
        env: dict[str, bool],
    ) -> Iterator[Violation]:
        if self._is_set_expr(iterable):
            yield self.violation(
                module,
                iterable,
                "iteration over a set: the order depends on hash seeds and "
                "can leak into emitted streams; iterate sorted(...) instead",
            )
        elif isinstance(iterable, ast.Name) and env.get(iterable.id):
            yield self.violation(
                module,
                iterable,
                f"iteration over set {iterable.id!r}: the order depends on "
                "hash seeds and can leak into emitted streams; iterate "
                "sorted(...) instead",
            )
        elif (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr == "keys"
            and not iterable.args
        ):
            yield self.violation(
                module,
                iterable,
                "iteration over .keys(): iterate the dict directly (explicit "
                "insertion order) or sorted(...) when order must be canonical",
            )


DETERMINISM_RULES: tuple[type[Rule], ...] = (
    WallClockRule,
    UnseededRandomRule,
    HardcodedSeedRule,
    SetIterationRule,
)
