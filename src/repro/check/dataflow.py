"""Generic worklist dataflow solver over :mod:`repro.check.cfg` graphs.

An :class:`Analysis` names a direction, a lattice (``bottom`` /
``join``), a boundary state, and a transfer function.  States must be
immutable and comparable (``frozenset`` is the usual choice).
:func:`solve` iterates to a fixpoint and returns the state *entering*
each node (forward) or *leaving* it (backward).

The per-edge hook :meth:`Analysis.flow` is where flow-sensitive
precision lives: an analysis can propagate a different state along an
``exception`` edge than along the normal one (a resource acquired by a
statement that raised was never acquired), or refine state on the
``true`` / ``false`` edges of a branch whose test it understands
(``if f is not None:`` proves ``f`` holds nothing on the false edge).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, TypeVar

from repro.check.cfg import CFG, CFGEdge, CFGNode

__all__ = ["Analysis", "DataflowResult", "solve"]

S = TypeVar("S")


class Analysis(Generic[S]):
    """Base class for lattice dataflow analyses.

    Subclasses set ``direction`` (``"forward"`` or ``"backward"``) and
    implement the lattice and transfer methods.  The default ``flow``
    ignores the edge and applies the node transfer — override it for
    edge-sensitive analyses.
    """

    direction: str = "forward"

    def bottom(self) -> S:
        """The identity of ``join`` (no paths reach here yet)."""
        raise NotImplementedError

    def boundary(self, cfg: CFG) -> S:
        """State at the entry node (forward) / the exit nodes (backward)."""
        return self.bottom()

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        return state

    def flow(self, cfg: CFG, edge: CFGEdge, node: CFGNode, state: S) -> S:
        """State propagated along ``edge`` out of ``node`` (its source
        in a forward analysis, its destination in a backward one),
        given the state entering that node."""
        return self.transfer(node, state)


class DataflowResult(Generic[S]):
    """Fixpoint states per node index.

    For a forward analysis ``states[n]`` is the state *entering* node
    ``n``; for a backward analysis, the state *leaving* it.  ``after``
    applies the node's transfer to give the other side.
    """

    def __init__(self, cfg: CFG, analysis: Analysis[S], states: dict[int, S]):
        self.cfg = cfg
        self.analysis = analysis
        self.states = states

    def __getitem__(self, index: int) -> S:
        return self.states[index]

    def after(self, index: int) -> S:
        return self.analysis.transfer(self.cfg.nodes[index], self.states[index])

    def at(self, node: Any) -> S | None:
        """State at the CFG node of an AST statement/handler, if any."""
        cfg_node = self.cfg.node_for(node)
        return self.states[cfg_node.index] if cfg_node is not None else None


def solve(cfg: CFG, analysis: Analysis[S]) -> DataflowResult[S]:
    """Run ``analysis`` over ``cfg`` to fixpoint (round-robin worklist).

    Joins are over *incoming* edges (forward) or *outgoing* edges
    (backward); unreachable nodes keep ``bottom``.  Raises
    ``RuntimeError`` if the analysis fails to converge — a sign of a
    non-monotone transfer, since the solver itself visits each node at
    most once per state change.
    """
    forward = analysis.direction == "forward"
    if not forward and analysis.direction != "backward":
        raise ValueError(f"unknown direction {analysis.direction!r}")

    boundary_nodes = (
        {cfg.entry} if forward else {cfg.exit, cfg.raise_exit}
    )
    states: dict[int, S] = {
        node.index: analysis.bottom() for node in cfg.nodes
    }
    boundary = analysis.boundary(cfg)
    for index in boundary_nodes:
        states[index] = boundary

    def in_edges(index: int) -> list[CFGEdge]:
        return cfg.predecessors(index) if forward else cfg.successors(index)

    def edge_source(edge: CFGEdge) -> int:
        return edge.src if forward else edge.dst

    def out_targets(index: int) -> list[int]:
        edges = cfg.successors(index) if forward else cfg.predecessors(index)
        return [edge.dst if forward else edge.src for edge in edges]

    pending = deque(node.index for node in cfg.nodes)
    queued = set(pending)
    # Each node re-enters the worklist only when an input changed; the
    # cap is a backstop against a non-monotone transfer oscillating.
    budget = 64 * len(cfg.nodes) * (len(cfg.nodes) + 2)
    while pending:
        budget -= 1
        if budget < 0:
            raise RuntimeError(
                f"dataflow did not converge on {cfg.name!r}; "
                "is the transfer function monotone?"
            )
        index = pending.popleft()
        queued.discard(index)
        if index in boundary_nodes:
            continue  # fixed state; successors are in the initial queue
        state = analysis.bottom()
        for edge in in_edges(index):
            source = edge_source(edge)
            state = analysis.join(
                state,
                analysis.flow(cfg, edge, cfg.nodes[source], states[source]),
            )
        if state == states[index]:
            continue
        states[index] = state
        for target in out_targets(index):
            if target not in queued:
                queued.add(target)
                pending.append(target)
    return DataflowResult(cfg, analysis, states)
