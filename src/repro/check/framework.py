"""Pluggable AST lint framework underlying ``repro check``.

A :class:`Rule` walks the :mod:`ast` of one module at a time; a
:class:`ProjectRule` sees the whole scanned module set at once (the
schema-consistency rules need cross-module facts).  The runner
(:func:`run_check`) loads every ``*.py`` file under the given paths,
applies each rule to the modules in its scope, and filters out
violations suppressed with ``# repro-check: disable=<ID>`` comments on
the offending line.

Rules are identified by stable ids (``DET001``, ``CONC002``,
``SCHEMA001``...) documented in the README's rule catalogue; the ids
are part of the suppression contract and must never be renumbered.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Violation",
    "CheckedModule",
    "CheckResult",
    "Rule",
    "ProjectRule",
    "load_module",
    "iter_python_files",
    "run_check",
]

#: Line-scoped suppression comment: ``# repro-check: disable=DET001,CONC002``.
_SUPPRESS_RE = re.compile(r"#\s*repro-check:\s*disable=([A-Za-z0-9_,\s]+)")

#: File-scoped suppression comment (anywhere in the file, conventionally
#: at the top): ``# repro-check: disable-file=SCHEMA002``.
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*repro-check:\s*disable-file=([A-Za-z0-9_,\s]+)"
)

#: Rule id reserved for files the framework itself cannot parse.
PARSE_ERROR_ID = "PARSE001"


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule id, a location, and a human-readable message."""

    rule_id: str
    message: str
    path: str
    line: int
    column: int = 0
    severity: str = "error"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column + 1}: {self.rule_id} {self.message}"

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)


class CheckedModule:
    """A parsed source file plus the metadata rules need.

    ``scope_path`` is the path relative to the ``repro`` package root
    when the file lives inside one (``core/generator.py``), otherwise
    relative to the scanned root — rule scoping patterns match against
    it, so checks behave identically whether the tree is scanned as
    ``src/``, ``src/repro/``, or a test fixture directory.
    """

    def __init__(self, path: Path, source: str, root: Path | None = None):
        self.path = path
        self.source = source
        self.lines: list[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        self.scope_path = self._compute_scope_path(path, root)
        self._suppressed = self._parse_suppressions(self.lines, self.tree)
        self._file_suppressed = self._parse_file_suppressions(self.lines)

    @staticmethod
    def _compute_scope_path(path: Path, root: Path | None) -> str:
        parts = path.resolve().parts
        # Use the *last* ``repro`` component so nested checkouts resolve
        # to the innermost package.
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] == "repro":
                return "/".join(parts[index + 1 :])
        if root is not None:
            try:
                return path.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                pass
        return path.name

    @classmethod
    def _parse_suppressions(
        cls, lines: Sequence[str], tree: ast.Module
    ) -> dict[int, frozenset[str]]:
        suppressed: dict[int, set[str]] = {}
        for number, line in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            ids = {
                part.strip() for part in match.group(1).split(",") if part.strip()
            }
            if ids:
                suppressed.setdefault(number, set()).update(ids)
        # A statement continued over several physical lines is one
        # suppression scope: a ``disable=`` comment on any of its lines
        # covers every line of the statement, so the comment can sit on
        # the closing-paren line while the rule reports the opener (and
        # vice versa).  Compound statements scope only their header.
        for start, end in cls._statement_spans(tree):
            span_ids: set[str] = set()
            for number in range(start, end + 1):
                span_ids.update(suppressed.get(number, ()))
            if not span_ids:
                continue
            for number in range(start, end + 1):
                suppressed.setdefault(number, set()).update(span_ids)
        return {
            number: frozenset(ids) for number, ids in suppressed.items()
        }

    @staticmethod
    def _statement_spans(tree: ast.Module) -> Iterator[tuple[int, int]]:
        """``(first_line, last_line)`` of multi-line statement scopes.

        Simple statements span all their physical lines; compound
        statements span their header only (up to the line before the
        first body statement), so a suppression on a ``def``/``if``
        header never leaks into the body it introduces.
        """
        compound = (
            ast.If,
            ast.For,
            ast.AsyncFor,
            ast.While,
            ast.With,
            ast.AsyncWith,
            ast.Try,
            ast.FunctionDef,
            ast.AsyncFunctionDef,
            ast.ClassDef,
        )
        if hasattr(ast, "TryStar"):  # 3.11+
            compound = compound + (ast.TryStar,)
        if hasattr(ast, "Match"):
            compound = compound + (ast.Match,)
        for node in ast.walk(tree):
            if not isinstance(node, ast.stmt) or node.end_lineno is None:
                continue
            if isinstance(node, compound):
                body = getattr(node, "body", None) or [node]
                end = body[0].lineno - 1
            else:
                end = node.end_lineno
            if end > node.lineno:
                yield node.lineno, end

    @staticmethod
    def _parse_file_suppressions(lines: Sequence[str]) -> frozenset[str]:
        ids: set[str] = set()
        for line in lines:
            match = _SUPPRESS_FILE_RE.search(line)
            if match is None:
                continue
            ids.update(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
        return frozenset(ids)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_suppressed or "all" in self._file_suppressed:
            return True
        ids = self._suppressed.get(line)
        return ids is not None and (rule_id in ids or "all" in ids)

    def line_text(self, line: int) -> str:
        """The 1-indexed physical source line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Rule:
    """Base class for per-module AST rules.

    Subclasses set ``rule_id``/``title`` and implement
    :meth:`check_module`.  ``scope`` restricts the rule to modules
    whose ``scope_path`` matches one of the given prefixes (or equals
    an exact file path); an empty scope means every module.
    """

    rule_id: str = ""
    title: str = ""
    scope: tuple[str, ...] = ()
    #: ``"error"`` or ``"warning"`` — carried on every violation the
    #: rule emits; the text/json/github reporters surface it and any
    #: violation still fails the run regardless of severity.
    severity: str = "error"

    def applies_to(self, module: CheckedModule) -> bool:
        if not self.scope:
            return True
        scope_path = module.scope_path
        return any(
            scope_path == pattern or scope_path.startswith(pattern)
            for pattern in self.scope
        )

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        return iter(())

    def violation(
        self, module: CheckedModule, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule_id=self.rule_id,
            message=message,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            severity=self.severity,
        )


class ProjectRule(Rule):
    """A rule that inspects the whole scanned module set at once."""

    def check_project(
        self, modules: Sequence[CheckedModule]
    ) -> Iterator[Violation]:
        return iter(())


@dataclass(slots=True)
class CheckResult:
    """Outcome of one :func:`run_check` invocation."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    rules_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def iter_python_files(path: Path) -> Iterator[Path]:
    """Yield ``*.py`` files under ``path`` (or ``path`` itself), sorted."""
    if path.is_file():
        yield path
        return
    yield from sorted(
        candidate
        for candidate in path.rglob("*.py")
        if "__pycache__" not in candidate.parts
    )


def load_module(path: Path, root: Path | None = None) -> CheckedModule:
    """Read and parse one source file into a :class:`CheckedModule`."""
    source = path.read_text(encoding="utf-8")
    return CheckedModule(path, source, root=root)


def run_check(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
) -> CheckResult:
    """Run ``rules`` (default: the full catalogue) over ``paths``.

    Unparseable files surface as ``PARSE001`` violations rather than
    aborting the run, so one syntax error cannot hide findings in the
    rest of the tree.
    """
    if rules is None:
        from repro.check import all_rules

        rules = all_rules()

    modules: list[CheckedModule] = []
    violations: list[Violation] = []
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        for file_path in iter_python_files(root):
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            try:
                modules.append(load_module(file_path, root=root))
            except SyntaxError as exc:
                violations.append(
                    Violation(
                        rule_id=PARSE_ERROR_ID,
                        message=f"cannot parse file: {exc.msg}",
                        path=str(file_path),
                        line=exc.lineno or 1,
                        column=(exc.offset or 1) - 1,
                    )
                )

    by_path = {str(module.path): module for module in modules}

    def admit(violation: Violation) -> None:
        module = by_path.get(violation.path)
        if module is not None and module.is_suppressed(
            violation.rule_id, violation.line
        ):
            return
        violations.append(violation)

    for rule in rules:
        if isinstance(rule, ProjectRule):
            scoped = [module for module in modules if rule.applies_to(module)]
            for violation in rule.check_project(scoped):
                admit(violation)
            continue
        for module in modules:
            if not rule.applies_to(module):
                continue
            for violation in rule.check_module(module):
                admit(violation)

    violations.sort(key=lambda violation: violation.sort_key)
    return CheckResult(
        violations=violations,
        files_checked=len(modules),
        rules_run=len(rules),
    )


# ---------------------------------------------------------------------------
# Shared AST helpers used by the rule families
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def imported_names(tree: ast.Module) -> set[str]:
    """Top-level module names imported anywhere in the module.

    ``import random`` and ``from random import Random`` both
    contribute ``random``; rules use this to avoid flagging unrelated
    variables that merely shadow a stdlib module name.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom) and node.module:
            names.add(node.module.split(".")[0])
    return names


def from_imports(tree: ast.Module) -> dict[str, str]:
    """Map of locally bound name -> ``module.original`` for from-imports."""
    bound: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                bound[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return bound
