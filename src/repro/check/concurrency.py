"""Concurrency rules (``CONC0xx``): lock discipline on shared state.

The replayer and connectors hand data between threads; these rules
mechanise the conventions that keep that safe:

* ``CONC001`` — every attribute a class mutates from a
  ``threading.Thread`` target (directly, or via methods the target
  calls) must either be assigned under a lock (``with self._lock:``)
  or carry a ``# guarded-by: <what orders the access>`` annotation on
  the assignment or on its ``__init__`` declaration.  The annotation
  documents *why* the unlocked access is safe (e.g. a happens-before
  edge through ``Thread.join``).
* ``CONC002`` — a ``threading.Thread(daemon=True)`` started by a class
  needs a matching join/stop path (a ``.join(...)`` call or a
  ``join``/``stop``/``close``/``shutdown`` method), so replays cannot
  leak threads that outlive their work.
* ``CONC003`` — a class that opens an OS-level resource (a socket via
  ``socket.socket``/``socket.create_connection``, or a file object
  adopted from a raw fd via ``os.fdopen``) must expose a release path
  (a ``close``/``stop``/``shutdown`` method or ``__exit__``), so
  receivers and transports cannot strand sockets or fds on the error
  paths the resilience layer exercises.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.check.framework import (
    CheckedModule,
    Rule,
    Violation,
    dotted_name,
)

__all__ = [
    "UnguardedSharedAttributeRule",
    "DaemonThreadJoinRule",
    "ResourceClosePathRule",
    "CONCURRENCY_RULES",
]

#: Marker comment documenting an intentionally lock-free shared access.
GUARDED_BY_MARKER = "# guarded-by:"

_STOP_METHOD_NAMES = frozenset({"join", "stop", "close", "shutdown"})


def _is_thread_call(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    return name is not None and (
        name == "Thread" or name.endswith(".Thread")
    )


def _thread_target_method(node: ast.Call) -> str | None:
    """The ``self.<method>`` name passed as ``target=``, if any."""
    for keyword in node.keywords:
        if keyword.arg != "target":
            continue
        value = keyword.value
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            return value.attr
    return None


def _self_attribute(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_context(item: ast.withitem) -> bool:
    """``with self._lock:`` style guards — any name containing lock/mutex."""
    name = dotted_name(item.context_expr)
    if name is None and isinstance(item.context_expr, ast.Call):
        name = dotted_name(item.context_expr.func)
    if name is None:
        return False
    lowered = name.lower()
    return "lock" in lowered or "mutex" in lowered


class _ClassModel:
    """Per-class facts shared by the concurrency rules."""

    def __init__(self, node: ast.ClassDef, module: CheckedModule):
        self.node = node
        self.module = module
        self.methods: dict[str, ast.FunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.thread_calls: list[ast.Call] = []
        self.target_methods: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and _is_thread_call(sub):
                self.thread_calls.append(sub)
                target = _thread_target_method(sub)
                if target is not None:
                    self.target_methods.add(target)

    def reachable_from_targets(self) -> set[str]:
        """Thread-target methods plus everything they call via ``self``."""
        calls: dict[str, set[str]] = {}
        for name, method in self.methods.items():
            called: set[str] = set()
            for sub in ast.walk(method):
                if isinstance(sub, ast.Call):
                    attr = _self_attribute(sub.func)
                    if attr is not None and attr in self.methods:
                        called.add(attr)
            calls[name] = called
        reachable: set[str] = set()
        frontier = [name for name in self.target_methods if name in self.methods]
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            frontier.extend(calls.get(name, ()))
        return reachable

    def guarded_declarations(self) -> set[str]:
        """Attributes whose assignment line carries ``# guarded-by:``."""
        guarded: set[str] = set()
        for sub in ast.walk(self.node):
            targets: list[ast.expr]
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            else:
                continue
            line = self.module.line_text(sub.lineno)
            if GUARDED_BY_MARKER not in line:
                continue
            for target in targets:
                attr = _self_attribute(target)
                if attr is not None:
                    guarded.add(attr)
        return guarded


class UnguardedSharedAttributeRule(Rule):
    """``CONC001``: cross-thread attribute mutations need a lock or a
    ``# guarded-by:`` annotation explaining the ordering."""

    rule_id = "CONC001"
    title = "attributes mutated from thread targets need a lock or annotation"

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: CheckedModule, node: ast.ClassDef
    ) -> Iterator[Violation]:
        model = _ClassModel(node, module)
        if not model.target_methods:
            return
        guarded = model.guarded_declarations()
        for name in sorted(model.reachable_from_targets()):
            method = model.methods[name]
            yield from self._check_method(module, model, method, guarded)

    def _check_method(
        self,
        module: CheckedModule,
        model: _ClassModel,
        method: ast.FunctionDef,
        guarded: set[str],
    ) -> Iterator[Violation]:
        yield from self._visit(module, model, method.body, method.name, guarded, False)

    def _visit(
        self,
        module: CheckedModule,
        model: _ClassModel,
        body: list[ast.stmt],
        method_name: str,
        guarded: set[str],
        locked: bool,
    ) -> Iterator[Violation]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            now_locked = locked
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                now_locked = locked or any(
                    _is_lock_context(item) for item in statement.items
                )
            if isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    attr = _self_attribute(target)
                    if attr is None:
                        continue
                    if now_locked or attr in guarded:
                        continue
                    if GUARDED_BY_MARKER in module.line_text(statement.lineno):
                        continue
                    yield self.violation(
                        module,
                        statement,
                        f"attribute 'self.{attr}' is mutated from thread "
                        f"target path '{method_name}' without holding a "
                        "lock; guard it or annotate the assignment with "
                        "'# guarded-by: <what orders this access>'",
                    )
            for child_body in self._child_bodies(statement):
                yield from self._visit(
                    module, model, child_body, method_name, guarded, now_locked
                )

    @staticmethod
    def _child_bodies(statement: ast.stmt) -> Iterator[list[ast.stmt]]:
        for field_name in ("body", "orelse", "finalbody"):
            value = getattr(statement, field_name, None)
            if isinstance(value, list) and value and isinstance(
                value[0], ast.stmt
            ):
                yield value
        handlers = getattr(statement, "handlers", None)
        if handlers:
            for handler in handlers:
                yield handler.body


class DaemonThreadJoinRule(Rule):
    """``CONC002``: a class starting a daemon thread must expose a
    join/stop path so tests can wait for it."""

    rule_id = "CONC002"
    title = "daemon threads need a join/stop path"

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: CheckedModule, node: ast.ClassDef
    ) -> Iterator[Violation]:
        model = _ClassModel(node, module)
        daemon_calls = [
            call
            for call in model.thread_calls
            if any(
                keyword.arg == "daemon"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
                for keyword in call.keywords
            )
        ]
        if not daemon_calls:
            return
        if self._has_stop_path(node, model):
            return
        for call in daemon_calls:
            yield self.violation(
                module,
                call,
                f"class '{node.name}' starts a daemon thread but has no "
                "join/stop path (no .join(...) call and no "
                "join/stop/close/shutdown method); leaked threads outlive "
                "their work",
            )

    @staticmethod
    def _has_stop_path(node: ast.ClassDef, model: _ClassModel) -> bool:
        if _STOP_METHOD_NAMES & set(model.methods):
            return True
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "join"
            ):
                return True
        return False


#: Methods that count as releasing an OS-level resource for CONC003.
_CLOSE_METHOD_NAMES = frozenset({"close", "stop", "shutdown", "__exit__"})

#: Calls that acquire an OS-level resource the class then owns.
_RESOURCE_CALLS = frozenset(
    {"socket.socket", "socket.create_connection", "os.fdopen"}
)


class ResourceClosePathRule(Rule):
    """``CONC003``: a class owning a socket or fd-backed file must have
    a close/stop path so the resource cannot be stranded."""

    rule_id = "CONC003"
    title = "socket/fd-owning classes need a close/stop path"

    def check_module(self, module: CheckedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: CheckedModule, node: ast.ClassDef
    ) -> Iterator[Violation]:
        model = _ClassModel(node, module)
        if _CLOSE_METHOD_NAMES & set(model.methods):
            return
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = self._resource_call_name(sub)
            if name is None:
                continue
            yield self.violation(
                module,
                sub,
                f"class '{node.name}' acquires an OS resource via "
                f"'{name}' but has no close/stop path (no "
                "close/stop/shutdown/__exit__ method); the socket or fd "
                "leaks when the owner is dropped",
            )

    @staticmethod
    def _resource_call_name(node: ast.Call) -> str | None:
        name = dotted_name(node.func)
        if name is None:
            return None
        for resource in _RESOURCE_CALLS:
            if name == resource or name.endswith("." + resource):
                return resource
        return None


CONCURRENCY_RULES: tuple[type[Rule], ...] = (
    UnguardedSharedAttributeRule,
    DaemonThreadJoinRule,
    ResourceClosePathRule,
)
