"""``repro check`` — static analysis enforcing the reproducibility contract.

GraphTides' methodology (paper section 5) is only sound if the
generator, simulation kernel, and replayer behave identically
run-to-run.  This package turns the invariants the codebase keeps by
convention into mechanical checks:

* **determinism** (``DET0xx``) — no wall-clock reads inside simulated
  code, every RNG explicitly seeded and threaded through parameters,
  no iteration over unordered collections that could leak hash order
  into emitted streams;
* **concurrency** (``CONC0xx``) — attributes mutated from thread
  targets must be lock-guarded or carry a ``# guarded-by:``
  annotation, daemon threads need a join/stop path, and classes owning
  sockets or fd-backed files need a close/stop path;
* **schema consistency** (``SCHEMA0xx``) — every
  :class:`~repro.core.events.EventType` member must have parse entries
  in both codec dispatch tables and a working formatter, so an event
  type can never drift out of sync with its codec;
* **resource lifecycle** (``RES0xx``/``EXC001``/``HOT001``) —
  flow-sensitive rules on the :mod:`repro.check.cfg` +
  :mod:`repro.check.dataflow` engine: resources acquired without
  ``with`` must be released on every path including exception edges,
  spawned threads/processes need a join or hand-off, broad ``except``
  blocks must not silently swallow while resources are held, and
  ``# hot-path`` functions must not make unbounded blocking calls.

Run it as ``graphtides check src/`` or ``python -m repro.check src/``.
Violations can be suppressed per line with
``# repro-check: disable=<ID>[,<ID>...]`` (the comment may sit on any
physical line of a multi-line statement) or per file with
``# repro-check: disable-file=<ID>[,<ID>...]``.

The sibling :mod:`repro.check.tsan` module is the *runtime* half: a
lightweight thread-sanitizer harness that instruments shared state
during tests and reports lockset-disjoint cross-thread accesses.
"""

from __future__ import annotations

from repro.check.concurrency import CONCURRENCY_RULES
from repro.check.determinism import DETERMINISM_RULES, DETERMINISM_SCOPE
from repro.check.framework import (
    CheckedModule,
    CheckResult,
    ProjectRule,
    Rule,
    Violation,
    load_module,
    run_check,
)
from repro.check.lifecycle import LIFECYCLE_RULES
from repro.check.schema import SCHEMA_RULES

__all__ = [
    "CheckedModule",
    "CheckResult",
    "ProjectRule",
    "Rule",
    "Violation",
    "load_module",
    "run_check",
    "all_rules",
    "DETERMINISM_SCOPE",
]


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in catalogue order."""
    return [
        *(rule() for rule in DETERMINISM_RULES),
        *(rule() for rule in CONCURRENCY_RULES),
        *(rule() for rule in SCHEMA_RULES),
        *(rule() for rule in LIFECYCLE_RULES),
    ]
