"""Stream rate shaping via control events (paper section 4.2).

"Control events can change the speed of the replayer at runtime by
defining a speed-up factor ... This allows emulation of varying rates,
and is helpful for inducing short bursts and peaks.  A second control
event causes the replayer to pause new events for a specified amount of
time."

These helpers derive shaped streams from a flat one by inserting
``SPEED``/``PAUSE`` events at graph-event boundaries: bursts (short
high-rate windows), square waves (alternating high/low phases), ramps
(stepwise acceleration), and pauses.  All shapes compose, since each
helper returns an ordinary :class:`~repro.core.stream.GraphStream`.
"""

from __future__ import annotations

from repro.core.events import Event, GraphEvent, marker, pause, speed
from repro.core.stream import GraphStream

__all__ = [
    "with_pause",
    "with_burst",
    "with_wave",
    "with_ramp",
    "with_periodic_markers",
]


def _insert_at_graph_positions(
    stream: GraphStream, insertions: dict[int, list[Event]]
) -> GraphStream:
    """Insert control events before the i-th graph event (0-based).

    Positions beyond the last graph event append at the end.
    """
    result: list[Event] = []
    graph_index = 0
    for event in stream:
        if isinstance(event, GraphEvent):
            for inserted in insertions.get(graph_index, ()):  # before i-th
                result.append(inserted)
            graph_index += 1
        result.append(event)
    for position in sorted(insertions):
        if position >= graph_index:
            result.extend(insertions[position])
    return GraphStream(result)


def with_pause(
    stream: GraphStream, after_events: int, seconds: float
) -> GraphStream:
    """Insert a pause after the first ``after_events`` graph events."""
    if after_events < 0:
        raise ValueError(f"after_events must be >= 0, got {after_events}")
    return _insert_at_graph_positions(
        stream, {after_events: [pause(seconds)]}
    )


def with_burst(
    stream: GraphStream,
    start_event: int,
    burst_events: int,
    factor: float = 4.0,
) -> GraphStream:
    """A short high-rate burst: ``factor``× speed for ``burst_events``.

    The base rate (factor 1) is restored afterwards.
    """
    if start_event < 0 or burst_events <= 0:
        raise ValueError("start_event must be >= 0 and burst_events > 0")
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    return _insert_at_graph_positions(
        stream,
        {
            start_event: [speed(factor)],
            start_event + burst_events: [speed(1.0)],
        },
    )


def with_wave(
    stream: GraphStream,
    period_events: int,
    high_factor: float = 2.0,
    low_factor: float = 0.5,
) -> GraphStream:
    """A square wave: alternating high/low rate every ``period_events``.

    The stream starts in the high phase; a final ``SPEED 1`` restores
    the base rate at the end.
    """
    if period_events <= 0:
        raise ValueError(f"period_events must be positive, got {period_events}")
    if high_factor <= 0 or low_factor <= 0:
        raise ValueError("factors must be positive")
    total = sum(1 for __ in stream.graph_events())
    insertions: dict[int, list[Event]] = {}
    high = True
    for position in range(0, total, period_events):
        insertions[position] = [speed(high_factor if high else low_factor)]
        high = not high
    insertions.setdefault(total, []).append(speed(1.0))
    return _insert_at_graph_positions(stream, insertions)


def with_periodic_markers(
    stream: GraphStream, every: int, prefix: str = "wm"
) -> GraphStream:
    """Insert watermark markers after every ``every`` graph events.

    Markers are labelled ``{prefix}-{count}`` where count is the number
    of graph events preceding the marker.  Together with
    :func:`repro.core.analysis.reflection_latency_profile` this yields
    the latency *distribution* of section 4.3 (e.g. the p99 result
    latency) instead of a single watermark sample.
    """
    if every <= 0:
        raise ValueError(f"every must be positive, got {every}")
    total = sum(1 for __ in stream.graph_events())
    insertions = {
        position: [marker(f"{prefix}-{position}")]
        for position in range(every, total + 1, every)
    }
    return _insert_at_graph_positions(stream, insertions)


def with_ramp(
    stream: GraphStream,
    steps: int,
    start_factor: float = 1.0,
    end_factor: float = 4.0,
) -> GraphStream:
    """A stepwise ramp from ``start_factor`` to ``end_factor``.

    The stream is divided into ``steps`` equal phases; each phase runs
    at a linearly interpolated speed factor.  Useful for the "gradually
    increasing the input stream rate" evaluation goal of section 3.3.
    """
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    if start_factor <= 0 or end_factor <= 0:
        raise ValueError("factors must be positive")
    total = sum(1 for __ in stream.graph_events())
    if not total:
        return GraphStream(list(stream))
    insertions: dict[int, list[Event]] = {}
    for step in range(steps):
        position = (total * step) // steps
        if steps == 1:
            factor = start_factor
        else:
            factor = start_factor + (end_factor - start_factor) * step / (
                steps - 1
            )
        insertions.setdefault(position, []).append(speed(factor))
    return _insert_at_graph_positions(stream, insertions)
