"""Concurrent streaming from multiple event sources (paper section 3.2).

"A single, ordered input stream emitted by multiple event sources
requires constant coordination ...  As a result, a stream is only
allowed to have a single event source in our model.  In order to enable
parallelism and horizontal scaling of input workload, we opt for
concurrent streaming of disjunct streams by different event sources;
multiple independent graphs are provided and changed concurrently."

This module implements that scaling pattern: :func:`offset_stream`
relabels a stream's vertex ids into a disjoint id range,
:func:`disjoint_streams` builds N independent streams from the same
rules, and :class:`MultiReplayHarness` replays them concurrently into
one platform from N simulated replayer instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.collector import collect_records
from repro.core.events import EdgeId, Event, GraphEvent
from repro.core.generator import GeneratorRules, StreamGenerator
from repro.core.harness import HarnessConfig
from repro.core.loggers import SimPeriodicLogger
from repro.core.probes import CpuUtilizationProbe, NativeMetricsProbe
from repro.core.resultlog import ResultLog
from repro.core.stream import GraphStream
from repro.core.tracing import TraceClock, Tracer
from repro.platforms.base import Platform
from repro.sim.kernel import Simulation
from repro.sim.replay import SimulatedReplayer

__all__ = ["offset_stream", "disjoint_streams", "MultiReplayHarness", "MultiRunResult"]

#: Default id distance between sources; far above any realistic stream.
DEFAULT_ID_STRIDE = 10_000_000


def offset_stream(stream: GraphStream, offset: int) -> GraphStream:
    """Relabel every vertex id in ``stream`` by ``+offset``.

    Markers and control events pass through unchanged.  Raises
    :class:`ValueError` for negative offsets (id collisions otherwise).
    """
    if offset < 0:
        raise ValueError(f"offset must be >= 0, got {offset}")
    if offset == 0:
        return GraphStream(list(stream))
    relabeled: list[Event] = []
    for event in stream:
        if isinstance(event, GraphEvent):
            if event.event_type.is_vertex_event:
                entity: int | EdgeId = event.vertex_id + offset
            else:
                edge = event.edge_id
                entity = EdgeId(edge.source + offset, edge.target + offset)
            relabeled.append(
                GraphEvent(event.event_type, entity, event.payload)
            )
        else:
            relabeled.append(event)
    return GraphStream(relabeled)


def disjoint_streams(
    rules_factory,
    sources: int,
    rounds: int,
    seed: int = 0,
    id_stride: int = DEFAULT_ID_STRIDE,
    emit_phase_marker: bool = True,
) -> list[GraphStream]:
    """N independent streams over disjoint vertex-id ranges.

    Each source gets its own :class:`GeneratorRules` instance (from
    ``rules_factory``), its own derived seed, and the id range
    ``[i * id_stride, (i+1) * id_stride)``.
    """
    if sources <= 0:
        raise ValueError(f"sources must be positive, got {sources}")
    if id_stride <= 0:
        raise ValueError(f"id_stride must be positive, got {id_stride}")
    streams = []
    for index in range(sources):
        generator = StreamGenerator(
            rules_factory(),
            rounds=rounds,
            seed=seed * 7919 + index,
            emit_phase_marker=emit_phase_marker,
        )
        streams.append(offset_stream(generator.generate(), index * id_stride))
    return streams


@dataclass(slots=True)
class MultiRunResult:
    """Outcome of a concurrent multi-source replay."""

    log: ResultLog
    duration: float
    events_emitted_per_source: list[int]
    events_processed: int
    drained: bool
    #: The run's tracer when ``HarnessConfig.trace`` was set, else None.
    tracer: Tracer | None = None

    @property
    def events_emitted(self) -> int:
        return sum(self.events_emitted_per_source)

    @property
    def aggregate_offered_rate(self) -> float:
        return self.events_emitted / self.duration if self.duration else 0.0


class MultiReplayHarness:
    """Replays several disjoint streams concurrently into one platform.

    Each stream gets its own :class:`SimulatedReplayer` (source names
    ``replayer-0`` ... ``replayer-N-1``) running at ``config.rate``, so
    the aggregate offered load is ``N * rate`` — the horizontal input
    scaling of section 3.2.  Metric collection matches the
    single-stream harness for levels 0 and 1.
    """

    def __init__(
        self,
        platform: Platform,
        streams: list[GraphStream],
        config: HarnessConfig,
    ):
        if not streams:
            raise ValueError("need at least one stream")
        if config.level > platform.evaluation_level:
            raise ValueError(
                f"requested level {config.level} exceeds platform level "
                f"{platform.evaluation_level}"
            )
        self.platform = platform
        self.streams = streams
        self.config = config

    def run(self) -> MultiRunResult:
        sim = Simulation()
        platform = self.platform
        config = self.config
        platform.attach(sim)

        # One tracer is shared by all sources: per-source span ids are
        # local stream positions (disambiguated by the replayer's source
        # name as span category), while the emitted/ingested counters
        # aggregate across sources, so accounting closes for the whole
        # concurrent replay.
        tracer: Tracer | None = None
        if config.trace:
            tracer = Tracer(
                clock=TraceClock.for_simulation(sim),
                sample_every=config.trace_sample_every,
                metadata={
                    "mode": "simulated-multistream",
                    "platform": platform.name,
                    "sources": len(self.streams),
                },
            )
        platform.attach_tracer(tracer)

        replayers = [
            SimulatedReplayer(
                sim,
                stream,
                platform,
                rate=config.rate,
                retry_interval=config.retry_interval,
                rate_sample_interval=config.log_interval,
                source_name=f"replayer-{index}",
                tracer=tracer,
            )
            for index, stream in enumerate(self.streams)
        ]

        loggers = [
            SimPeriodicLogger(
                sim,
                config.log_interval,
                CpuUtilizationProbe(platform, sim),
                name="cpu-probe",
                tracer=tracer,
            )
        ]
        if config.level >= 1:
            loggers.append(
                SimPeriodicLogger(
                    sim,
                    config.log_interval,
                    NativeMetricsProbe(platform, sim),
                    name="native-metrics",
                    tracer=tracer,
                )
            )

        for logger in loggers:
            logger.start()
        for replayer in replayers:
            replayer.start()

        state = {"stream_ended": False, "drained": False, "deadline": None}

        def supervise() -> None:
            all_finished = all(r.finished for r in replayers)
            if (
                config.max_duration is not None
                and sim.now >= config.max_duration
                and not all_finished
            ):
                for replayer in replayers:
                    replayer.stop()
            if all_finished and not state["stream_ended"]:
                state["stream_ended"] = True
                platform.on_stream_end()
                state["deadline"] = sim.now + config.drain_grace
            if state["stream_ended"]:
                if platform.is_drained:
                    state["drained"] = True
                    for logger in loggers:
                        logger.stop()
                    platform.shutdown()
                    return
                if state["deadline"] is not None and sim.now >= state["deadline"]:
                    for logger in loggers:
                        logger.stop()
                    platform.shutdown()
                    return
            sim.schedule(config.drain_poll_interval, supervise)

        sim.schedule(config.drain_poll_interval, supervise)
        sim.run()

        log = collect_records(
            *(replayer.records for replayer in replayers),
            *(logger.records for logger in loggers),
            tracer.to_records() if tracer is not None else [],
        )
        return MultiRunResult(
            log=log,
            duration=sim.now,
            events_emitted_per_source=[r.emitted for r in replayers],
            events_processed=platform.events_processed(),
            drained=state["drained"],
            tracer=tracer,
        )
