"""Transports and connectors binding the replayer to a system under test
(paper sections 3.3 and 4.1).

The framework's generic streaming interface supports different modes of
operation, adapted by platform-specific connectors.  For live
(wall-clock) replays three transports are provided:

* :class:`CallbackTransport` — in-process delivery to a Python callable
  (the "platform-specific connector plugged into the replayer");
* :class:`PipeTransport` — newline-delimited CSV lines onto a file
  descriptor / file object (the paper's STDOUT→STDIN piping);
* :class:`TcpTransport` — the same lines over a TCP socket, where the
  kernel's flow control provides backpressure (section 3.2);
* :class:`ShmTransport` — batches through a
  :class:`~repro.core.shm.ShmRing` shared-memory ring (one producer,
  one consumer, same machine): the zero-syscall local path, where
  backpressure is the ring filling up.

Matching receivers (:class:`PipeReceiver`, :class:`TcpReceiver`,
:class:`ShmReceiver`) count arriving events per time window; they
implement the measurement side of the replayer benchmark (Figure 3a).
"""

from __future__ import annotations

import io
import os
import socket
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import ConnectorError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tracing import TraceClock, Tracer

__all__ = [
    "Transport",
    "CallbackTransport",
    "PipeTransport",
    "TcpTransport",
    "ShmTransport",
    "TransportSpec",
    "PipeSpec",
    "TcpSpec",
    "ShmSpec",
    "WindowCounter",
    "PipeReceiver",
    "TcpReceiver",
    "ShmReceiver",
    "SOCKET_BUFFER_BYTES",
]

#: Default SO_SNDBUF/SO_RCVBUF request for the TCP transport pair:
#: room for ~180 batch_size=256 binary frames (or ~45k CSV lines), so
#: a whole pacing window of batches is in flight before the kernel
#: applies backpressure.  The kernel clamps to its rmem/wmem limits.
SOCKET_BUFFER_BYTES = 1 << 20


class Transport:
    """Interface: deliver serialized event lines to a system under test."""

    def send(self, line: str) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def send_many(self, lines: Iterable[str]) -> None:
        """Deliver a batch of lines (the replayer's batched fast path).

        The default delegates to :meth:`send` per line; concrete
        transports override this with a single buffered write so a
        whole batch costs one I/O operation.
        """
        for line in lines:
            self.send(line)

    def send_raw(self, data: "bytes | memoryview", count: int) -> None:
        """Deliver ``count`` pre-serialized, newline-terminated lines.

        The sharded replayer's zero-copy path: ``data`` holds the exact
        wire bytes of whole lines (a :class:`~repro.core.codec.RawBatch`
        slice).  The default decodes and delegates to :meth:`send_many`
        so wrappers (chaos, retry, tracing) and in-process transports
        keep their per-line semantics; byte-stream transports override
        this with a verbatim write.
        """
        text = bytes(data).decode("utf-8")
        lines = text.split("\n")
        if lines and not lines[-1]:
            lines.pop()
        self.send_many(lines)

    def send_frame(self, frame: "bytes | memoryview", count: int) -> None:
        """Deliver one binary frame of ``count`` records (header included).

        The binary-wire sibling of :meth:`send_raw`: ``frame`` holds the
        exact bytes of one :mod:`repro.core.binfmt` frame.  Byte-stream
        transports put it on the wire verbatim (prefixing the stream
        magic on the first frame of a connection, so the peer can
        autodetect the format); the default decodes the frame and
        delegates to :meth:`send_many` as CSV lines, which keeps
        in-process transports and line-oriented targets working
        unchanged when a binary source feeds them.
        """
        from repro.core import binfmt, codec

        self.send_many(codec.format_lines(binfmt.decode_frame_events(frame)))

    def close(self) -> None:
        """Release resources; further sends raise :class:`ConnectorError`."""


class CallbackTransport(Transport):
    """Delivers each line to an in-process callable."""

    def __init__(self, callback: Callable[[str], None]):
        self._callback = callback
        self._closed = False

    def send(self, line: str) -> None:
        if self._closed:
            raise ConnectorError("transport is closed")
        self._callback(line)

    def send_many(self, lines: Iterable[str]) -> None:
        if self._closed:
            raise ConnectorError("transport is closed")
        callback = self._callback
        for line in lines:
            callback(line)

    def close(self) -> None:
        self._closed = True


class PipeTransport(Transport):
    """Writes newline-terminated lines to a file object or fd.

    Writes are buffered and flushed every ``flush_every`` lines to keep
    per-event overhead low at high rates (the replayer's write path
    must not become the bottleneck being measured).
    """

    def __init__(self, target, flush_every: int = 512, owns: bool | None = None):
        if flush_every <= 0:
            raise ValueError(f"flush_every must be positive, got {flush_every}")
        if isinstance(target, int):
            self._file = os.fdopen(target, "w", encoding="utf-8", buffering=1 << 16)
            self._owns = True if owns is None else owns
        else:
            self._file = target
            self._owns = False if owns is None else owns
        self._flush_every = flush_every
        self._since_flush = 0
        self._closed = False
        self._magic_sent = False

    def send(self, line: str) -> None:
        if self._closed:
            raise ConnectorError("transport is closed")
        try:
            self._file.write(line)
            self._file.write("\n")
        except (OSError, ValueError) as exc:
            raise ConnectorError(f"pipe write failed: {exc}") from exc
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._file.flush()
            self._since_flush = 0

    def send_many(self, lines: Iterable[str]) -> None:
        if self._closed:
            raise ConnectorError("transport is closed")
        if not isinstance(lines, list):
            lines = list(lines)
        if not lines:
            return
        try:
            # One buffered write for the whole batch.
            self._file.write("\n".join(lines) + "\n")
        except (OSError, ValueError) as exc:
            raise ConnectorError(f"pipe write failed: {exc}") from exc
        self._since_flush += len(lines)
        if self._since_flush >= self._flush_every:
            self._file.flush()
            self._since_flush = 0

    def send_raw(self, data: "bytes | memoryview", count: int) -> None:
        """Write pre-serialized line bytes verbatim (zero-copy path).

        Bytes go to the text file's underlying binary buffer; targets
        without one (e.g. ``StringIO``) fall back to the decoding
        default.  A missing final newline is appended so the stream
        stays line-delimited.
        """
        if self._closed:
            raise ConnectorError("transport is closed")
        buffer = getattr(self._file, "buffer", None)
        if buffer is None:
            super().send_raw(data, count)
            return
        try:
            # Order any buffered text writes before the raw bytes.
            self._file.flush()
            buffer.write(data)
            if len(data) and data[-1] != 0x0A:
                buffer.write(b"\n")
        except (OSError, ValueError) as exc:
            raise ConnectorError(f"pipe write failed: {exc}") from exc
        self._since_flush += count
        if self._since_flush >= self._flush_every:
            buffer.flush()
            self._since_flush = 0

    def send_frame(self, frame: "bytes | memoryview", count: int) -> None:
        """Write one binary frame verbatim (no newline framing).

        The first frame of the connection is preceded by the binary
        stream magic so the peer (receiver or file reader) autodetects
        the format.  Targets without a binary buffer (e.g. ``StringIO``)
        fall back to the decoding default.
        """
        if self._closed:
            raise ConnectorError("transport is closed")
        buffer = getattr(self._file, "buffer", None)
        if buffer is None:
            super().send_frame(frame, count)
            return
        try:
            # Order any buffered text writes before the raw bytes.
            self._file.flush()
            if not self._magic_sent:
                from repro.core.binfmt import MAGIC

                buffer.write(MAGIC)
                self._magic_sent = True
            buffer.write(frame)
        except (OSError, ValueError) as exc:
            raise ConnectorError(f"pipe write failed: {exc}") from exc
        self._since_flush += count
        if self._since_flush >= self._flush_every:
            buffer.flush()
            self._since_flush = 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.flush()
        except (OSError, ValueError):
            pass
        if self._owns:
            # close() flushes again internally; a broken pipe there must
            # still release the fd (close always does, even on error).
            try:
                self._file.close()
            except OSError:
                pass


class TcpTransport(Transport):
    """Sends newline-terminated lines over a TCP connection.

    The socket's send buffer plus TCP flow control provide natural
    backpressure: when the receiver cannot keep up, ``send`` blocks.
    """

    def __init__(
        self,
        host: str,
        port: int,
        flush_every: int = 512,
        send_buffer: int | None = SOCKET_BUFFER_BYTES,
    ):
        if flush_every <= 0:
            raise ValueError(f"flush_every must be positive, got {flush_every}")
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            raise ConnectorError(f"cannot connect to {host}:{port}: {exc}") from exc
        try:
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if send_buffer:
                # Size SO_SNDBUF to whole batch windows: with the
                # default 16-page buffer a 6KB frame burst blocks after
                # ~10 batches, serializing sender and receiver on a
                # single-CPU machine; a deep buffer lets each side run
                # long slices (see EXPERIMENTS.md, transport matrix).
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, send_buffer
                )
            self._file = sock.makefile("w", encoding="utf-8", buffering=1 << 16)
        except OSError as exc:
            # The connection succeeded but configuring it did not: the
            # fd is ours until handed to self, so release it here.
            sock.close()
            raise ConnectorError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._socket = sock
        self._flush_every = flush_every
        self._since_flush = 0
        self._closed = False
        self._magic_sent = False

    def send(self, line: str) -> None:
        if self._closed:
            raise ConnectorError("transport is closed")
        try:
            self._file.write(line)
            self._file.write("\n")
        except OSError as exc:
            raise ConnectorError(f"tcp write failed: {exc}") from exc
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._file.flush()
            self._since_flush = 0

    def send_many(self, lines: Iterable[str]) -> None:
        if self._closed:
            raise ConnectorError("transport is closed")
        if not isinstance(lines, list):
            lines = list(lines)
        if not lines:
            return
        try:
            # One buffered write for the whole batch; the file object
            # hands large batches to sendall in a single syscall.
            self._file.write("\n".join(lines) + "\n")
        except OSError as exc:
            raise ConnectorError(f"tcp write failed: {exc}") from exc
        self._since_flush += len(lines)
        if self._since_flush >= self._flush_every:
            self._file.flush()
            self._since_flush = 0

    def send_raw(self, data: "bytes | memoryview", count: int) -> None:
        """Send pre-serialized line bytes straight through the socket.

        The zero-copy path: after flushing any buffered text writes the
        batch goes to ``sendall`` verbatim (one syscall for the whole
        run).  A missing final newline is appended so the stream stays
        line-delimited.
        """
        if self._closed:
            raise ConnectorError("transport is closed")
        try:
            self._file.flush()
            self._socket.sendall(data)
            if len(data) and data[-1] != 0x0A:
                self._socket.sendall(b"\n")
        except OSError as exc:
            raise ConnectorError(f"tcp write failed: {exc}") from exc

    def send_frame(self, frame: "bytes | memoryview", count: int) -> None:
        """Send one binary frame verbatim through the socket.

        The first frame of the connection is preceded by the binary
        stream magic so a frame-aware receiver autodetects the format
        and counts records from frame headers instead of newlines.
        """
        if self._closed:
            raise ConnectorError("transport is closed")
        try:
            self._file.flush()
            if not self._magic_sent:
                from repro.core.binfmt import MAGIC

                self._socket.sendall(MAGIC)
                self._magic_sent = True
            self._socket.sendall(frame)
        except OSError as exc:
            raise ConnectorError(f"tcp write failed: {exc}") from exc

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Flush and close in separate try blocks: a failing flush (peer
        # gone) must not leave the file object — and its fd — open.
        try:
            self._file.flush()
        except OSError:
            pass
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass


class ShmTransport(Transport):
    """Sends batches through a shared-memory ring (producer side).

    The zero-syscall local transport: each batch is one length-prefixed
    slot copied straight into the ring's arena — no write syscall, no
    kernel buffer, no second copy on the consumer side (the receiver
    reads the payload in place).  ``send_raw``/``send_frame`` accept
    :class:`memoryview` slices of the shard file's mmap, so the only
    copy on the whole path is the single mmap→arena ``memcpy``.

    Sends are buffered: slots accumulate locally and are written to the
    ring ``flush_every`` slots at a time through
    :meth:`~repro.core.shm.RingProducer.push_many`, which amortizes the
    space check and head publication over the whole run — the same
    batching discipline as :class:`PipeTransport`'s ``flush_every``,
    and what keeps the per-slot cost below the pipe's.  :meth:`close`
    flushes.

    Backpressure is the ring filling up: a flush blocks in a bounded
    spin-then-sleep until the consumer frees space, and raises
    :class:`ConnectorError` if the consumer closed or ``stall_timeout``
    elapses — the same contract as a TCP send blocking on a full
    socket buffer.  Exactly one producer per ring (SPSC); the sharded
    replayer uses one ring per worker.

    On :meth:`close` the producer pushes a best-effort EOF slot (so a
    draining receiver finishes promptly), marks the producer side
    closed, and drops its mapping.  The ring segment itself is owned —
    created and unlinked — by the :class:`ShmReceiver`; a transport
    never unlinks, so a crashing worker cannot strand or double-free
    the segment.
    """

    def __init__(
        self,
        ring,
        stall_timeout: float = 30.0,
        flush_every: int = 64,
    ):
        from repro.core import shm

        if flush_every <= 0:
            raise ConnectorError(
                f"flush_every must be positive, got {flush_every}"
            )
        if isinstance(ring, str):
            ring = shm.ShmRing.attach(ring)
        self._ring = ring
        self._producer = shm.RingProducer(ring, stall_timeout=stall_timeout)
        self._flush_every = flush_every
        self._pending: list[tuple] = []
        self._pending_kind = shm.SLOT_RAW
        self._closed = False

    def _append(self, payload, count: int, kind: int) -> None:
        if self._closed:
            raise ConnectorError("transport is closed")
        if self._pending and self._pending_kind != kind:
            self.flush()
        self._pending_kind = kind
        self._pending.append((payload, count))
        if len(self._pending) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered slots to the ring (blocking on backpressure)."""
        if self._pending:
            items = self._pending
            self._pending = []
            self._producer.push_many(items, self._pending_kind)

    def send(self, line: str) -> None:
        from repro.core.shm import SLOT_RAW

        self._append(line.encode("utf-8") + b"\n", 1, SLOT_RAW)

    def send_many(self, lines: Iterable[str]) -> None:
        if not isinstance(lines, list):
            lines = list(lines)
        if not lines:
            if self._closed:
                raise ConnectorError("transport is closed")
            return
        from repro.core.shm import SLOT_RAW

        payload = ("\n".join(lines) + "\n").encode("utf-8")
        self._append(payload, len(lines), SLOT_RAW)

    def send_raw(self, data: "bytes | memoryview", count: int) -> None:
        from repro.core.shm import SLOT_RAW

        self._append(data, count, SLOT_RAW)

    def send_frame(self, frame: "bytes | memoryview", count: int) -> None:
        from repro.core.shm import SLOT_FRAME

        self._append(frame, count, SLOT_FRAME)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            try:
                self.flush()
            finally:
                # Flag even if the flush failed: a draining receiver
                # must see the producer is done once the ring empties,
                # EOF slot or not (ring wedged full, consumer gone).
                self._ring.set_producer_closed()
            self._producer.push_eof()
        except (ConnectorError, ValueError):
            # Consumer gone or mapping already invalid: nothing left to
            # signal — the receiver's producer_closed/stop paths cover
            # this side's disappearance.
            pass
        finally:
            self._ring.close()


class TransportSpec:
    """Picklable description of a transport, built inside a worker.

    Live transports hold sockets and file objects that cannot cross a
    process boundary; the sharded replayer instead ships a *spec* to
    each worker, which calls :meth:`build` after the fork/spawn to open
    its own connection.  Specs are frozen dataclasses so they pickle
    under both start methods.
    """

    def build(self) -> Transport:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class PipeSpec(TransportSpec):
    """Spec for a :class:`PipeTransport`.

    ``target`` may be a path (opened for write in the worker, so give
    each shard its own file), ``"-"`` for the worker's stdout, or an
    inherited file descriptor (valid only under the ``fork`` start
    method).
    """

    target: str | int = "-"
    append: bool = False
    flush_every: int = 512

    def build(self) -> PipeTransport:
        if isinstance(self.target, int):
            return PipeTransport(self.target, flush_every=self.flush_every)
        if self.target == "-":
            return PipeTransport(sys.stdout, flush_every=self.flush_every)
        handle = open(
            Path(self.target),
            "a" if self.append else "w",
            encoding="utf-8",
            buffering=1 << 16,
        )
        try:
            return PipeTransport(handle, flush_every=self.flush_every, owns=True)
        except BaseException:
            # e.g. flush_every validation: the transport never took
            # ownership, so the fd is still ours to release.
            handle.close()
            raise


@dataclass(frozen=True, slots=True)
class TcpSpec(TransportSpec):
    """Spec for a :class:`TcpTransport` connection to ``host:port``."""

    host: str = "127.0.0.1"
    port: int = 0
    flush_every: int = 512
    send_buffer: int | None = SOCKET_BUFFER_BYTES

    def build(self) -> TcpTransport:
        return TcpTransport(
            self.host,
            self.port,
            flush_every=self.flush_every,
            send_buffer=self.send_buffer,
        )


@dataclass(frozen=True, slots=True)
class ShmSpec(TransportSpec):
    """Spec for a :class:`ShmTransport` producer attaching to ``name``.

    The ring is created by the receiving side (a
    :class:`ShmReceiver`, which owns the segment's unlink); the spec
    only carries the segment name across the process boundary.  One
    ring admits exactly one producer — the sharded replayer passes one
    spec per worker.
    """

    name: str = ""
    stall_timeout: float = 30.0

    def build(self) -> "ShmTransport":
        if not self.name:
            raise ConnectorError("ShmSpec needs a ring segment name")
        return ShmTransport(self.name, stall_timeout=self.stall_timeout)


@dataclass(frozen=True, slots=True)
class _Window:
    start: float
    count: int

    @property
    def rate(self) -> float:
        return self.count  # windows are 1 second by construction below


class WindowCounter:
    """Counts arriving events per fixed time window (receiver side).

    Window boundaries are stamped on the run's unified
    :class:`~repro.core.tracing.TraceClock` (the process-wide shared
    clock by default), so receiver-side series share an epoch with the
    replayer's and the live probes' series.
    """

    def __init__(
        self, window_seconds: float = 1.0, clock: "TraceClock | None" = None
    ):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if clock is None:
            from repro.core.tracing import shared_clock

            clock = shared_clock()
        self.window_seconds = window_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: list[tuple[float, int]] = []  # guarded-by: self._lock
        self._current_start: float | None = None  # guarded-by: self._lock
        self._current_count = 0  # guarded-by: self._lock
        self.total = 0  # guarded-by: self._lock

    def record(self, count: int = 1) -> None:
        now = self._clock.now()
        with self._lock:
            self.total += count
            if self._current_start is None:
                self._current_start = now
            while now - self._current_start >= self.window_seconds:
                self._windows.append((self._current_start, self._current_count))
                self._current_start += self.window_seconds
                self._current_count = 0
            self._current_count += count

    def rates(self) -> list[float]:
        """Per-window observed rates (events/second), completed windows."""
        with self._lock:
            return [
                count / self.window_seconds for __, count in self._windows
            ]


# hot-path
def _count_stream(file, record: Callable[[int], None]) -> None:
    """Count events arriving on a stream, autodetecting the format.

    A stream leading with the :mod:`repro.core.binfmt` magic is a
    binary frame wire: record counts come straight from the frame
    headers.  Anything else is the newline-delimited CSV wire: events
    are counted by newlines in fixed-size chunks (a final line without
    a trailing newline still counts).  ``record(count)`` is invoked in
    batches of at most ~256 lines / one frame, matching the previous
    per-256-lines recording granularity.

    Works with binary and text file objects alike; text reads in
    universal-newline mode normalise ``\\r\\n`` before counting, so the
    totals match the old line-iteration loop exactly.
    """
    from repro.core import binfmt

    first = file.read(len(binfmt.MAGIC))
    if isinstance(first, bytes) and first == binfmt.MAGIC:
        for count in binfmt.iter_wire_frame_counts(file):
            record(count)
        return
    newline = "\n" if isinstance(first, str) else b"\n"
    batch = first.count(newline)
    last = first
    while True:
        chunk = file.read(1 << 16)
        if not chunk:
            break
        batch += chunk.count(newline)
        last = chunk
        if batch >= 256:
            record(batch)
            batch = 0
    if last and not last.endswith(newline):
        batch += 1
    if batch:
        record(batch)


class PipeReceiver:
    """Reads lines from a readable file object / fd on a thread.

    Counts events into a :class:`WindowCounter`; reading stops at EOF.
    Usable as a context manager: ``with PipeReceiver(fd) as receiver:``
    starts the reader thread and guarantees join-and-close on exit,
    even when the body raises.

    With a :class:`~repro.core.tracing.Tracer` the receiver records the
    *ingest* side of the pipeline: an exact ``ingested`` count per
    arriving batch plus sampled ``ingested`` spans whose event ids are
    assigned in arrival order (matching the replayer's emit ids, since
    pipe delivery is ordered).
    """

    def __init__(
        self,
        source,
        window_seconds: float = 1.0,
        clock: "TraceClock | None" = None,
        tracer: "Tracer | None" = None,
    ):
        if isinstance(source, int):
            # Binary mode: the wire may carry binary frames, and CSV
            # line counting needs no decoding.
            self._file = os.fdopen(source, "rb", buffering=1 << 16)
            self._owns = True
        else:
            self._file = source
            self._owns = False
        self.counter = WindowCounter(window_seconds, clock=clock)
        self._tracer = tracer
        self._closed = False
        self._thread = threading.Thread(target=self._read_loop, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _record_batch(self, first_id: int, count: int) -> None:
        self.counter.record(count)
        tracer = self._tracer
        if tracer is not None:
            tracer.count("ingested", count)
            if tracer.sample_batch(first_id, count):
                tracer.instant(
                    "ingested", "receiver", event_id=first_id, count=count
                )

    def _read_loop(self) -> None:
        received = 0

        def record(count: int) -> None:
            nonlocal received
            self._record_batch(received, count)
            received += count

        try:
            _count_stream(self._file, record)
        except ValueError:
            # File closed under the reader by close(): stop counting.
            pass

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ConnectorError("pipe receiver did not finish in time")

    def close(self) -> None:
        """Close the file the receiver owns (constructed from a raw fd).

        Safe to call repeatedly; files passed in as objects stay open
        (their owner closes them).  While the reader thread is still
        blocked in a read this is a no-op — closing a buffered file
        under an active reader deadlocks on its internal lock; the
        writer closing its end (EOF) is what unblocks the reader.
        """
        if self._closed or self._thread.is_alive():
            return
        self._closed = True
        if self._owns:
            try:
                self._file.close()
            except OSError:
                pass

    def __enter__(self) -> "PipeReceiver":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if self._thread.is_alive():
                self._thread.join(timeout=10.0)
        finally:
            self.close()


class TcpReceiver:
    """Accepts TCP connections and counts received lines.

    Binds an ephemeral local port (``port`` attribute) so benchmarks
    need no fixed port assignments.  The accept loop polls with a
    timeout and honours :meth:`close`, so a receiver whose client never
    connects can always be shut down instead of blocking forever.
    Usable as a context manager like :class:`PipeReceiver`.

    With ``max_connections > 1`` (the sharded replayer's fan-in) the
    receiver keeps accepting until that many clients have connected or
    :meth:`close` is called; each connection is read on its own thread
    and all connections count into the one shared
    :class:`WindowCounter`.
    """

    #: Poll period of the accept loop; bounds close() latency.
    accept_poll_seconds = 0.2

    def __init__(
        self,
        window_seconds: float = 1.0,
        host: str = "127.0.0.1",
        clock: "TraceClock | None" = None,
        tracer: "Tracer | None" = None,
        max_connections: int = 1,
    ):
        if max_connections <= 0:
            raise ValueError(
                f"max_connections must be positive, got {max_connections}"
            )
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            # Accepted sockets inherit the listener's receive buffer:
            # sized to hold a whole burst of batch frames so a sender
            # saturating the loopback never stalls on a 64KB default
            # window (the mirror of TcpTransport's SO_SNDBUF).
            if SOCKET_BUFFER_BYTES:
                try:
                    server.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_RCVBUF,
                        SOCKET_BUFFER_BYTES,
                    )
                except OSError:  # pragma: no cover - exotic platforms
                    pass
            server.bind((host, 0))
            server.listen(max_connections)
            server.settimeout(self.accept_poll_seconds)
            self.port = server.getsockname()[1]
        except BaseException:
            # bind/listen can fail (port exhaustion, bad host); nothing
            # owns the socket yet, so close it before re-raising.
            server.close()
            raise
        self._server = server
        self.host = host
        self.counter = WindowCounter(window_seconds, clock=clock)
        self._tracer = tracer
        self._max_connections = max_connections
        self._id_lock = threading.Lock()
        self._next_id = 0  # guarded-by: self._id_lock
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _accept(self) -> socket.socket | None:
        """Accept with a timeout, re-checking the stop flag between
        polls; returns None when stopped before any client arrived."""
        while not self._stop.is_set():
            try:
                connection, __ = self._server.accept()
                return connection
            except socket.timeout:
                continue
            except OSError:
                # Server socket closed under us by close().
                return None
        # Stopped: drain a connection already completed in the listen
        # backlog — its client connected (and may have sent everything
        # and closed) before we got to accept it; dropping it here
        # would silently lose counted events.
        try:
            self._server.settimeout(0)
            connection, __ = self._server.accept()
            return connection
        except OSError:  # includes BlockingIOError: backlog empty
            return None

    def _serve(self) -> None:
        readers: list[threading.Thread] = []
        accepted = 0
        while accepted < self._max_connections:
            connection = self._accept()
            if connection is None:
                break
            accepted += 1
            thread = threading.Thread(
                target=self._read_connection, args=(connection,), daemon=True
            )
            thread.start()
            readers.append(thread)
        try:
            self._server.close()
        except OSError:
            pass
        for thread in readers:
            thread.join()

    def _read_connection(self, connection: socket.socket) -> None:
        with connection:
            with connection.makefile("rb", buffering=1 << 16) as reader:
                _count_stream(reader, self._record_batch)

    def _record_batch(self, count: int) -> None:
        # Arrival-order ids are assigned from one shared counter so
        # multi-connection ingest traces stay globally unique.
        with self._id_lock:
            first_id = self._next_id
            self._next_id += count
        self.counter.record(count)
        tracer = self._tracer
        if tracer is not None:
            tracer.count("ingested", count)
            if tracer.sample_batch(first_id, count):
                tracer.instant(
                    "ingested", "receiver", event_id=first_id, count=count
                )

    def join(self, timeout: float | None = None) -> None:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ConnectorError("tcp receiver did not finish in time")

    def close(self) -> None:
        """Stop accepting, join the serve thread, close the server socket.

        Safe whether or not a client ever connected, and safe to call
        repeatedly.  Connections already completed in the listen
        backlog are drained and read to EOF before the thread exits,
        so no counted events are lost to shutdown timing.
        """
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=max(10.0, 2 * self.accept_poll_seconds))
        try:
            self._server.close()
        except OSError:
            pass

    def __enter__(self) -> "TcpReceiver":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShmReceiver:
    """Owns shared-memory rings and counts the slots producers push.

    The measurement peer of :class:`ShmTransport`: creates
    ``max_producers`` rings (one SPSC ring per producer — the sharded
    replayer's fan-in), drains each on its own thread into one shared
    :class:`WindowCounter`, and owns the segments' lifecycle — every
    ring is closed *and* unlinked exactly once in :meth:`close`, no
    matter how producers exit.  A producer that crashes mid-stream (or
    never attaches) cannot leak a segment: the receiver outlives it
    and unlinks unconditionally; a producer that outlives the receiver
    keeps its mapping (POSIX unlink semantics) and gets
    :class:`ConnectorError` from its next push via the consumer-closed
    flag.

    Counts are independent, not trusted: each slot's record count is
    re-derived from its payload (frame header / newline count) and
    must agree with its descriptor — see
    :meth:`~repro.core.shm.RingConsumer.drain_counts`.  Corruption
    surfaces as a typed :class:`~repro.errors.StreamFormatError` on
    the ``error`` attribute.

    ``sink`` (optional, single-producer) receives the wire-equivalent
    byte stream: the binary magic once before the first frame, then
    every payload verbatim — what a pipe receiver would have read.
    Hand the receiver's specs to workers and replay::

        with ShmReceiver(max_producers=2) as receiver:
            ShardedReplayer(path, receiver.specs, workers=2).run()
        total = receiver.counter.total
    """

    def __init__(
        self,
        window_seconds: float = 1.0,
        clock: "TraceClock | None" = None,
        tracer: "Tracer | None" = None,
        max_producers: int = 1,
        slots: int = 4096,
        arena_bytes: int = 1 << 23,
        sink=None,
        drain_timeout: float = 30.0,
    ):
        from repro.core import shm

        if max_producers <= 0:
            raise ValueError(
                f"max_producers must be positive, got {max_producers}"
            )
        if sink is not None and max_producers > 1:
            raise ValueError(
                "sink capture needs a single producer (slot interleaving "
                "across rings is unordered)"
            )
        self._rings: list[shm.ShmRing] = []
        try:
            for __ in range(max_producers):
                self._rings.append(
                    shm.ShmRing.create(slots=slots, arena_bytes=arena_bytes)
                )
        except BaseException:
            for ring in self._rings:
                ring.close()
                ring.unlink()
            raise
        self.specs = tuple(ShmSpec(name=ring.name) for ring in self._rings)
        self.counter = WindowCounter(window_seconds, clock=clock)
        self._tracer = tracer
        self._sink = sink
        self._drain_timeout = drain_timeout
        self._stop = threading.Event()
        self._closed = False
        self.error: Exception | None = None
        self._magic_written = False
        self._id_lock = threading.Lock()
        self._next_id = 0  # guarded-by: self._id_lock
        self._threads = [
            threading.Thread(target=self._drain, args=(ring,), daemon=True)
            for ring in self._rings
        ]

    @property
    def name(self) -> str:
        """Segment name of the (first) ring — the single-producer case."""
        return self._rings[0].name

    def start(self) -> None:
        for thread in self._threads:
            thread.start()

    def _record_batch(self, count: int) -> None:
        with self._id_lock:
            first_id = self._next_id
            self._next_id += count
        self.counter.record(count)
        tracer = self._tracer
        if tracer is not None:
            tracer.count("ingested", count)
            if tracer.sample_batch(first_id, count):
                tracer.instant(
                    "ingested", "receiver", event_id=first_id, count=count
                )

    def _drain_to_sink(self, consumer) -> tuple[int, int, bool]:
        """Sink mode: pop slots one batch at a time, copying payloads
        out (magic before the first frame, wire-order preserved)."""
        from repro.core import binfmt, shm

        slots = consumer.pop_available(max_slots=256)
        records = 0
        for slot in slots:
            if slot.kind == shm.SLOT_FRAME and not self._magic_written:
                self._sink.write(binfmt.MAGIC)
                self._magic_written = True  # guarded-by: single sink-mode drain thread
            if slot.payload:
                self._sink.write(bytes(slot.payload))
                slot.payload.release()
            records += slot.count
        consumer.advance()
        return len(slots), records, consumer.finished

    def _drain(self, ring) -> None:
        from repro.core import shm

        consumer = shm.RingConsumer(ring)
        sleep = 0.0002
        idle_spins = 0
        deadline = None
        try:
            while True:
                if self._sink is not None:
                    consumed, records, finished = self._drain_to_sink(
                        consumer
                    )
                else:
                    consumed, records, finished = consumer.drain_counts()
                    consumer.advance()
                if records:
                    self._record_batch(records)
                if finished:
                    return
                if consumed:
                    sleep = 0.0002
                    idle_spins = 0
                    deadline = None
                    if self._sink is None and consumed < 192:
                        # Small round: the producer is mid-burst.  A
                        # nap lets slots accumulate so the next round
                        # takes the vectorized drain path (~0.5us per
                        # slot against ~5us per slot popped singly)
                        # instead of hot-polling the ring one slot at a
                        # time — which on a single CPU also steals the
                        # quanta the producer needs to fill it.  Big
                        # rounds loop straight back: a filling ring
                        # means the producer needs space soon.
                        time.sleep(0.002)  # repro-check: disable=HOT001 -- gulp pacing
                    continue
                if consumer.producer_done():
                    return
                if self._stop.is_set():
                    # Drain grace: producers already publishing keep
                    # being counted until the ring goes idle.
                    return
                idle_spins += 1
                if idle_spins < 4:
                    continue
                # Sleep, never spin or yield: on a single-CPU machine
                # an idle consumer burning quanta preempts the producer
                # it is waiting for (the ring holds megabytes, so wake
                # latency is throughput-irrelevant).  The producer's
                # full-ring wait yields instead — there handing the
                # core over is exactly what unblocks it.
                if deadline is None:
                    deadline = time.monotonic() + self._drain_timeout
                elif time.monotonic() >= deadline:
                    raise ConnectorError(
                        "shm receiver stalled: producer made no "
                        "progress before the timeout"
                    )
                time.sleep(sleep)  # repro-check: disable=HOT001 -- idle backoff
                sleep = min(sleep * 2, 0.002)
        except Exception as exc:
            self.error = exc  # guarded-by: write-once; read after join()

    def join(self, timeout: float | None = None) -> None:
        for thread in self._threads:
            thread.join(timeout)
            if thread.is_alive():
                raise ConnectorError("shm receiver did not finish in time")

    def close(self) -> None:
        """Stop draining, then close and unlink every ring (idempotent).

        The consumer-closed flag goes up first so blocked producers
        fail fast instead of stalling; drain threads exit at the next
        idle check.  Unlink is unconditional — segments never outlive
        the receiver, whatever the producers did.
        """
        if self._closed:
            return
        self._closed = True
        for ring in self._rings:
            try:
                ring.set_consumer_closed()
            except ValueError:  # pragma: no cover - mapping already gone
                pass
        self._stop.set()
        for thread in self._threads:
            if thread.is_alive():
                thread.join(timeout=10.0)
        for ring in self._rings:
            ring.close()
            ring.unlink()

    def __enter__(self) -> "ShmReceiver":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if exc_info[0] is None:
                # Clean body: wait for producers to finish their
                # streams so counts are complete before close().
                for thread in self._threads:
                    thread.join(timeout=self._drain_timeout)
        finally:
            self.close()
