"""Built-in generator rule sets and the paper's experiment workloads.

Provides ready-made :class:`~repro.core.generator.GeneratorRules`:

* :class:`UniformRules` — configurable event mix with uniform random
  selections; the generic baseline workload.
* :class:`WeaverTable3Rules` — the exact Weaver experiment workload of
  Table 3: Barabási–Albert bootstrap (n=10000, m0=250, M=50), the
  10/5/35/35/15/0 event mix, Zipf-degree-biased selections.
* :class:`SocialNetworkRules`, :class:`DdosTrafficRules`,
  :class:`BlockchainRules` — the three use cases of section 2.4.

plus :func:`chronograph_table4_stream`, which assembles the Table-4
Chronograph stream (SNB-like events with the pause and double-rate
control structure).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.events import EventType, GraphEvent, marker, pause, speed
from repro.core.generator import GeneratorContext, GeneratorRules
from repro.core.stream import GraphStream
from repro.errors import GeneratorError
from repro.gen.barabasi_albert import barabasi_albert_stream
from repro.gen.snb import SnbConfig, snb_stream
from repro.gen.zipf import ZipfSelector

__all__ = [
    "EventMix",
    "UniformRules",
    "WeaverTable3Rules",
    "SocialNetworkRules",
    "DdosTrafficRules",
    "BlockchainRules",
    "chronograph_table4_stream",
    "WEAVER_TABLE3_MIX",
]


@dataclass(frozen=True, slots=True)
class EventMix:
    """Relative weights of the six graph operations in a workload.

    Weights need not sum to 1; they are normalised when sampling.  A
    weight of 0 disables the operation entirely.
    """

    add_vertex: float = 1.0
    remove_vertex: float = 0.0
    update_vertex: float = 0.0
    add_edge: float = 1.0
    remove_edge: float = 0.0
    update_edge: float = 0.0

    def __post_init__(self) -> None:
        weights = self.as_weights()
        if any(w < 0 for w in weights.values()):
            raise ValueError("event mix weights must be non-negative")
        if not any(weights.values()):
            raise ValueError("event mix must enable at least one operation")

    def as_weights(self) -> dict[EventType, float]:
        return {
            EventType.ADD_VERTEX: self.add_vertex,
            EventType.REMOVE_VERTEX: self.remove_vertex,
            EventType.UPDATE_VERTEX: self.update_vertex,
            EventType.ADD_EDGE: self.add_edge,
            EventType.REMOVE_EDGE: self.remove_edge,
            EventType.UPDATE_EDGE: self.update_edge,
        }

    def sample(self, rng: random.Random) -> EventType:
        """Draw one event type with probability proportional to weight."""
        weights = self.as_weights()
        types = list(weights)
        values = [weights[t] for t in types]
        return rng.choices(types, weights=values, k=1)[0]


#: Table 3's event mix: CREATE_VERTEX 10%, REMOVE_VERTEX 5%,
#: UPDATE_VERTEX 35%, CREATE_EDGE 35%, REMOVE_EDGE 15%, UPDATE_EDGE 0%.
WEAVER_TABLE3_MIX = EventMix(
    add_vertex=0.10,
    remove_vertex=0.05,
    update_vertex=0.35,
    add_edge=0.35,
    remove_edge=0.15,
    update_edge=0.0,
)


class UniformRules(GeneratorRules):
    """Uniform random workload with a configurable event mix.

    Bootstraps ``bootstrap_vertices`` isolated vertices plus
    ``bootstrap_edges`` uniform random edges, then evolves with
    uniform-random target selection for every operation.
    """

    def __init__(
        self,
        mix: EventMix | None = None,
        bootstrap_vertices: int = 50,
        bootstrap_edges: int = 100,
    ):
        if bootstrap_vertices < 0 or bootstrap_edges < 0:
            raise ValueError("bootstrap sizes must be non-negative")
        self.mix = mix or EventMix(
            add_vertex=0.25, update_vertex=0.25, add_edge=0.4, remove_edge=0.1
        )
        self.bootstrap_vertices = bootstrap_vertices
        self.bootstrap_edges = bootstrap_edges

    def bootstrap_graph(self, context: GeneratorContext) -> Iterator[GraphEvent]:
        from repro.core.events import add_edge, add_vertex

        for __ in range(self.bootstrap_vertices):
            yield add_vertex(context.fresh_vertex_id())
        made: set[tuple[int, int]] = set()
        n = self.bootstrap_vertices
        attempts = 0
        while len(made) < self.bootstrap_edges and n >= 2:
            attempts += 1
            if attempts > 50 * self.bootstrap_edges:
                break
            source = context.rng.randrange(n)
            target = context.rng.randrange(n)
            if source == target or (source, target) in made:
                continue
            made.add((source, target))
            yield add_edge(source, target)

    def next_event_type(self, context: GeneratorContext) -> EventType:
        return self.mix.sample(context.rng)

    def update_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        return f"tick={context.round_number}"

    def update_edge(self, source: int, target: int, context: GeneratorContext) -> str:
        return f"tick={context.round_number}"


class WeaverTable3Rules(GeneratorRules):
    """The Weaver experiment workload (Table 3).

    Bootstrap: Barabási–Albert with ``n=10000, m0=250, M=50`` (scalable
    down for quick runs via the constructor).  Evolution mix per
    :data:`WEAVER_TABLE3_MIX`.  Selection functions:

    * removing vertices: Zipf over degree, biased towards *less*
      connected vertices;
    * updating vertices: uniform random;
    * edge source: uniform random; edge target: Zipf over degree,
      biased towards *strongly* connected vertices.
    """

    #: Above this vertex count, Zipf selections rank a uniform candidate
    #: sample instead of the full vertex set (power-of-k-choices
    #: approximation), keeping per-event cost O(k log k) instead of
    #: O(V log V) so the full Table-3 scale (n=10000, 500k rounds) stays
    #: tractable.  The degree bias is preserved within the sample.
    exact_selection_limit: int = 2_000
    candidate_sample_size: int = 64

    def __init__(
        self,
        n: int = 10_000,
        m0: int = 250,
        m: int = 50,
        zipf_exponent: float = 1.0,
    ):
        self.n = n
        self.m0 = m0
        self.m = m
        self.zipf_exponent = zipf_exponent

    def _selection_pool(self, context: GeneratorContext) -> list:
        """All live vertices, or a uniform sample for big graphs."""
        if len(context.vertex_pool) <= self.exact_selection_limit:
            return list(context.vertex_pool)
        return context.sample_vertices(self.candidate_sample_size)

    def bootstrap_graph(self, context: GeneratorContext) -> Iterator[GraphEvent]:
        for event in barabasi_albert_stream(
            self.n, self.m0, self.m, rng=context.rng
        ):
            yield event
        context.next_vertex_id = self.n

    def next_event_type(self, context: GeneratorContext) -> EventType:
        return WEAVER_TABLE3_MIX.sample(context.rng)

    def vertex_select(self, event_type: EventType, context: GeneratorContext) -> int:
        graph = context.graph
        if event_type is EventType.ADD_VERTEX:
            return context.fresh_vertex_id()
        if event_type is EventType.REMOVE_VERTEX:
            selector = ZipfSelector(
                context.rng, exponent=self.zipf_exponent, ascending=True
            )
            return selector.select(
                self._selection_pool(context), key=graph.degree
            )
        return context.random_vertex()

    def edge_select(
        self, event_type: EventType, context: GeneratorContext
    ) -> tuple[int, int]:
        graph = context.graph
        if event_type is EventType.ADD_EDGE:
            if len(context.vertex_pool) < 2:
                raise GeneratorError("need at least two vertices")
            selector = ZipfSelector(context.rng, exponent=self.zipf_exponent)
            for __ in range(50):
                source = context.random_vertex()
                target = selector.select(
                    self._selection_pool(context), key=graph.degree
                )
                if source != target and not graph.has_edge(source, target):
                    return source, target
            raise GeneratorError("could not find a free (source, target) pair")
        return super().edge_select(event_type, context)

    def insert_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        return '{"created_round": %d}' % context.round_number

    def update_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        return '{"updated_round": %d}' % context.round_number


class SocialNetworkRules(GeneratorRules):
    """Use case 2.4-1: a growing social network.

    Users sign up (add vertex), follow each other with preferential
    attachment (add edge), post activity (update vertex), occasionally
    unfollow (remove edge) or leave (remove vertex).
    """

    def __init__(self, seed_users: int = 20):
        if seed_users < 2:
            raise ValueError("seed_users must be >= 2")
        self.seed_users = seed_users
        self.mix = EventMix(
            add_vertex=0.15,
            remove_vertex=0.02,
            update_vertex=0.38,
            add_edge=0.35,
            remove_edge=0.10,
        )

    def bootstrap_graph(self, context: GeneratorContext) -> Iterator[GraphEvent]:
        from repro.core.events import add_edge, add_vertex

        for __ in range(self.seed_users):
            user = context.fresh_vertex_id()
            yield add_vertex(user, '{"posts": 0}')
        for i in range(self.seed_users):
            target = (i + 1) % self.seed_users
            yield add_edge(i, target, '{"kind": "follows"}')

    def next_event_type(self, context: GeneratorContext) -> EventType:
        return self.mix.sample(context.rng)

    def edge_select(
        self, event_type: EventType, context: GeneratorContext
    ) -> tuple[int, int]:
        graph = context.graph
        if event_type is EventType.ADD_EDGE:
            if len(context.vertex_pool) < 2:
                raise GeneratorError("need at least two users")
            selector = ZipfSelector(context.rng)
            pool = (
                list(context.vertex_pool)
                if len(context.vertex_pool) <= 2_000
                else context.sample_vertices(64)
            )
            for __ in range(50):
                source = context.random_vertex()
                target = selector.select(pool, key=graph.in_degree)
                if source != target and not graph.has_edge(source, target):
                    return source, target
            raise GeneratorError("no free follow edge found")
        return super().edge_select(event_type, context)

    def insert_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        return '{"posts": 0}'

    def insert_edge(self, source: int, target: int, context: GeneratorContext) -> str:
        return '{"kind": "follows"}'

    def update_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        return '{"posts": %d}' % context.rng.randint(1, 500)

    def remove_vertex(self, vertex_id: int, context: GeneratorContext) -> bool:
        # Influencers (high in-degree) rarely leave the network.
        return context.graph.in_degree(vertex_id) < 5


class DdosTrafficRules(GeneratorRules):
    """Use case 2.4-2: traffic flows between servers and remote clients.

    The graph contains ``servers`` long-lived server vertices plus
    churning client vertices.  Edges are flows with byte counters in
    their state.  After ``attack_after_round`` rounds, a botnet of
    ``attackers`` clients floods one victim server with flow updates —
    the anomalous temporal pattern a stream-based system should detect.
    """

    def __init__(
        self,
        servers: int = 5,
        attack_after_round: int = 500,
        attackers: int = 30,
    ):
        if servers < 1:
            raise ValueError("need at least one server")
        self.servers = servers
        self.attack_after_round = attack_after_round
        self.attackers = attackers
        self.mix = EventMix(
            add_vertex=0.20,
            remove_vertex=0.05,
            update_edge=0.45,
            add_edge=0.25,
            remove_edge=0.05,
        )

    def bootstrap_global_context(self, context: GeneratorContext) -> dict:
        return {"attackers": [], "victim": 0}

    def bootstrap_graph(self, context: GeneratorContext) -> Iterator[GraphEvent]:
        from repro.core.events import add_vertex

        for __ in range(self.servers):
            server = context.fresh_vertex_id()
            yield add_vertex(server, '{"role": "server"}')

    def next_event_type(self, context: GeneratorContext) -> EventType:
        if self._attack_active(context):
            # During the attack, flows dominate: update or create edges.
            return (
                EventType.UPDATE_EDGE
                if context.rng.random() < 0.7
                else EventType.ADD_EDGE
            )
        return self.mix.sample(context.rng)

    def _attack_active(self, context: GeneratorContext) -> bool:
        return context.round_number >= self.attack_after_round

    def vertex_select(self, event_type: EventType, context: GeneratorContext) -> int:
        if event_type is EventType.ADD_VERTEX:
            return context.fresh_vertex_id()
        clients = [
            v for v in context.graph.vertices() if v >= self.servers
        ]
        if not clients:
            raise GeneratorError("no client vertices yet")
        return clients[context.rng.randrange(len(clients))]

    def edge_select(
        self, event_type: EventType, context: GeneratorContext
    ) -> tuple[int, int]:
        graph = context.graph
        user: dict = context.user  # type: ignore[assignment]
        if self._attack_active(context):
            attackers = user["attackers"]
            if len(attackers) < self.attackers:
                candidates = [
                    v
                    for v in graph.vertices()
                    if v >= self.servers and v not in attackers
                ]
                if candidates:
                    attackers.append(
                        candidates[context.rng.randrange(len(candidates))]
                    )
            if attackers:
                source = attackers[context.rng.randrange(len(attackers))]
                victim = user["victim"]
                if event_type is EventType.ADD_EDGE:
                    if not graph.has_edge(source, victim):
                        return source, victim
                elif graph.has_edge(source, victim):
                    return source, victim
        if event_type is EventType.ADD_EDGE:
            clients = [v for v in graph.vertices() if v >= self.servers]
            if not clients:
                raise GeneratorError("no clients yet")
            for __ in range(50):
                source = clients[context.rng.randrange(len(clients))]
                target = context.rng.randrange(self.servers)
                if not graph.has_edge(source, target):
                    return source, target
            raise GeneratorError("no free flow edge")
        return super().edge_select(event_type, context)

    def insert_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        return '{"role": "client"}'

    def insert_edge(self, source: int, target: int, context: GeneratorContext) -> str:
        return '{"bytes": %d}' % context.rng.randint(100, 5000)

    def update_edge(self, source: int, target: int, context: GeneratorContext) -> str:
        heavy = self._attack_active(context)
        upper = 500_000 if heavy else 5_000
        return '{"bytes": %d}' % context.rng.randint(100, upper)

    def remove_vertex(self, vertex_id: int, context: GeneratorContext) -> bool:
        return vertex_id >= self.servers  # servers never disappear


class BlockchainRules(GeneratorRules):
    """Use case 2.4-3: a transaction/wallet graph from a ledger stream.

    Wallets are vertices holding a balance; transactions are edges
    carrying amounts.  New blocks appear as micro-batches: every
    ``block_size`` rounds the rules emit transaction edges between
    wallets and update wallet balances.
    """

    def __init__(self, seed_wallets: int = 25, block_size: int = 10):
        if seed_wallets < 2:
            raise ValueError("seed_wallets must be >= 2")
        self.seed_wallets = seed_wallets
        self.block_size = block_size
        self.mix = EventMix(
            add_vertex=0.10, update_vertex=0.40, add_edge=0.45, remove_edge=0.05
        )

    def bootstrap_graph(self, context: GeneratorContext) -> Iterator[GraphEvent]:
        from repro.core.events import add_vertex

        for __ in range(self.seed_wallets):
            wallet = context.fresh_vertex_id()
            yield add_vertex(wallet, '{"balance": 1000}')

    def next_event_type(self, context: GeneratorContext) -> EventType:
        return self.mix.sample(context.rng)

    def insert_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        return '{"balance": 0}'

    def insert_edge(self, source: int, target: int, context: GeneratorContext) -> str:
        block = context.round_number // self.block_size
        amount = context.rng.randint(1, 250)
        return '{"amount": %d, "block": %d}' % (amount, block)

    def update_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        return '{"balance": %d}' % context.rng.randint(0, 5000)


def chronograph_table4_stream(
    config: SnbConfig | None = None,
    pause_after: int = 100_000,
    pause_seconds: float = 20.0,
    double_rate_until: int = 150_000,
) -> GraphStream:
    """Assemble the Table-4 Chronograph stream.

    SNB-like graph events with the paper's control structure: a 20 s
    pause after the 100,000th event, doubled replay rate between the
    100,001st and 150,000th event, then the base rate for the rest.
    Markers flag the phase transitions for later correlation.
    """
    if config is None:
        config = SnbConfig()
    if not 0 < pause_after <= double_rate_until:
        raise ValueError("need 0 < pause_after <= double_rate_until")

    events = list(snb_stream(config))
    stream = GraphStream()
    for index, event in enumerate(events):
        if index == pause_after:
            stream.append(marker("pause-start"))
            stream.append(pause(pause_seconds))
            stream.append(speed(2.0))
            stream.append(marker("double-rate-start"))
        elif index == double_rate_until:
            stream.append(speed(1.0))
            stream.append(marker("base-rate-restored"))
        stream.append(event)
    stream.append(marker("stream-end"))
    return stream
