"""Result log: the single chronologically sorted outcome of a test run.

Every logger appends timestamped records to a local log; after a run
the log collector merges them into one :class:`ResultLog` (section
4.1/5.1).  Records carry their source (which logger/process produced
them), a metric name, a value, and optional tags — enough to rebuild
any of the paper's time-series plots from one file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.metrics import TimeSeries
from repro.errors import AnalysisError

__all__ = ["Record", "ResultLog"]


@dataclass(frozen=True, slots=True)
class Record:
    """One timestamped measurement or annotation in the result log.

    ``kind`` distinguishes plain metric samples (``"metric"``) from
    marker observations (``"marker"``) and computation results
    (``"result"``).  ``value`` is numeric for metrics; marker and
    result records may carry structured data in ``tags`` instead.
    """

    timestamp: float
    source: str
    metric: str
    value: float
    kind: str = "metric"
    tags: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        payload = {
            "timestamp": self.timestamp,
            "source": self.source,
            "metric": self.metric,
            "value": self.value,
            "kind": self.kind,
        }
        if self.tags:
            payload["tags"] = self.tags
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Record":
        payload = json.loads(text)
        return cls(
            timestamp=float(payload["timestamp"]),
            source=str(payload["source"]),
            metric=str(payload["metric"]),
            value=float(payload["value"]),
            kind=str(payload.get("kind", "metric")),
            tags={str(k): str(v) for k, v in payload.get("tags", {}).items()},
        )


class ResultLog:
    """Chronologically sorted collection of :class:`Record` entries."""

    def __init__(self, records: Iterable[Record] = ()):
        self._records = sorted(records, key=lambda r: r.timestamp)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    @property
    def records(self) -> tuple[Record, ...]:
        return tuple(self._records)

    # -- queries -------------------------------------------------------------

    def sources(self) -> list[str]:
        """Distinct record sources, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.source, None)
        return list(seen)

    def metrics(self) -> list[str]:
        """Distinct metric names, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.metric, None)
        return list(seen)

    def filter(
        self,
        source: str | None = None,
        metric: str | None = None,
        kind: str | None = None,
    ) -> "ResultLog":
        """Sub-log with records matching all given criteria."""
        return ResultLog(
            r
            for r in self._records
            if (source is None or r.source == source)
            and (metric is None or r.metric == metric)
            and (kind is None or r.kind == kind)
        )

    def series(self, metric: str, source: str | None = None) -> TimeSeries:
        """A :class:`TimeSeries` of one metric (optionally one source).

        Raises :class:`AnalysisError` when no matching records exist.
        """
        matching = self.filter(source=source, metric=metric)
        if not len(matching):
            raise AnalysisError(
                f"no records for metric {metric!r}"
                + (f" from source {source!r}" if source else "")
            )
        series = TimeSeries(metric)
        for record in matching:
            series.append(record.timestamp, record.value)
        return series

    def markers(self) -> list[Record]:
        """All marker-kind records in chronological order."""
        return [r for r in self._records if r.kind == "marker"]

    def spans(
        self, name: str | None = None, category: str | None = None
    ) -> list[Record]:
        """All span-kind records, optionally one phase and/or category.

        Span records are produced by :class:`~repro.core.tracing.Tracer`
        (``metric`` = phase name, ``source`` = recording component,
        ``value`` = duration in clock seconds, ``tags["event_id"]`` =
        first covered stream position).
        """
        return [
            r
            for r in self._records
            if r.kind == "span"
            and (name is None or r.metric == name)
            and (category is None or r.source == category)
        ]

    def marker_time(self, label: str) -> float:
        """Timestamp at which the marker ``label`` was observed.

        Raises :class:`AnalysisError` when the marker never appeared.
        """
        for record in self._records:
            if record.kind == "marker" and record.tags.get("label") == label:
                return record.timestamp
        raise AnalysisError(f"marker {label!r} not present in result log")

    # -- merging & persistence ----------------------------------------------

    def merged_with(self, *others: "ResultLog") -> "ResultLog":
        """A new log containing this log's and all other logs' records."""
        records: list[Record] = list(self._records)
        for other in others:
            records.extend(other.records)
        return ResultLog(records)

    def write(self, path: str | Path) -> None:
        """Persist as JSON lines (one record per line)."""
        path = Path(path)
        with path.open("w", encoding="utf-8", newline="\n") as handle:
            for record in self._records:
                handle.write(record.to_json())
                handle.write("\n")

    @classmethod
    def read(cls, path: str | Path) -> "ResultLog":
        """Load a JSON-lines result log."""
        path = Path(path)
        records: list[Record] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(Record.from_json(line))
        return cls(records)

    def __repr__(self) -> str:
        return f"ResultLog({len(self._records)} records)"
