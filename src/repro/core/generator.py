"""Round-based graph stream generator (paper sections 4.1, 5.1, Listing 1).

Graph stream generation is conceptually divided in two phases:
(i) bootstrapping an initial graph, and (ii) continuously modifying the
resulting graph.  The generator works in a configurable number of
rounds; in each round a user-defined function selects the event type
and an appropriate target vertex/edge, and user callbacks may modify
the state of the target.  A ``constraint`` callback can veto individual
events before they are emitted.

:class:`GeneratorRules` mirrors the user API of Listing 1::

    bootstrapGlobalContext :: () : object
    bootstrapGraph :: (graph, globalContext) : void
    nextEventType :: (globalContext) : EventType
    vertexSelect :: (eventType, globalContext) : number
    edgeSelect :: (eventType, globalContext) : [number, number]
    insertVertex / insertEdge / updateVertex / updateEdge :: ... : object
    removeVertex / removeEdge :: ... : boolean
    constraint :: (event, globalContext) : boolean

The Python spelling is snake_case and the callbacks receive the live
:class:`~repro.graph.graph.StreamGraph` mirror via the context, so
selection functions can rank by degree etc.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.events import (
    EventType,
    GraphEvent,
    add_edge,
    add_vertex,
    marker,
    pause,
    remove_edge,
    remove_vertex,
    update_edge,
    update_vertex,
)
from repro.core.stream import BOOTSTRAP_END_MARKER, GraphStream
from repro.errors import GeneratorError, GraphOperationError
from repro.graph.graph import StreamGraph

__all__ = ["GeneratorContext", "GeneratorRules", "StreamGenerator"]


@dataclass
class GeneratorContext:
    """Mutable state shared across generator callbacks.

    ``graph`` is the generator's own mirror of the graph defined by the
    events emitted so far — user callbacks may inspect it (degrees,
    existence checks) but must not mutate it.  ``rng`` is the seeded
    random source all rules should draw from so streams are
    reproducible.  ``user`` carries the object returned by
    ``bootstrap_global_context``.

    ``vertex_pool`` and ``edge_pool`` are incrementally maintained
    lists of the live vertices/edges (kept in sync by the engine), so
    selection rules can draw uniform random entities in O(1) instead of
    materialising ``list(graph.vertices())`` per round — the difference
    between quadratic and linear stream generation at paper scale.
    """

    graph: StreamGraph
    rng: random.Random
    round_number: int = 0
    next_vertex_id: int = 0
    user: object | None = None
    vertex_pool: list[int] = field(default_factory=list)
    edge_pool: list = field(default_factory=list)
    _vertex_index: dict[int, int] = field(default_factory=dict)
    _edge_index: dict = field(default_factory=dict)

    def fresh_vertex_id(self) -> int:
        """Allocate the next unused vertex id."""
        vertex_id = self.next_vertex_id
        self.next_vertex_id += 1
        return vertex_id

    def random_vertex(self) -> int:
        """Uniformly random live vertex.  Raises GeneratorError if none."""
        if not self.vertex_pool:
            raise GeneratorError("no vertices to select from")
        return self.vertex_pool[self.rng.randrange(len(self.vertex_pool))]

    def random_edge(self):
        """Uniformly random live edge.  Raises GeneratorError if none."""
        if not self.edge_pool:
            raise GeneratorError("no edges to select from")
        return self.edge_pool[self.rng.randrange(len(self.edge_pool))]

    def sample_vertices(self, k: int) -> list[int]:
        """``k`` vertices drawn uniformly with replacement."""
        if not self.vertex_pool:
            raise GeneratorError("no vertices to select from")
        pool = self.vertex_pool
        return [pool[self.rng.randrange(len(pool))] for __ in range(k)]

    # -- pool maintenance (engine-internal) --------------------------------

    def _pool_add_vertex(self, vertex: int) -> None:
        self._vertex_index[vertex] = len(self.vertex_pool)
        self.vertex_pool.append(vertex)

    def _pool_remove_vertex(self, vertex: int) -> None:
        index = self._vertex_index.pop(vertex)
        last = self.vertex_pool.pop()
        if last != vertex:
            self.vertex_pool[index] = last
            self._vertex_index[last] = index

    def _pool_add_edge(self, edge) -> None:
        self._edge_index[edge] = len(self.edge_pool)
        self.edge_pool.append(edge)

    def _pool_remove_edge(self, edge) -> None:
        index = self._edge_index.pop(edge)
        last = self.edge_pool.pop()
        if last != edge:
            self.edge_pool[index] = last
            self._edge_index[last] = index


class GeneratorRules:
    """Base class for user-defined generation rules (Listing 1).

    Subclasses override the selection and state callbacks.  The default
    implementation generates uniform random behaviour: it adds a vertex
    when asked for any vertex-creating event, picks uniform random
    targets, produces empty states, and accepts every removal and
    constraint check.
    """

    def bootstrap_global_context(self, context: GeneratorContext) -> object | None:
        """Create the user context object (``bootstrapGlobalContext``)."""
        return None

    def bootstrap_graph(self, context: GeneratorContext) -> Iterator[GraphEvent]:
        """Yield events that build the initial graph (``bootstrapGraph``)."""
        return iter(())

    def next_event_type(self, context: GeneratorContext) -> EventType:
        """Choose the event type of this round (``nextEventType``)."""
        return EventType.ADD_VERTEX

    def vertex_select(
        self, event_type: EventType, context: GeneratorContext
    ) -> int:
        """Choose the target vertex for a vertex event (``vertexSelect``).

        For ``ADD_VERTEX`` return a *new* id (``context.fresh_vertex_id()``);
        for update/remove return an existing id.
        """
        if event_type is EventType.ADD_VERTEX:
            return context.fresh_vertex_id()
        return context.random_vertex()

    def edge_select(
        self, event_type: EventType, context: GeneratorContext
    ) -> tuple[int, int]:
        """Choose the (source, target) pair for an edge event (``edgeSelect``)."""
        graph = context.graph
        if event_type is EventType.ADD_EDGE:
            if len(context.vertex_pool) < 2:
                raise GeneratorError("need at least two vertices to add an edge")
            for __ in range(100):
                source = context.random_vertex()
                target = context.random_vertex()
                if source != target and not graph.has_edge(source, target):
                    return source, target
            raise GeneratorError("could not find a free (source, target) pair")
        edge = context.random_edge()
        return edge.source, edge.target

    def insert_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        """Initial state for a new vertex (``insertVertex``)."""
        return ""

    def insert_edge(
        self, source: int, target: int, context: GeneratorContext
    ) -> str:
        """Initial state for a new edge (``insertEdge``)."""
        return ""

    def update_vertex(self, vertex_id: int, context: GeneratorContext) -> str:
        """New state for a vertex update (``updateVertex``)."""
        return ""

    def update_edge(
        self, source: int, target: int, context: GeneratorContext
    ) -> str:
        """New state for an edge update (``updateEdge``)."""
        return ""

    def remove_vertex(self, vertex_id: int, context: GeneratorContext) -> bool:
        """Whether to proceed with a vertex removal (``removeVertex``)."""
        return True

    def remove_edge(
        self, source: int, target: int, context: GeneratorContext
    ) -> bool:
        """Whether to proceed with an edge removal (``removeEdge``)."""
        return True

    def constraint(self, event: GraphEvent, context: GeneratorContext) -> bool:
        """Final veto over an assembled event (``constraint``)."""
        return True


@dataclass
class StreamGenerator:
    """Two-phase, round-based stream generator engine.

    ``rounds`` is the number of evolution rounds after bootstrap; each
    round emits at most one event (rounds vetoed by rules or failing
    repeatedly are skipped, counted in ``skipped_rounds``).  With
    ``emit_phase_marker=True`` a ``bootstrap-end`` marker and a pause
    event separate the two phases, matching section 4.1.
    """

    rules: GeneratorRules
    rounds: int
    seed: int = 0
    emit_phase_marker: bool = True
    phase_pause_seconds: float = 1.0
    max_round_retries: int = 25
    skipped_rounds: int = field(default=0, init=False)

    def generate(self) -> GraphStream:
        """Run bootstrap + evolution and return the full stream."""
        return GraphStream(self.iter_events())

    def write(self, path, *, chunk_events: int = 4096) -> int:
        """Generate directly into a stream file; returns the event count.

        Events are serialized with the codec's bulk formatter in
        ``chunk_events``-sized batches as they are produced, so
        arbitrarily long streams reach disk without materialising a
        :class:`GraphStream` in memory first.
        """
        from repro.core import codec

        return codec.write_stream_file(
            path, self.iter_events(), chunk_events=chunk_events
        )

    def iter_events(self):
        """Yield stream events lazily (bootstrap, marker, evolution)."""
        context = GeneratorContext(graph=StreamGraph(), rng=random.Random(self.seed))
        context.user = self.rules.bootstrap_global_context(context)
        self.skipped_rounds = 0

        for event in self.rules.bootstrap_graph(context):
            self._mirror(event, context)
            yield event

        if self.emit_phase_marker:
            yield marker(BOOTSTRAP_END_MARKER)
            if self.phase_pause_seconds > 0:
                yield pause(self.phase_pause_seconds)

        for round_number in range(self.rounds):
            context.round_number = round_number
            event = self._generate_round(context)
            if event is None:
                self.skipped_rounds += 1
                continue
            self._mirror(event, context)
            yield event

    # -- internals -----------------------------------------------------------

    def _generate_round(self, context: GeneratorContext) -> GraphEvent | None:
        for __ in range(self.max_round_retries):
            try:
                event = self._assemble_event(context)
            except GeneratorError:
                continue
            if event is None:
                continue
            if not self.rules.constraint(event, context):
                continue
            return event
        return None

    def _assemble_event(self, context: GeneratorContext) -> GraphEvent | None:
        rules = self.rules
        event_type = rules.next_event_type(context)
        if not event_type.is_graph_event:
            raise GeneratorError(f"rules returned non-graph event type {event_type}")

        if event_type.is_vertex_event:
            vertex_id = rules.vertex_select(event_type, context)
            if event_type is EventType.ADD_VERTEX:
                if context.graph.has_vertex(vertex_id):
                    raise GeneratorError(f"vertex {vertex_id} already exists")
                context.next_vertex_id = max(context.next_vertex_id, vertex_id + 1)
                return add_vertex(vertex_id, rules.insert_vertex(vertex_id, context))
            if not context.graph.has_vertex(vertex_id):
                raise GeneratorError(f"vertex {vertex_id} does not exist")
            if event_type is EventType.UPDATE_VERTEX:
                return update_vertex(
                    vertex_id, rules.update_vertex(vertex_id, context)
                )
            if not rules.remove_vertex(vertex_id, context):
                return None
            return remove_vertex(vertex_id)

        source, target = rules.edge_select(event_type, context)
        if event_type is EventType.ADD_EDGE:
            if source == target:
                raise GeneratorError("self loops are not allowed")
            if context.graph.has_edge(source, target):
                raise GeneratorError(f"edge {source}-{target} already exists")
            if not (
                context.graph.has_vertex(source) and context.graph.has_vertex(target)
            ):
                raise GeneratorError("edge endpoints must exist")
            return add_edge(source, target, rules.insert_edge(source, target, context))
        if not context.graph.has_edge(source, target):
            raise GeneratorError(f"edge {source}-{target} does not exist")
        if event_type is EventType.UPDATE_EDGE:
            return update_edge(
                source, target, rules.update_edge(source, target, context)
            )
        if not rules.remove_edge(source, target, context):
            return None
        return remove_edge(source, target)

    def _mirror(self, event: GraphEvent, context: GeneratorContext) -> None:
        try:
            delta = context.graph.apply(event)
        except GraphOperationError as error:  # pragma: no cover - defensive
            raise GeneratorError(
                f"generator produced inconsistent event {event}: {error}"
            ) from error
        event_type = event.event_type
        if event_type is EventType.ADD_VERTEX:
            context.next_vertex_id = max(
                context.next_vertex_id, event.vertex_id + 1
            )
            context._pool_add_vertex(event.vertex_id)
        elif event_type is EventType.REMOVE_VERTEX:
            context._pool_remove_vertex(event.vertex_id)
            for edge in delta.removed_edges:
                context._pool_remove_edge(edge)
        elif event_type is EventType.ADD_EDGE:
            context._pool_add_edge(event.edge_id)
        elif event_type is EventType.REMOVE_EDGE:
            context._pool_remove_edge(event.edge_id)
