"""Structural witness sidecars for binary stream shards.

``--emission decode`` makes every worker prove its shard well-formed
before emitting it: originally a :func:`repro.core.binfmt.scan_frame`
header walk per frame, ~0.13 µs per record of pure interpreter time —
which dominates the replay loop once the transport itself is
sub-microsecond (the shared-memory ring).  A *witness* moves that proof
off the hot path without weakening it:

* At partition time :class:`~repro.core.binfmt.BinaryStreamWriter`
  records what it wrote — per-frame (kind, count, body length) and
  per-record body lengths — into a ``<shard>.witness`` sidecar.  The
  writer already knows these numbers; recording them is one list append
  per record.
* At replay start the worker *verifies the file against the witness in
  bulk*: frame offsets and record start offsets are recomputed from the
  witness arrays (pure vector arithmetic), and the actual shard bytes
  at every one of those offsets — frame kind/count/body fields, record
  tags, record length prefixes — are gathered and compared in a handful
  of numpy operations, ~6 ns per record.  A witness that tiles the file
  exactly and agrees with every header byte is precisely what the
  per-frame ``scan_frame`` walk proves, by induction over the same
  structure.
* After one clean bulk verification the per-frame count is read from
  the (now proven) frame header via
  :func:`~repro.core.binfmt.frame_info` — constant work per batch.

The witness is an *accelerator*, never a requirement: a missing
sidecar, a sidecar whose recorded file size disagrees (stale — the
stream was rewritten), or a machine without numpy all fall back to the
``scan_frame`` walk.  A sidecar that matches the file's size but not
its bytes is corruption and raises a typed
:class:`~repro.errors.StreamFormatError` with the offending byte
offset, exactly like the walk it replaces.
"""

from __future__ import annotations

import struct
import sys
from array import array
from pathlib import Path

from repro.errors import StreamFormatError

try:  # numpy is optional: without it verification falls back to scan_frame
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

__all__ = [
    "WITNESS_MAGIC",
    "WITNESS_VERSION",
    "Witness",
    "witness_path",
    "dump_witness",
    "load_witness",
    "verify_stream",
    "preverify_shard",
    "count_verified_frame",
]

WITNESS_MAGIC = b"GTW1"
WITNESS_VERSION = 1

#: magic, version, source file size, frame count, record count.
_HEADER = struct.Struct("<4sIQIQ")


def witness_path(stream_path: str | Path) -> Path:
    """Sidecar path for a stream file: ``<stream>.witness``."""
    return Path(f"{stream_path}.witness")


def _le(arr: array) -> array:
    if sys.byteorder != "little":  # pragma: no cover - LE-only CI
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr


def dump_witness(
    frame_counts,
    frame_bodies,
    frame_kinds,
    record_lens,
    file_size: int,
) -> bytes:
    """Serialize a witness: header, then the four tables as packed
    little-endian arrays (struct-of-arrays, so the verifier maps each
    straight into one numpy view)."""
    if not (len(frame_counts) == len(frame_bodies) == len(frame_kinds)):
        raise ValueError("witness frame tables disagree in length")
    return b"".join(
        (
            _HEADER.pack(
                WITNESS_MAGIC,
                WITNESS_VERSION,
                file_size,
                len(frame_counts),
                len(record_lens),
            ),
            _le(array("I", frame_counts)).tobytes(),
            _le(array("I", frame_bodies)).tobytes(),
            bytes(frame_kinds),
            _le(array("I", record_lens)).tobytes(),
        )
    )


class Witness:
    """Parsed witness tables (numpy int64/uint8 views)."""

    __slots__ = (
        "file_size",
        "frame_counts",
        "frame_bodies",
        "frame_kinds",
        "record_lens",
    )

    def __init__(self, file_size, frame_counts, frame_bodies, frame_kinds, record_lens):
        self.file_size = file_size
        self.frame_counts = frame_counts
        self.frame_bodies = frame_bodies
        self.frame_kinds = frame_kinds
        self.record_lens = record_lens


def load_witness(path: str | Path) -> "Witness | None":
    """Parse a sidecar file; ``None`` when it does not exist.

    Requires numpy (the only consumer is the vector verifier).  A
    sidecar that exists but cannot be parsed raises
    :class:`~repro.errors.StreamFormatError` — a corrupt witness must
    not silently demote verification.
    """
    if _np is None:
        return None
    try:
        blob = Path(path).read_bytes()
    except FileNotFoundError:
        return None
    if len(blob) < _HEADER.size:
        raise StreamFormatError(
            f"{path}: truncated witness header "
            f"({len(blob)} of {_HEADER.size} bytes)",
            byte_offset=0,
        )
    magic, version, file_size, frames, records = _HEADER.unpack_from(blob, 0)
    if magic != WITNESS_MAGIC or version != WITNESS_VERSION:
        raise StreamFormatError(
            f"{path}: not a witness sidecar "
            f"(magic {magic!r}, version {version})",
            byte_offset=0,
        )
    expected = _HEADER.size + frames * 9 + records * 4
    if len(blob) != expected:
        raise StreamFormatError(
            f"{path}: witness holds {len(blob)} bytes, header implies "
            f"{expected}",
            byte_offset=min(len(blob), expected),
        )
    offset = _HEADER.size
    counts = _np.frombuffer(blob, "<u4", frames, offset).astype(_np.int64)
    offset += frames * 4
    bodies = _np.frombuffer(blob, "<u4", frames, offset).astype(_np.int64)
    offset += frames * 4
    kinds = _np.frombuffer(blob, _np.uint8, frames, offset)
    offset += frames
    lens = _np.frombuffer(blob, "<u4", records, offset).astype(_np.int64)
    return Witness(file_size, counts, bodies, kinds, lens)


def _first_bad(ok) -> int:
    """Index of the first False in a boolean vector (which is known to
    contain one)."""
    return int(_np.nonzero(~ok)[0][0])


def verify_stream(buffer, wit: Witness, *, path: str = "") -> tuple[int, int]:
    """Bulk-verify a binary stream's bytes against its witness.

    ``buffer`` is the whole file (mmap or bytes).  Returns
    ``(frames, records)`` on success; any disagreement — between the
    witness tables themselves, or between a recomputed offset's
    expected bytes and the file — raises
    :class:`~repro.errors.StreamFormatError` with the first offending
    byte offset.
    """
    from repro.core import binfmt

    np = _np
    if np is None:  # pragma: no cover - callers gate on availability
        raise StreamFormatError("witness verification requires numpy")
    label = path or "stream"
    counts = wit.frame_counts
    bodies = wit.frame_bodies
    kinds = wit.frame_kinds
    rec_lens = wit.record_lens
    n_frames = len(counts)
    n_records = len(rec_lens)
    total = len(buffer)
    if total != wit.file_size:
        raise StreamFormatError(
            f"{label}: file holds {total} bytes, witness recorded "
            f"{wit.file_size}",
            byte_offset=min(total, wit.file_size),
        )
    # -- witness self-consistency (pure arithmetic on the tables) ------
    if n_frames and (counts <= 0).any():
        raise StreamFormatError(
            f"{label}: witness frame {_first_bad(counts > 0)} records a "
            f"non-positive count"
        )
    if int(counts.sum()) != n_records:
        raise StreamFormatError(
            f"{label}: witness frame counts sum to {int(counts.sum())}, "
            f"record table holds {n_records}"
        )
    header = len(binfmt.MAGIC)
    strides = rec_lens + binfmt.RECORD_HEADER_SIZE
    if n_frames:
        frame_first = np.concatenate(
            (np.zeros(1, np.int64), np.cumsum(counts)[:-1])
        )
        body_sums = np.add.reduceat(strides, frame_first)
        ok = body_sums == bodies
        if not ok.all():
            bad = _first_bad(ok)
            raise StreamFormatError(
                f"{label}: witness frame {bad} records a {int(bodies[bad])}"
                f"-byte body but its records span {int(body_sums[bad])}"
            )
        frame_sizes = bodies + binfmt.FRAME_HEADER_SIZE
        frame_offs = header + np.concatenate(
            (np.zeros(1, np.int64), np.cumsum(frame_sizes)[:-1])
        )
        data_end = header + int(frame_sizes.sum())
    else:
        frame_offs = np.zeros(0, np.int64)
        data_end = header
    # -- file bytes at every recomputed offset -------------------------
    magic_len = len(binfmt.MAGIC)
    if bytes(buffer[:magic_len]) != binfmt.MAGIC:
        raise StreamFormatError(
            f"{label}: missing binary stream magic", byte_offset=0
        )
    index_magic = binfmt.INDEX_MAGIC
    if (
        data_end + len(index_magic) > total
        or bytes(buffer[data_end : data_end + len(index_magic)]) != index_magic
    ):
        raise StreamFormatError(
            f"{label}: witness frames end at {data_end} but no frame "
            f"index starts there",
            byte_offset=data_end,
        )
    if n_frames == 0:
        return 0, 0
    data = np.frombuffer(buffer, np.uint8, total)
    fo = frame_offs
    ok = (data[fo] == kinds) & (kinds <= binfmt.FRAME_CONTROL)
    if not ok.all():
        bad = _first_bad(ok)
        raise StreamFormatError(
            f"{label}: frame {bad} kind byte {int(data[fo[bad]])} "
            f"disagrees with witness kind {int(kinds[bad])}",
            byte_offset=int(fo[bad]),
        )
    file_counts = (
        data[fo + 1].astype(np.int64)
        | (data[fo + 2].astype(np.int64) << 8)
        | (data[fo + 3].astype(np.int64) << 16)
        | (data[fo + 4].astype(np.int64) << 24)
    )
    ok = file_counts == counts
    if not ok.all():
        bad = _first_bad(ok)
        raise StreamFormatError(
            f"{label}: frame {bad} header promises {int(file_counts[bad])} "
            f"record(s), witness recorded {int(counts[bad])}",
            byte_offset=int(fo[bad]) + 1,
        )
    file_bodies = (
        data[fo + 5].astype(np.int64)
        | (data[fo + 6].astype(np.int64) << 8)
        | (data[fo + 7].astype(np.int64) << 16)
        | (data[fo + 8].astype(np.int64) << 24)
    )
    ok = file_bodies == bodies
    if not ok.all():
        bad = _first_bad(ok)
        raise StreamFormatError(
            f"{label}: frame {bad} header claims a {int(file_bodies[bad])}"
            f"-byte body, witness recorded {int(bodies[bad])}",
            byte_offset=int(fo[bad]) + 5,
        )
    # Record start offsets: each frame's records tile its body.
    global_cs = np.concatenate((np.zeros(1, np.int64), np.cumsum(strides)[:-1]))
    starts = np.repeat(fo + binfmt.FRAME_HEADER_SIZE, counts) + (
        global_cs - np.repeat(global_cs[frame_first], counts)
    )
    tags = data[starts]
    tag_ok = np.zeros(256, np.bool_)
    tag_ok[list(binfmt._KNOWN_TAGS)] = True
    ok = tag_ok[tags]
    if not ok.all():
        bad = _first_bad(ok)
        raise StreamFormatError(
            f"{label}: record {bad} carries unknown tag {int(tags[bad])}",
            byte_offset=int(starts[bad]),
        )
    file_lens = (
        data[starts + 1].astype(np.int64)
        | (data[starts + 2].astype(np.int64) << 8)
        | (data[starts + 3].astype(np.int64) << 16)
        | (data[starts + 4].astype(np.int64) << 24)
    )
    ok = file_lens == rec_lens
    if not ok.all():
        bad = _first_bad(ok)
        raise StreamFormatError(
            f"{label}: record {bad} length prefix {int(file_lens[bad])} "
            f"disagrees with witness length {int(rec_lens[bad])}",
            byte_offset=int(starts[bad]) + 1,
        )
    return n_frames, n_records


def preverify_shard(path: str | Path) -> "tuple[int, int] | None":
    """Verify a shard against its sidecar once, before replay.

    Returns ``(frames, records)`` when the shard is proven well-formed,
    or ``None`` when no proof is possible and the caller must fall back
    to the per-frame walk: sidecar absent, numpy absent, or sidecar
    stale (recorded file size differs — the stream was rewritten after
    the witness).  Raises :class:`~repro.errors.StreamFormatError` when
    the sidecar matches the file's size but not its bytes: that is
    corruption, not staleness.
    """
    if _np is None:
        return None
    wit = load_witness(witness_path(path))
    if wit is None:
        return None
    import os

    try:
        if os.path.getsize(path) != wit.file_size:
            return None  # stale sidecar: stream rewritten, no proof
    except OSError:
        return None
    from repro.core import binfmt

    mapped = binfmt._open_binary_view(path)
    try:
        return verify_stream(mapped, wit, path=str(path))
    finally:
        try:
            mapped.close()
        except BufferError:
            # A raising verify's traceback still references its numpy
            # views of the mapping; it closes when the exception dies.
            pass


def count_verified_frame(frame) -> int:
    """Per-batch count for a witness-verified shard: the frame header
    (already proven against the record walk in bulk) is read, not
    re-walked.  This is the decode-mode hot loop — one ``unpack_from``
    per batch."""
    try:
        return _frame_header_unpack(frame, 0)[1]
    except struct.error:
        raise StreamFormatError(
            "truncated binary frame header", byte_offset=0
        ) from None


# Bound late so ``import repro.core.witness`` never recurses into
# binfmt's own lazy ``import witness`` (writer close path).
from repro.core.binfmt import _FRAME_HEADER as _FH  # noqa: E402

_frame_header_unpack = _FH.unpack_from
