"""Runtime resilience layer: chaos injection, retries, circuit breaking.

The a-priori fault injectors (:mod:`repro.core.faults`) derive a faulty
*stream* before replay; this module injects faults into the *live
pipeline* while it runs, and provides the delivery machinery that lets
a replay survive them:

* :class:`ChaosTransport` — wraps any
  :class:`~repro.core.connectors.Transport` and injects runtime faults
  (failed sends, connection resets, partial-batch writes, added
  latency).  All draws come from one seeded RNG in a fixed per-operation
  order, so two runs with the same seed inject byte-identical fault
  sequences (the determinism contract of paper section 5).
* :class:`RetryPolicy` / :class:`RetryingTransport` — exponential
  backoff with seeded jitter, attempt and deadline caps, resuming
  partial batches where the failure reported how much was delivered and
  resending (redelivering) unacknowledged lines.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine, so a dead system under test degrades the run (fail fast,
  checkpoint, resume) instead of wedging it in endless retries.

The replayer reads the counters back through
:func:`collect_fault_counters`, which walks a wrapper chain and sums
what it finds into one :class:`FaultCounters` snapshot for the
:class:`~repro.core.replayer.ReplayReport`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.core.connectors import Transport
from repro.errors import (
    CircuitOpenError,
    ConnectorError,
    DeliveryExhaustedError,
    TransientTransportError,
)

__all__ = [
    "ChaosConfig",
    "ChaosStats",
    "ChaosTransport",
    "RetryPolicy",
    "DeliveryStats",
    "RetryingTransport",
    "CircuitBreaker",
    "FaultCounters",
    "collect_fault_counters",
    "build_transport_chain",
]


def _validated_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


# -- chaos injection ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Seeded runtime fault mix for one :class:`ChaosTransport`.

    Probabilities are per *send operation* (one ``send`` call or one
    ``send_many`` batch).  Fault kinds, checked in a fixed order:

    * ``reset_probability`` — the whole batch is written but the
      connection "resets" before acknowledgement: the retrier must
      resend it (at-least-once redelivery);
    * ``send_failure_probability`` — the send fails before anything is
      written (clean retry, exactly-once);
    * ``partial_batch_probability`` — only a prefix of the batch is
      written; the error reports how much, so the retrier resumes
      mid-batch;
    * ``latency_probability`` — the send succeeds but is delayed by
      ``latency_seconds``.
    """

    send_failure_probability: float = 0.0
    reset_probability: float = 0.0
    partial_batch_probability: float = 0.0
    latency_probability: float = 0.0
    latency_seconds: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _validated_probability("send_failure_probability", self.send_failure_probability)
        _validated_probability("reset_probability", self.reset_probability)
        _validated_probability("partial_batch_probability", self.partial_batch_probability)
        _validated_probability("latency_probability", self.latency_probability)
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")

    @property
    def is_noop(self) -> bool:
        return (
            self.send_failure_probability == 0.0
            and self.reset_probability == 0.0
            and self.partial_batch_probability == 0.0
            and self.latency_probability == 0.0
        )


@dataclass(slots=True)
class ChaosStats:
    """Counters of the faults one :class:`ChaosTransport` injected."""

    operations: int = 0
    send_failures: int = 0
    resets: int = 0
    partial_batches: int = 0
    latency_injections: int = 0

    @property
    def total_faults(self) -> int:
        return self.send_failures + self.resets + self.partial_batches


class ChaosTransport(Transport):
    """Injects seeded runtime faults around an inner transport.

    Every operation draws the same fixed number of random values
    (one per fault kind plus one cut-point), so the injected fault
    sequence is a pure function of ``config.seed`` and the operation
    index — independent of batch contents and timing.  The sequence is
    recorded in :attr:`trace` as ``(operation_index, fault_kind)``
    pairs for determinism tests and post-run analysis.
    """

    def __init__(self, inner: Transport, config: ChaosConfig, sleep: Callable[[float], None] = time.sleep):
        self._inner = inner
        self.config = config
        self._rng = random.Random(config.seed)
        self._sleep = sleep
        self.stats = ChaosStats()
        self.trace: list[tuple[int, str]] = []

    def _draw(self) -> tuple[float, float, float, float, float]:
        rng = self._rng
        # Fixed draw count per operation keeps the sequence aligned
        # across runs regardless of which faults actually fire.
        return (rng.random(), rng.random(), rng.random(), rng.random(), rng.random())

    def _next_fault(self, batch_len: int) -> tuple[str, int]:
        """Decide this operation's fault: ``(kind, cut_point)``."""
        config = self.config
        reset, failure, partial, latency, cut = self._draw()
        operation = self.stats.operations
        self.stats.operations += 1
        if reset < config.reset_probability:
            self.stats.resets += 1
            self.trace.append((operation, "reset"))
            return "reset", 0
        if failure < config.send_failure_probability:
            self.stats.send_failures += 1
            self.trace.append((operation, "send_failure"))
            return "send_failure", 0
        if batch_len > 1 and partial < config.partial_batch_probability:
            self.stats.partial_batches += 1
            self.trace.append((operation, "partial"))
            return "partial", int(cut * (batch_len - 1))
        if latency < config.latency_probability:
            self.stats.latency_injections += 1
            self.trace.append((operation, "latency"))
            return "latency", 0
        self.trace.append((operation, "ok"))
        return "ok", 0

    def send(self, line: str) -> None:
        kind, __ = self._next_fault(1)
        if kind == "reset":
            self._inner.send(line)
            raise TransientTransportError(
                "injected connection reset (line unacknowledged)",
                unacknowledged=1,
            )
        if kind == "send_failure":
            raise TransientTransportError("injected send failure")
        if kind == "latency":
            self._sleep(self.config.latency_seconds)
        self._inner.send(line)

    def send_many(self, lines: Iterable[str]) -> None:
        if not isinstance(lines, list):
            lines = list(lines)
        if not lines:
            return
        kind, cut = self._next_fault(len(lines))
        if kind == "reset":
            # Delivered but never acknowledged: the retrier will resend.
            self._inner.send_many(lines)
            raise TransientTransportError(
                "injected connection reset (batch unacknowledged)",
                unacknowledged=len(lines),
            )
        if kind == "send_failure":
            raise TransientTransportError("injected send failure")
        if kind == "partial":
            if cut:
                self._inner.send_many(lines[:cut])
            raise TransientTransportError(
                f"injected partial batch failure ({cut}/{len(lines)} delivered)",
                delivered=cut,
            )
        if kind == "latency":
            self._sleep(self.config.latency_seconds)
        self._inner.send_many(lines)

    def send_frame(self, frame: "bytes | memoryview", count: int) -> None:
        """Inject faults at frame granularity.

        A frame is atomic on the binary wire, so a "partial" fault
        delivers nothing (``delivered=0``) and the retrier resends the
        whole frame — the at-least-once contract, just with a coarser
        delivery unit than the CSV line path.
        """
        kind, __ = self._next_fault(count)
        if kind == "reset":
            self._inner.send_frame(frame, count)
            raise TransientTransportError(
                "injected connection reset (frame unacknowledged)",
                unacknowledged=count,
            )
        if kind == "send_failure":
            raise TransientTransportError("injected send failure")
        if kind == "partial":
            raise TransientTransportError(
                f"injected partial batch failure (0/{count} delivered; "
                "frames are atomic)",
                delivered=0,
            )
        if kind == "latency":
            self._sleep(self.config.latency_seconds)
        self._inner.send_frame(frame, count)

    def close(self) -> None:
        self._inner.close()


# -- retry / backoff ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter and hard caps.

    ``max_attempts`` bounds tries per operation (1 = no retries);
    ``deadline`` bounds the total wall-clock time spent on one
    operation including backoff sleeps.  Jitter is drawn from a seeded
    RNG so retry timing is reproducible run-to-run.
    """

    max_attempts: int = 5
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    deadline: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive or None")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


@dataclass(slots=True)
class DeliveryStats:
    """Counters of one :class:`RetryingTransport`'s delivery work."""

    operations: int = 0
    attempts: int = 0
    retries: int = 0
    redelivered_lines: int = 0
    breaker_rejections: int = 0
    exhausted: int = 0


class CircuitBreaker:
    """Closed → open → half-open failure containment.

    After ``failure_threshold`` consecutive failures the breaker opens:
    :meth:`allow` refuses deliveries for ``recovery_time`` seconds,
    then lets probe attempts through (half-open).  A probe success
    closes the breaker; a probe failure reopens it.  ``clock`` is
    injectable so tests need not sleep through recovery windows.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold <= 0:
            raise ValueError(f"failure_threshold must be positive, got {failure_threshold}")
        if recovery_time < 0:
            raise ValueError("recovery_time must be >= 0")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.openings = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """May a delivery be attempted right now?"""
        if self._state == self.OPEN:
            if self._clock() - self._opened_at >= self.recovery_time:
                self._state = self.HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = self.CLOSED

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state == self.HALF_OPEN:
            self._trip()
        elif self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self.openings += 1


class RetryingTransport(Transport):
    """Retries transient failures of an inner transport.

    Only :class:`~repro.errors.TransientTransportError` is retried —
    other :class:`~repro.errors.ConnectorError`\\ s (closed transport,
    broken pipe) propagate immediately.  Partial-batch failures resume
    from the reported delivered prefix; unacknowledged lines are resent
    and counted as redeliveries (at-least-once).  With a breaker
    attached, an open circuit raises
    :class:`~repro.errors.CircuitOpenError` without touching the inner
    transport.
    """

    def __init__(
        self,
        inner: Transport,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.breaker = breaker
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(self.policy.seed)
        self.stats = DeliveryStats()

    def send(self, line: str) -> None:
        self.send_many([line])

    def send_many(self, lines: Iterable[str]) -> None:
        if not isinstance(lines, list):
            lines = list(lines)
        if not lines:
            return
        policy = self.policy
        breaker = self.breaker
        stats = self.stats
        stats.operations += 1
        started = self._clock()
        offset = 0
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow():
                stats.breaker_rejections += 1
                raise CircuitOpenError(
                    f"circuit open after {breaker.openings} opening(s); "
                    f"{len(lines) - offset} line(s) undelivered"
                )
            attempt += 1
            stats.attempts += 1
            try:
                self._inner.send_many(lines[offset:])
            except TransientTransportError as exc:
                offset += exc.delivered
                stats.redelivered_lines += exc.unacknowledged
                if breaker is not None:
                    breaker.record_failure()
                out_of_attempts = attempt >= policy.max_attempts
                out_of_time = (
                    policy.deadline is not None
                    and self._clock() - started >= policy.deadline
                )
                if out_of_attempts or out_of_time:
                    stats.exhausted += 1
                    reason = "attempts" if out_of_attempts else "deadline"
                    raise DeliveryExhaustedError(
                        f"gave up after {attempt} attempt(s) ({reason} "
                        f"exhausted): {exc}",
                        attempts=attempt,
                    ) from exc
                stats.retries += 1
                self._sleep(policy.delay(attempt, self._rng))
            else:
                if breaker is not None:
                    breaker.record_success()
                return

    def send_frame(self, frame: "bytes | memoryview", count: int) -> None:
        """Retry a binary frame as one atomic unit.

        Frames have no delivered-prefix resume (the wire unit is the
        whole frame), so every retry resends it and unacknowledged
        records count as redeliveries, same as the line path.
        """
        policy = self.policy
        breaker = self.breaker
        stats = self.stats
        stats.operations += 1
        started = self._clock()
        attempt = 0
        while True:
            if breaker is not None and not breaker.allow():
                stats.breaker_rejections += 1
                raise CircuitOpenError(
                    f"circuit open after {breaker.openings} opening(s); "
                    f"{count} record(s) undelivered"
                )
            attempt += 1
            stats.attempts += 1
            try:
                self._inner.send_frame(frame, count)
            except TransientTransportError as exc:
                stats.redelivered_lines += exc.unacknowledged
                if breaker is not None:
                    breaker.record_failure()
                out_of_attempts = attempt >= policy.max_attempts
                out_of_time = (
                    policy.deadline is not None
                    and self._clock() - started >= policy.deadline
                )
                if out_of_attempts or out_of_time:
                    stats.exhausted += 1
                    reason = "attempts" if out_of_attempts else "deadline"
                    raise DeliveryExhaustedError(
                        f"gave up after {attempt} attempt(s) ({reason} "
                        f"exhausted): {exc}",
                        attempts=attempt,
                    ) from exc
                stats.retries += 1
                self._sleep(policy.delay(attempt, self._rng))
            else:
                if breaker is not None:
                    breaker.record_success()
                return

    def close(self) -> None:
        self._inner.close()


# -- counter collection ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FaultCounters:
    """Aggregated fault/recovery counters from a transport chain."""

    retries: int = 0
    redeliveries: int = 0
    breaker_openings: int = 0
    chaos_faults: int = 0
    delivery_attempts: int = 0

    def merged(self, other: "FaultCounters") -> "FaultCounters":
        return FaultCounters(
            retries=self.retries + other.retries,
            redeliveries=self.redeliveries + other.redeliveries,
            breaker_openings=self.breaker_openings + other.breaker_openings,
            chaos_faults=self.chaos_faults + other.chaos_faults,
            delivery_attempts=self.delivery_attempts + other.delivery_attempts,
        )


def collect_fault_counters(transport: Transport | None) -> FaultCounters:
    """Sum resilience counters along a transport wrapper chain.

    Walks ``_inner`` links (``RetryingTransport`` around
    ``ChaosTransport`` around a base transport, in any order/depth) and
    aggregates whatever stats it finds; plain transports contribute
    zeros, so callers can use this unconditionally.
    """
    counters = FaultCounters()
    seen: set[int] = set()
    current = transport
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        if isinstance(current, RetryingTransport):
            stats = current.stats
            breaker = current.breaker
            counters = counters.merged(
                FaultCounters(
                    retries=stats.retries,
                    redeliveries=stats.redelivered_lines,
                    breaker_openings=breaker.openings if breaker else 0,
                    delivery_attempts=stats.attempts,
                )
            )
        elif isinstance(current, ChaosTransport):
            counters = counters.merged(
                FaultCounters(chaos_faults=current.stats.total_faults)
            )
        current = getattr(current, "_inner", None)
    return counters


# -- chain composition -------------------------------------------------------


def build_transport_chain(
    base: Transport,
    chaos_config: ChaosConfig | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker_threshold: int = 0,
    breaker_recovery: float = 1.0,
) -> Transport:
    """Compose the standard delivery chain: base -> chaos -> retrying.

    The single place the wrapper order is defined, shared by the CLI
    and the sharded replayer's worker processes (which rebuild the
    chain from picklable configs after the fork/spawn).  No-op configs
    add no wrapper: a ``chaos_config`` whose probabilities are all zero
    and a missing ``retry_policy`` with ``breaker_threshold == 0``
    return ``base`` unchanged.
    """
    transport = base
    if chaos_config is not None and not chaos_config.is_noop:
        transport = ChaosTransport(transport, chaos_config)
    if retry_policy is not None or breaker_threshold > 0:
        breaker = None
        if breaker_threshold > 0:
            breaker = CircuitBreaker(
                failure_threshold=breaker_threshold,
                recovery_time=breaker_recovery,
            )
        transport = RetryingTransport(
            transport,
            retry_policy if retry_policy is not None else RetryPolicy(),
            breaker=breaker,
        )
    return transport
