"""The test harness: wires replayer, platform, loggers and collector
(paper section 4.1, Figure 2).

A :class:`TestHarness` runs one experiment: it replays a graph stream
into the system under test on the simulation clock, runs the metrics
loggers appropriate for the requested evaluation level, waits for the
platform to drain its backlog (up to a grace horizon), and returns a
:class:`RunResult` with the merged, chronologically sorted result log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.collector import collect_records
from repro.core.loggers import ObjectSeriesLogger, SimPeriodicLogger
from repro.core.probes import CpuUtilizationProbe, InternalProbe, NativeMetricsProbe
from repro.core.resultlog import Record, ResultLog
from repro.core.stream import GraphStream
from repro.core.tracing import TraceClock, Tracer
from repro.errors import GraphTidesError
from repro.platforms.base import FaultSchedule, Platform
from repro.sim.kernel import Simulation
from repro.sim.replay import SimulatedReplayer

__all__ = [
    "HarnessConfig",
    "RunResult",
    "TestHarness",
    "InternalProbeSpec",
    "FaultRecovery",
]


@dataclass(frozen=True, slots=True)
class InternalProbeSpec:
    """Declares one Level-2 internal probe to log periodically.

    ``extract`` may turn the probed object into a float or a list of
    (source-suffix, float) pairs; see
    :class:`~repro.core.probes.InternalProbe`.
    """

    probe_name: str
    metric: str
    extract: Callable[[Any], float | list[tuple[str, float]]] | None = None


@dataclass(frozen=True, slots=True)
class HarnessConfig:
    """Configuration of one harness run.

    ``rate`` is the base replay rate (events/second).  ``level``
    selects which metric layers to collect (capped by what the platform
    supports — requesting more raises at construction, matching how an
    analyst cannot run a level-2 evaluation on a black box).
    ``drain_grace`` bounds how long (simulated seconds) the harness
    waits after replay end for the platform to drain; ``log_interval``
    is the logger sampling period.
    """

    rate: float
    level: int = 0
    log_interval: float = 1.0
    drain_grace: float = 600.0
    drain_poll_interval: float = 0.25
    retry_interval: float = 0.001
    #: Hard horizon on the whole run (simulated seconds); ``None`` means
    #: unbounded.  Protects against platforms that cannot absorb the
    #: stream at all (permanent back-throttling).
    max_duration: float | None = None
    #: Timed platform crash/recovery schedule; ``None`` runs fault-free.
    #: With a schedule, the harness additionally samples the platform's
    #: client-observable backlog each ``log_interval`` and reports
    #: per-fault recovery (see :class:`FaultRecovery`).
    fault_schedule: FaultSchedule | None = None
    #: Enable end-to-end event tracing: the harness creates a
    #: :class:`~repro.core.tracing.Tracer` on the simulation clock,
    #: attaches it to the replayer, the platform, and every periodic
    #: logger, and merges the resulting span records into the run log.
    trace: bool = False
    #: Span sampling stride (1 = trace every event).  Phase counters
    #: stay exact regardless, so accounting closes at any stride.
    trace_sample_every: int = 1
    #: Replay the stream through this many parallel (simulated)
    #: replayers, each driving a marker-aligned shard at
    #: ``rate / replay_workers`` — the simulation-side mirror of the
    #: live :class:`~repro.core.sharding.ShardedReplayer`.
    replay_workers: int = 1
    #: Graph-event partitioning strategy for ``replay_workers > 1``
    #: (see :func:`repro.core.sharding.partition_stream`).
    shard_by: str = "round-robin"

    def __post_init__(self) -> None:
        if self.trace_sample_every < 1:
            raise ValueError(
                f"trace_sample_every must be >= 1, got {self.trace_sample_every}"
            )
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.level not in (0, 1, 2):
            raise ValueError(f"level must be 0, 1, or 2, got {self.level}")
        if self.log_interval <= 0:
            raise ValueError("log_interval must be positive")
        if self.drain_grace < 0:
            raise ValueError("drain_grace must be >= 0")
        if self.drain_poll_interval <= 0:
            raise ValueError("drain_poll_interval must be positive")
        if self.max_duration is not None and self.max_duration <= 0:
            raise ValueError("max_duration must be positive or None")
        if self.replay_workers <= 0:
            raise ValueError(
                f"replay_workers must be positive, got {self.replay_workers}"
            )
        from repro.core.sharding import SHARD_STRATEGIES

        if self.shard_by not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard_by {self.shard_by!r}; "
                f"expected one of {SHARD_STRATEGIES}"
            )


@dataclass(frozen=True, slots=True)
class FaultRecovery:
    """Recovery behaviour of one scheduled crash/restore pair.

    ``backlog_at_crash`` is the pre-crash steady backlog envelope (the
    largest backlog sampled before the crash); ``backlog_peak`` bounds
    the growth during the outage; ``recovery_seconds`` is how long
    after restore the backlog first returned to that pre-crash level
    (``None`` when it never did within the run — degradation without
    recovery).
    """

    process: str
    crash_at: float
    restore_at: float
    backlog_at_crash: int
    backlog_peak: int
    recovery_seconds: float | None

    @property
    def recovered(self) -> bool:
        return self.recovery_seconds is not None


@dataclass(slots=True)
class RunResult:
    """Outcome of one harness run."""

    log: ResultLog
    duration: float
    events_emitted: int
    events_processed: int
    rejected_attempts: int
    drained: bool
    object_series: dict[str, list[tuple[float, Any]]] = field(default_factory=dict)
    #: Armed crash/restore timeline: ``(time, action, process)``.
    fault_events: list[tuple[float, str, str]] = field(default_factory=list)
    #: Per-crash recovery measurements (one entry per crash/restore pair).
    recoveries: list[FaultRecovery] = field(default_factory=list)
    #: The run's tracer when ``HarnessConfig.trace`` was set, else None.
    tracer: Tracer | None = None

    @property
    def mean_throughput(self) -> float:
        """Processed events per simulated second over the whole run."""
        return self.events_processed / self.duration if self.duration > 0 else 0.0


class TestHarness:
    """Runs one evaluation of a platform against a stream.

    Observation layers by level (cumulative):

    * level 0 — replayer instrumentation (ingress rate, markers) and
      per-process CPU probes;
    * level 1 — the platform's native metrics, sampled periodically;
    * level 2 — the configured :class:`InternalProbeSpec` probes.

    Additional hooks: ``query_probes`` map a metric name to a callable
    ``platform -> float`` sampled each interval via the platform's
    *public* query interface (allowed at every level — it is the normal
    results interface); ``object_probes`` capture full objects for
    retrospective analyses.
    """

    #: Not a pytest test class despite the Test- prefix.
    __test__ = False

    def __init__(
        self,
        platform: Platform,
        stream: GraphStream,
        config: HarnessConfig,
        internal_probes: list[InternalProbeSpec] | None = None,
        query_probes: dict[str, Callable[[Platform], float]] | None = None,
        object_probes: dict[str, Callable[[Platform], Any]] | None = None,
    ):
        if config.level > platform.evaluation_level:
            raise GraphTidesError(
                f"requested evaluation level {config.level}, but platform "
                f"{platform.name!r} only supports level "
                f"{platform.evaluation_level}"
            )
        if internal_probes and config.level < 2:
            raise GraphTidesError("internal probes require evaluation level 2")
        self.platform = platform
        self.stream = stream
        self.config = config
        self.internal_probes = internal_probes or []
        self.query_probes = query_probes or {}
        self.object_probes = object_probes or {}

    def run(self) -> RunResult:
        """Execute the evaluation and return the collected results."""
        sim = Simulation()
        platform = self.platform
        config = self.config
        platform.attach(sim)

        tracer: Tracer | None = None
        if config.trace:
            tracer = Tracer(
                clock=TraceClock.for_simulation(sim),
                sample_every=config.trace_sample_every,
                metadata={"mode": "simulated", "platform": platform.name},
            )
        platform.attach_tracer(tracer)

        if config.replay_workers == 1:
            shards = [self.stream]
        else:
            from repro.core.sharding import partition_stream

            shards = partition_stream(
                self.stream, config.replay_workers, config.shard_by
            )
        replayers = [
            SimulatedReplayer(
                sim,
                shard,
                platform,
                rate=config.rate / config.replay_workers,
                retry_interval=config.retry_interval,
                rate_sample_interval=config.log_interval,
                source_name=(
                    "replayer"
                    if config.replay_workers == 1
                    else f"replayer-{index}"
                ),
                tracer=tracer,
            )
            for index, shard in enumerate(shards)
        ]

        loggers: list[SimPeriodicLogger] = []
        object_loggers: list[ObjectSeriesLogger] = []

        fault_events: list[tuple[float, str, str]] = []
        backlog_samples: list[tuple[float, int]] = []
        if config.fault_schedule is not None and not config.fault_schedule.is_noop:
            fault_events = platform.schedule_faults(config.fault_schedule)

            def backlog_probe() -> list[Record]:
                backlog = platform.backlog
                backlog_samples.append((sim.now, backlog))
                return [
                    Record(
                        timestamp=sim.now,
                        source="harness",
                        metric="backlog",
                        value=float(backlog),
                    )
                ]

            loggers.append(
                SimPeriodicLogger(
                    sim, config.log_interval, backlog_probe,
                    name="backlog-probe", tracer=tracer,
                )
            )

        loggers.append(
            SimPeriodicLogger(
                sim,
                config.log_interval,
                CpuUtilizationProbe(platform, sim),
                name="cpu-probe",
                tracer=tracer,
            )
        )
        if config.level >= 1:
            loggers.append(
                SimPeriodicLogger(
                    sim,
                    config.log_interval,
                    NativeMetricsProbe(platform, sim),
                    name="native-metrics",
                    tracer=tracer,
                )
            )
        if config.level >= 2:
            for spec in self.internal_probes:
                loggers.append(
                    SimPeriodicLogger(
                        sim,
                        config.log_interval,
                        InternalProbe(
                            platform, sim, spec.probe_name, spec.metric, spec.extract
                        ),
                        name=f"internal-{spec.probe_name}",
                        tracer=tracer,
                    )
                )
        for metric, fn in self.query_probes.items():
            loggers.append(
                SimPeriodicLogger(
                    sim,
                    config.log_interval,
                    _make_query_probe(sim, platform, metric, fn),
                    name=f"query-{metric}",
                    tracer=tracer,
                )
            )
        for name, capture in self.object_probes.items():
            object_loggers.append(
                ObjectSeriesLogger(
                    sim,
                    config.log_interval,
                    lambda capture=capture: capture(platform),
                    name=name,
                )
            )

        for logger in loggers:
            logger.start()
        for logger in object_loggers:
            logger.start()
        for replayer in replayers:
            replayer.start()

        # Supervisor: end-of-stream flush, drain detection, logger stop.
        state = {"stream_ended": False, "drained": False, "deadline": None}

        def stop_logging() -> None:
            for logger in loggers:
                logger.stop()
            for logger in object_loggers:
                logger.stop()
            platform.shutdown()

        def supervise() -> None:
            if config.max_duration is not None and sim.now >= config.max_duration:
                for replayer in replayers:
                    if not replayer.finished:
                        replayer.stop()
            if all(r.finished for r in replayers) and not state["stream_ended"]:
                state["stream_ended"] = True
                platform.on_stream_end()
                state["deadline"] = sim.now + config.drain_grace
            if state["stream_ended"]:
                if platform.is_drained:
                    state["drained"] = True
                    stop_logging()
                    return
                if state["deadline"] is not None and sim.now >= state["deadline"]:
                    stop_logging()
                    return
            sim.schedule(config.drain_poll_interval, supervise)

        sim.schedule(config.drain_poll_interval, supervise)
        sim.run()

        if fault_events:
            # Final backlog observation: the periodic probe stops with
            # the loggers, so a run that drained right at the end would
            # otherwise never show its backlog back at zero.
            backlog_samples.append((sim.now, platform.backlog))

        fault_records = [
            Record(
                timestamp=at,
                source="harness",
                metric="fault",
                value=1.0 if action == "crash" else 0.0,
                kind="result",
                tags={"action": action, "process": process},
            )
            for at, action, process in fault_events
            if at <= sim.now
        ]
        log = collect_records(
            *(replayer.records for replayer in replayers),
            *(logger.records for logger in loggers),
            fault_records,
            tracer.to_records() if tracer is not None else [],
        )
        return RunResult(
            log=log,
            duration=sim.now,
            events_emitted=sum(r.emitted for r in replayers),
            events_processed=platform.events_processed(),
            rejected_attempts=sum(r.rejected_attempts for r in replayers),
            drained=state["drained"],
            object_series={
                logger.name: logger.samples for logger in object_loggers
            },
            fault_events=fault_events,
            recoveries=_compute_recoveries(fault_events, backlog_samples),
            tracer=tracer,
        )


def _compute_recoveries(
    fault_events: list[tuple[float, str, str]],
    backlog_samples: list[tuple[float, int]],
) -> list[FaultRecovery]:
    """Pair crash/restore events and measure backlog recovery.

    The pre-crash level is the *envelope* (maximum) of the backlog
    samples taken before the crash, not the last instantaneous sample:
    a serial pipeline under continuous load holds O(1) events in flight
    at any sampling instant, so a point baseline that happened to catch
    an idle instant would make recovery undetectable.  Recovery time is
    measured from the restore instant to the first backlog sample at or
    below that envelope; ``None`` when the run ended before the backlog
    got back down.
    """
    recoveries: list[FaultRecovery] = []
    restores: dict[str, list[float]] = {}
    for at, action, process in fault_events:
        if action == "restore":
            restores.setdefault(process, []).append(at)
    for at, action, process in fault_events:
        if action != "crash":
            continue
        candidates = [t for t in restores.get(process, ()) if t > at]
        if not candidates:
            continue
        restore_at = min(candidates)
        before = [value for t, value in backlog_samples if t <= at]
        baseline = max(before) if before else 0
        outage = [value for t, value in backlog_samples if at <= t <= restore_at]
        after = [value for t, value in backlog_samples if t >= restore_at]
        peak = max(outage + after[:1], default=baseline)
        recovery_seconds = None
        for t, value in backlog_samples:
            if t >= restore_at and value <= baseline:
                recovery_seconds = t - restore_at
                break
        recoveries.append(
            FaultRecovery(
                process=process,
                crash_at=at,
                restore_at=restore_at,
                backlog_at_crash=baseline,
                backlog_peak=peak,
                recovery_seconds=recovery_seconds,
            )
        )
    return recoveries


def _make_query_probe(
    sim: Simulation,
    platform: Platform,
    metric: str,
    fn: Callable[[Platform], float],
) -> Callable[[], list[Record]]:
    def probe() -> list[Record]:
        return [
            Record(
                timestamp=sim.now,
                source=platform.name,
                metric=metric,
                value=float(fn(platform)),
                kind="result",
            )
        ]

    return probe
