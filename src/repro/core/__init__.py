"""GraphTides core framework: events, streams, generator, replayer,
metrics, harness, and evaluation methodology."""

from repro.core.events import (
    EdgeId,
    Event,
    EventType,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
    SpeedEvent,
    add_edge,
    add_vertex,
    marker,
    pause,
    remove_edge,
    remove_vertex,
    speed,
    update_edge,
    update_vertex,
)
from repro.core.stream import GraphStream, StreamStatistics

__all__ = [
    "EventType",
    "Event",
    "GraphEvent",
    "MarkerEvent",
    "SpeedEvent",
    "PauseEvent",
    "EdgeId",
    "GraphStream",
    "StreamStatistics",
    "add_vertex",
    "remove_vertex",
    "update_vertex",
    "add_edge",
    "remove_edge",
    "update_edge",
    "marker",
    "speed",
    "pause",
]
