"""Evaluation methodology (paper sections 2.3 and 4.5).

Implements the statistically rigorous procedure the paper adopts from
Jain: declare the experiment's factors and levels, run (full factorial)
designs with repetitions, aggregate each configuration, and compare
systems by confidence-interval overlap — "non-overlapping confidence
intervals of the results from two different systems are indeed
significantly different under the given interval".  The paper requires
n >= 30 runs per configuration (central limit theorem);
:func:`repeat_runs` warns below that via the result's ``meets_n30``
flag rather than refusing, since exploratory runs are legitimate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.core.metrics import Aggregate
from repro.errors import MethodologyError

__all__ = [
    "Factor",
    "ExperimentDesign",
    "RepeatedRuns",
    "repeat_runs",
    "ComparisonVerdict",
    "ComparisonResult",
    "compare",
    "MINIMUM_RECOMMENDED_RUNS",
]

#: Section 4.5: "at least n >= 30 test runs for each configuration".
MINIMUM_RECOMMENDED_RUNS = 30


@dataclass(frozen=True, slots=True)
class Factor:
    """One experiment factor and the levels it is varied over."""

    name: str
    levels: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise MethodologyError(f"factor {self.name!r} needs at least one level")


@dataclass(frozen=True, slots=True)
class ExperimentDesign:
    """A set of factors, expandable into concrete configurations.

    :meth:`full_factorial` yields every combination of factor levels
    (the paper's "full factorial designs where all levels of all
    factors are considered"); :meth:`one_factor_at_a_time` varies one
    factor while holding the others at their first (baseline) level.
    """

    factors: tuple[Factor, ...]

    def __post_init__(self) -> None:
        names = [factor.name for factor in self.factors]
        if len(names) != len(set(names)):
            raise MethodologyError("factor names must be unique")
        if not self.factors:
            raise MethodologyError("design needs at least one factor")

    @property
    def configuration_count(self) -> int:
        count = 1
        for factor in self.factors:
            count *= len(factor.levels)
        return count

    def full_factorial(self) -> Iterator[dict[str, Any]]:
        """Every combination of all factor levels."""
        names = [factor.name for factor in self.factors]
        for combination in itertools.product(
            *(factor.levels for factor in self.factors)
        ):
            yield dict(zip(names, combination))

    def one_factor_at_a_time(self) -> Iterator[dict[str, Any]]:
        """Baseline config plus single-factor variations.

        The baseline (all factors at their first level) is yielded
        once, then each non-baseline level of each factor.
        """
        baseline = {factor.name: factor.levels[0] for factor in self.factors}
        yield dict(baseline)
        for factor in self.factors:
            for level in factor.levels[1:]:
                config = dict(baseline)
                config[factor.name] = level
                yield config


@dataclass(frozen=True, slots=True)
class RepeatedRuns:
    """Aggregated outcome of repeated runs of one configuration."""

    values: tuple[float, ...]
    aggregate: Aggregate
    meets_n30: bool

    @property
    def count(self) -> int:
        return len(self.values)


def repeat_runs(
    run: Callable[[int], float],
    repetitions: int,
    confidence: float = 0.95,
) -> RepeatedRuns:
    """Execute ``run(seed)`` for seeds ``0..repetitions-1`` and aggregate.

    ``run`` maps a seed to the scalar outcome metric of one test run.
    The seed doubles as the run index, making repetitions reproducible.
    """
    if repetitions < 2:
        raise MethodologyError(
            f"need at least 2 repetitions for interval estimates, "
            f"got {repetitions}"
        )
    values = tuple(float(run(seed)) for seed in range(repetitions))
    return RepeatedRuns(
        values=values,
        aggregate=Aggregate.of(values, confidence=confidence),
        meets_n30=repetitions >= MINIMUM_RECOMMENDED_RUNS,
    )


class ComparisonVerdict:
    """Outcome categories of a CI-overlap comparison."""

    A_BETTER = "a_better"
    B_BETTER = "b_better"
    INDISTINGUISHABLE = "indistinguishable"


@dataclass(frozen=True, slots=True)
class ComparisonResult:
    """Result of comparing two systems on one metric.

    ``verdict`` names the significantly better side (per the metric's
    optimum direction) or ``indistinguishable`` when the confidence
    intervals overlap.
    """

    a: Aggregate
    b: Aggregate
    higher_is_better: bool
    verdict: str
    intervals_overlap: bool

    @property
    def significant(self) -> bool:
        return not self.intervals_overlap


def compare(
    a_values: Sequence[float],
    b_values: Sequence[float],
    higher_is_better: bool = True,
    confidence: float = 0.95,
) -> ComparisonResult:
    """CI-overlap comparison of two measurement sets (section 4.5).

    Single-measurement sides have no confidence interval, so no
    significant difference can be claimed: the verdict degrades to
    ``indistinguishable`` (with ``intervals_overlap=True``) instead of
    raising, since callers like the perf-regression threshold check
    legitimately feed single-repeat runs.  Mismatched sample counts and
    zero-variance sides (zero-width intervals) compare normally.
    """
    a = Aggregate.of(a_values, confidence=confidence)
    b = Aggregate.of(b_values, confidence=confidence)
    if len(a_values) < 2 or len(b_values) < 2:
        overlap = True
    else:
        overlap = a.overlaps(b)
    if overlap:
        verdict = ComparisonVerdict.INDISTINGUISHABLE
    else:
        a_wins = a.mean > b.mean if higher_is_better else a.mean < b.mean
        verdict = (
            ComparisonVerdict.A_BETTER if a_wins else ComparisonVerdict.B_BETTER
        )
    return ComparisonResult(
        a=a,
        b=b,
        higher_is_better=higher_is_better,
        verdict=verdict,
        intervals_overlap=overlap,
    )
