"""Popper-convention experiment packaging (paper sections 2.3 and 4.5).

"Popper represents a modern approach for conducting systems experiments
which take into account automation and reproducibility ... It also
specifies a skeleton structure for experiment repositories."  The paper
follows the Popper conventions for its own evaluations (section 5).

This module packages one experiment run into a self-describing
directory so it can be archived, shared, and re-executed::

    <experiment>/
        metadata.json     experiment id, description, timestamps, seeds
        config.json       the harness + workload parameters
        stream.csv        the exact input stream that was replayed
        result.jsonl      the merged, chronologically sorted result log
        summary.json      headline outcomes (throughput, drain, markers)
        README.md         human-readable card for the experiment

:func:`package_run` writes the bundle; :func:`load_bundle` reads it
back; :func:`verify_bundle` re-checks internal consistency (the stream
parses, the log is sorted, the summary matches the log).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.harness import HarnessConfig, RunResult
from repro.core.resultlog import ResultLog
from repro.core.stream import GraphStream
from repro.errors import GraphTidesError

__all__ = ["ExperimentBundle", "package_run", "load_bundle", "verify_bundle"]

_BUNDLE_FILES = (
    "metadata.json",
    "config.json",
    "stream.csv",
    "result.jsonl",
    "summary.json",
    "README.md",
)


@dataclass(slots=True)
class ExperimentBundle:
    """A loaded experiment package."""

    path: Path
    metadata: dict[str, Any]
    config: dict[str, Any]
    stream: GraphStream
    log: ResultLog
    summary: dict[str, Any]


def _config_dict(config: HarnessConfig) -> dict[str, Any]:
    return {
        "rate": config.rate,
        "level": config.level,
        "log_interval": config.log_interval,
        "drain_grace": config.drain_grace,
        "drain_poll_interval": config.drain_poll_interval,
        "retry_interval": config.retry_interval,
        "max_duration": config.max_duration,
    }


def _summary_dict(result: RunResult) -> dict[str, Any]:
    return {
        "duration": result.duration,
        "events_emitted": result.events_emitted,
        "events_processed": result.events_processed,
        "rejected_attempts": result.rejected_attempts,
        "drained": result.drained,
        "mean_throughput": result.mean_throughput,
        "record_count": len(result.log),
        "markers": [
            {"label": r.tags.get("label", ""), "timestamp": r.timestamp}
            for r in result.log.markers()
        ],
    }


def _readme_text(experiment_id: str, description: str, summary: dict) -> str:
    marker_lines = "\n".join(
        f"- `{m['label']}` at t={m['timestamp']:.2f}s"
        for m in summary["markers"]
    )
    return (
        f"# Experiment: {experiment_id}\n\n"
        f"{description}\n\n"
        f"## Outcome\n\n"
        f"- events emitted: {summary['events_emitted']}\n"
        f"- events processed: {summary['events_processed']}\n"
        f"- duration: {summary['duration']:.2f} s (simulated)\n"
        f"- mean throughput: {summary['mean_throughput']:.0f} events/s\n"
        f"- drained: {summary['drained']}\n\n"
        f"## Markers\n\n{marker_lines}\n\n"
        f"## Files\n\n"
        f"- `stream.csv` — the exact replayed input stream\n"
        f"- `result.jsonl` — the merged result log (one JSON record/line)\n"
        f"- `config.json` — harness configuration\n"
        f"- `metadata.json` — experiment identity and environment\n"
    )


def package_run(
    directory: str | Path,
    experiment_id: str,
    stream: GraphStream,
    config: HarnessConfig,
    result: RunResult,
    description: str = "",
    extra_metadata: dict[str, Any] | None = None,
) -> Path:
    """Write a Popper-style bundle for one run; returns its directory.

    Raises :class:`GraphTidesError` when the target directory already
    contains a bundle (never silently overwrite an archived result).
    """
    root = Path(directory) / experiment_id
    if root.exists() and any(root.iterdir()):
        raise GraphTidesError(f"bundle directory {root} already exists")
    root.mkdir(parents=True, exist_ok=True)

    import platform as host_platform
    import sys

    metadata = {
        "experiment_id": experiment_id,
        "description": description,
        "python": sys.version.split()[0],
        "platform": host_platform.platform(),
        "library": "graphtides-repro",
    }
    if extra_metadata:
        metadata.update(extra_metadata)

    summary = _summary_dict(result)
    (root / "metadata.json").write_text(
        json.dumps(metadata, indent=2, sort_keys=True) + "\n"
    )
    (root / "config.json").write_text(
        json.dumps(_config_dict(config), indent=2, sort_keys=True) + "\n"
    )
    stream.write(root / "stream.csv")
    result.log.write(root / "result.jsonl")
    (root / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    (root / "README.md").write_text(
        _readme_text(experiment_id, description, summary)
    )
    return root


def load_bundle(path: str | Path) -> ExperimentBundle:
    """Load a bundle directory written by :func:`package_run`."""
    root = Path(path)
    missing = [name for name in _BUNDLE_FILES if not (root / name).exists()]
    if missing:
        raise GraphTidesError(
            f"bundle {root} is incomplete: missing {', '.join(missing)}"
        )
    return ExperimentBundle(
        path=root,
        metadata=json.loads((root / "metadata.json").read_text()),
        config=json.loads((root / "config.json").read_text()),
        stream=GraphStream.read(root / "stream.csv"),
        log=ResultLog.read(root / "result.jsonl"),
        summary=json.loads((root / "summary.json").read_text()),
    )


def verify_bundle(path: str | Path) -> list[str]:
    """Consistency checks over a bundle; returns a list of problems.

    An empty list means the bundle is internally consistent: all files
    parse, the result log is chronologically sorted, and the summary's
    counts match the log and stream contents.
    """
    problems: list[str] = []
    try:
        bundle = load_bundle(path)
    except GraphTidesError as error:
        return [str(error)]

    timestamps = [r.timestamp for r in bundle.log]
    if timestamps != sorted(timestamps):
        problems.append("result log is not chronologically sorted")

    if bundle.summary.get("record_count") != len(bundle.log):
        problems.append(
            f"summary record_count {bundle.summary.get('record_count')} "
            f"!= log size {len(bundle.log)}"
        )

    graph_events = sum(1 for __ in bundle.stream.graph_events())
    if bundle.summary.get("events_emitted", 0) > graph_events:
        problems.append(
            "summary claims more emitted events than the stream contains"
        )

    logged_markers = {
        r.tags.get("label") for r in bundle.log.markers()
    }
    for marker in bundle.summary.get("markers", []):
        if marker["label"] not in logged_markers:
            problems.append(
                f"summary marker {marker['label']!r} missing from log"
            )
    return problems
