"""End-to-end event tracing on one unified trace clock.

The paper's methodology (section 4.3) observes a platform at three
evaluation levels *over time*; correlating those observations only
works when every component stamps its records with the **same clock**.
Historically the repo mixed clock sources — ``time.monotonic()`` in the
live process probe versus ``time.perf_counter()`` in the replayer and
connectors — whose epochs differ, silently breaking cross-correlation.
This module fixes that and builds an observability layer on top:

* :class:`TraceClock` — a single timestamp source with an explicit
  origin.  All live components (replayer, transports, receivers,
  probes) share one process-wide instance (:func:`shared_clock`);
  simulated components use :meth:`TraceClock.for_simulation`, which
  reads the simulation calendar.
* :class:`Tracer` — a low-overhead span/annotation recorder in the
  style of Dapper-like distributed tracers: each event (or batch) is
  stamped as it moves through the pipeline — generated → encoded →
  transported → emitted → ingested → processed → result.  Recording is
  sampled (1-in-N events) so tracing a saturated replay stays cheap;
  per-phase **counters** are exact regardless of sampling so span
  accounting always closes (emitted = ingested + in-flight).
* Chrome ``trace_event`` export — :func:`write_chrome_trace` and
  :func:`records_to_chrome_trace` produce JSON loadable in
  ``chrome://tracing`` / Perfetto; :func:`validate_chrome_trace` is the
  schema smoke check used by tests and CI.
* :class:`TracingTransport` — wraps any
  :class:`~repro.core.connectors.Transport` and records a
  ``transported`` span per delivery batch.

Spans also land in the existing :class:`~repro.core.resultlog.ResultLog`
machinery (``kind="span"`` records) so
:func:`repro.core.analysis.cross_correlation` and reflection-latency
profiles work across evaluation levels.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.core.connectors import Transport
from repro.core.resultlog import Record, ResultLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulation

__all__ = [
    "TraceClock",
    "shared_clock",
    "reset_shared_clock",
    "Span",
    "Tracer",
    "TracingTransport",
    "PHASES",
    "chrome_trace",
    "records_to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Pipeline phases a traced event moves through, in order.  ``emitted``
#: and ``ingested`` are the accounting pair: every event leaving the
#: replayer must eventually arrive at the system under test (or still
#: be in flight at shutdown).
PHASES: tuple[str, ...] = (
    "generated",
    "decoded",
    "encoded",
    "transported",
    "emitted",
    "ingested",
    "processed",
    "result",
)


class TraceClock:
    """One timestamp source for everything a run records.

    ``now()`` returns seconds since the clock's ``origin``.  The default
    source is ``time.perf_counter`` — the highest-resolution monotonic
    clock available — but the crucial property is not the source, it is
    that *every* component of a run reads the **same instance**, so all
    timestamps share one epoch and can be cross-correlated.
    """

    __slots__ = ("_source", "origin")

    def __init__(
        self,
        source: Callable[[], float] = time.perf_counter,
        origin: float | None = None,
    ):
        self._source = source
        self.origin = source() if origin is None else origin

    def now(self) -> float:
        """Seconds elapsed since this clock's origin."""
        return self._source() - self.origin

    @classmethod
    def for_simulation(cls, sim: "Simulation") -> "TraceClock":
        """A trace clock reading the simulation calendar (origin 0)."""
        return cls(source=lambda: sim.now, origin=0.0)

    def __repr__(self) -> str:
        return f"TraceClock(origin={self.origin!r})"


_shared_lock = threading.Lock()
_shared: TraceClock | None = None


def shared_clock() -> TraceClock:
    """The process-wide live trace clock (created on first use).

    Live components default to this instance so a replayer, its
    transports/receivers, and any :class:`LiveProcessProbe` sampling
    the same run all stamp records with one epoch.
    """
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = TraceClock()
        return _shared


def reset_shared_clock() -> TraceClock:
    """Replace the shared clock with a fresh one (tests / new runs)."""
    global _shared
    with _shared_lock:
        _shared = TraceClock()
        return _shared


@dataclass(slots=True)
class Span:
    """One recorded pipeline annotation.

    ``name`` is the phase (see :data:`PHASES`), ``category`` the
    component that recorded it (``replayer``, ``transport``, a platform
    name, ...).  ``event_id`` is the stream position of the first event
    the span covers and ``count`` how many events it covers (batch
    spans).  ``duration`` 0.0 makes it an instant annotation.

    Deliberately *not* frozen: span recording sits on the replay hot
    path, and a frozen dataclass pays ``object.__setattr__`` per field
    on construction.
    """

    name: str
    category: str
    start: float
    duration: float = 0.0
    event_id: int | None = None
    count: int = 1
    args: dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Record:
        """The result-log representation (``kind="span"``)."""
        tags = {"count": str(self.count)}
        if self.event_id is not None:
            tags["event_id"] = str(self.event_id)
        for key, value in self.args.items():
            tags[key] = str(value)
        return Record(
            timestamp=self.start,
            source=self.category,
            metric=self.name,
            value=self.duration,
            kind="span",
            tags=tags,
        )


class Tracer:
    """Sampled span recorder plus exact per-phase counters.

    ``sample_every`` keeps overhead bounded: only events whose id is a
    multiple of it get spans recorded (1 = trace everything).  The
    counters updated through :meth:`count` are exact regardless of
    sampling, so :meth:`accounting` closes even at high sample rates.

    Span appends rely on the GIL-atomicity of ``list.append`` — the
    recorder is safe to call from the replayer's emitter thread and
    receiver threads concurrently; counters take a lock (they are
    read-modify-write, but called once per batch, not per event).
    """

    def __init__(
        self,
        clock: TraceClock | None = None,
        sample_every: int = 1,
        metadata: Mapping[str, Any] | None = None,
    ):
        if sample_every <= 0:
            raise ValueError(
                f"sample_every must be positive, got {sample_every}"
            )
        self.clock = clock if clock is not None else shared_clock()
        self.sample_every = sample_every
        self.spans: list[Span] = []
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._counts: dict[str, int] = {}
        self._count_lock = threading.Lock()

    # -- sampling ----------------------------------------------------------

    def should_sample(self, event_id: int) -> bool:
        """Whether the event with this stream position gets a span."""
        return event_id % self.sample_every == 0

    def sample_batch(self, first_id: int, count: int) -> bool:
        """Whether a batch covering ``[first_id, first_id+count)`` gets
        a span — true iff the range contains a sampled id."""
        if count <= 0:
            return False
        step = self.sample_every
        return (first_id + count - 1) // step >= (first_id + step - 1) // step

    # -- recording ---------------------------------------------------------

    def record_span(
        self,
        name: str,
        category: str,
        start: float,
        duration: float = 0.0,
        event_id: int | None = None,
        count: int = 1,
        **args: Any,
    ) -> None:
        """Append a span with explicit timestamps (sim or live)."""
        self.spans.append(
            Span(
                name=name,
                category=category,
                start=start,
                duration=duration,
                event_id=event_id,
                count=count,
                args=args,
            )
        )

    def instant(
        self,
        name: str,
        category: str,
        timestamp: float | None = None,
        event_id: int | None = None,
        count: int = 1,
        **args: Any,
    ) -> None:
        """Record a zero-duration annotation (timestamp defaults to now)."""
        start = self.clock.now() if timestamp is None else timestamp
        self.record_span(
            name, category, start, 0.0, event_id=event_id, count=count, **args
        )

    @contextmanager
    def measure(
        self,
        name: str,
        category: str,
        event_id: int | None = None,
        count: int = 1,
        **args: Any,
    ) -> Iterator[None]:
        """Context manager timing its body on the tracer's clock."""
        start = self.clock.now()
        try:
            yield
        finally:
            self.record_span(
                name,
                category,
                start,
                self.clock.now() - start,
                event_id=event_id,
                count=count,
                **args,
            )

    def count(self, phase: str, n: int = 1) -> None:
        """Bump the exact (sampling-independent) counter for ``phase``."""
        with self._count_lock:
            self._counts[phase] = self._counts.get(phase, 0) + n

    # -- introspection -----------------------------------------------------

    @property
    def counts(self) -> dict[str, int]:
        with self._count_lock:
            return dict(self._counts)

    def accounting(self) -> dict[str, int | bool]:
        """Span accounting at this instant.

        ``in_flight`` is what left the replayer but has not been seen
        arriving; the accounting is *closed* when every emitted event is
        either ingested or in flight — i.e. the independent ingest count
        never exceeds the emit count (no phantom arrivals).
        """
        counts = self.counts
        emitted = counts.get("emitted", 0)
        ingested = counts.get("ingested", 0)
        return {
            "emitted": emitted,
            "ingested": ingested,
            "in_flight": emitted - ingested,
            "closed": ingested <= emitted,
        }

    def export_metadata(self) -> dict[str, Any]:
        """Run metadata embedded in exports (sampling config + counters)."""
        meta = dict(self.metadata)
        meta["sample_every"] = self.sample_every
        meta["spans_recorded"] = len(self.spans)
        meta["counts"] = self.counts
        meta["accounting"] = self.accounting()
        return meta

    # -- export ------------------------------------------------------------

    def to_records(self) -> list[Record]:
        """All spans as result-log records (``kind="span"``)."""
        return [span.to_record() for span in self.spans]

    def result_log(self) -> ResultLog:
        return ResultLog(self.to_records())

    def chrome_trace(self) -> dict[str, Any]:
        return chrome_trace(self.spans, self.export_metadata())

    def write_chrome_trace(self, path: str | Path) -> None:
        write_chrome_trace(path, self)


class TracingTransport(Transport):
    """Transport wrapper recording a ``transported`` span per batch.

    Sits anywhere in a delivery chain (typically directly around the
    base transport, under any retry/chaos layers, so retried deliveries
    show up as repeated spans).  Event ids are assigned in send order,
    matching the replayer's emit ids for ordered transports.
    """

    def __init__(self, inner: Transport, tracer: Tracer):
        self._inner = inner
        self._tracer = tracer
        self._sent = 0
        # Hot-path sampling state (same scheme as the live replayer):
        # an unsampled send costs one integer comparison; the exact
        # ``transported`` counter is flushed at sampled sends and on
        # close.
        self._step = tracer.sample_every
        self._next_sample = 0
        self._counted = 0

    @property
    def inner(self) -> Transport:
        return self._inner

    def _record(self, start: float, end: float, first_id: int, count: int) -> None:
        tracer = self._tracer
        tracer.record_span(
            "transported",
            "transport",
            start,
            end - start,
            event_id=first_id,
            count=count,
        )
        end_pos = first_id + count
        self._next_sample = -(-end_pos // self._step) * self._step
        tracer.count("transported", end_pos - self._counted)
        self._counted = end_pos

    def send(self, line: str) -> None:
        first_id = self._sent
        if first_id + 1 > self._next_sample:
            now = self._tracer.clock.now
            start = now()
            self._inner.send(line)
            self._record(start, now(), first_id, 1)
        else:
            self._inner.send(line)
        self._sent = first_id + 1

    def send_many(self, lines: Iterable[str]) -> None:
        if not isinstance(lines, list):
            lines = list(lines)
        if not lines:
            return
        first_id = self._sent
        count = len(lines)
        if first_id + count > self._next_sample:
            now = self._tracer.clock.now
            start = now()
            self._inner.send_many(lines)
            self._record(start, now(), first_id, count)
        else:
            self._inner.send_many(lines)
        self._sent = first_id + count

    def send_frame(self, frame: "bytes | memoryview", count: int) -> None:
        first_id = self._sent
        if first_id + count > self._next_sample:
            now = self._tracer.clock.now
            start = now()
            self._inner.send_frame(frame, count)
            self._record(start, now(), first_id, count)
        else:
            self._inner.send_frame(frame, count)
        self._sent = first_id + count

    def flush_counts(self) -> None:
        """Flush the deferred exact ``transported`` count to the tracer."""
        if self._sent > self._counted:
            self._tracer.count("transported", self._sent - self._counted)
            self._counted = self._sent

    def close(self) -> None:
        self.flush_counts()
        self._inner.close()


# ---------------------------------------------------------------------------
# Chrome trace_event export
# ---------------------------------------------------------------------------

#: Chrome trace timestamps are microseconds.
_MICROSECONDS = 1e6


def _chrome_events_from_spans(
    spans: Iterable[Span],
) -> tuple[list[dict[str, Any]], dict[str, int]]:
    """Convert spans to Chrome events; returns (events, category→tid)."""
    tids: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        tid = tids.setdefault(span.category, len(tids) + 1)
        args: dict[str, Any] = {"count": span.count}
        if span.event_id is not None:
            args["event_id"] = span.event_id
        args.update(span.args)
        entry: dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ts": round(span.start * _MICROSECONDS, 3),
            "pid": 1,
            "tid": tid,
            "args": args,
        }
        if span.duration > 0:
            entry["ph"] = "X"
            entry["dur"] = round(span.duration * _MICROSECONDS, 3)
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        events.append(entry)
    return events, tids


def chrome_trace(
    spans: Iterable[Span], metadata: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """A Chrome ``trace_event`` JSON object (dict) from spans.

    Spans with a duration become complete (``"X"``) events, instants
    become thread-scoped instant (``"i"``) events; each span category
    gets its own named thread row so the pipeline stages stack visually
    in ``chrome://tracing`` / Perfetto.
    """
    events, tids = _chrome_events_from_spans(spans)
    meta_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "graphtides"},
        }
    ]
    for category, tid in sorted(tids.items(), key=lambda item: item[1]):
        meta_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": category},
            }
        )
    return {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }


def records_to_chrome_trace(
    log: ResultLog, metadata: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Chrome trace JSON from a result log's span and marker records.

    The inverse integration point of :meth:`Tracer.to_records`: a
    persisted ``result.jsonl`` containing ``kind="span"`` records (and
    optionally ``kind="marker"`` records, exported as instants) can be
    turned back into a loadable trace — the ``graphtides trace``
    subcommand.
    """
    spans: list[Span] = []
    for record in log:
        if record.kind == "span":
            tags = dict(record.tags)
            count = int(tags.pop("count", "1"))
            event_id_text = tags.pop("event_id", None)
            spans.append(
                Span(
                    name=record.metric,
                    category=record.source,
                    start=record.timestamp,
                    duration=record.value,
                    event_id=(
                        int(event_id_text) if event_id_text is not None else None
                    ),
                    count=count,
                    args=tags,
                )
            )
        elif record.kind == "marker":
            spans.append(
                Span(
                    name=f"marker:{record.tags.get('label', record.metric)}",
                    category=record.source,
                    start=record.timestamp,
                    duration=0.0,
                    args={"value": record.value},
                )
            )
    return chrome_trace(spans, metadata)


def write_chrome_trace(path: str | Path, tracer: Tracer) -> None:
    """Serialize a tracer's trace to a Chrome JSON file."""
    payload = tracer.chrome_trace()
    Path(path).write_text(
        json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
    )


_VALID_PHASES = frozenset("BEXiIPCMSTFsftNODvVRabnec(),")


def validate_chrome_trace(payload: Any) -> list[str]:
    """Schema smoke check of a Chrome ``trace_event`` JSON object.

    Returns a list of problems (empty = well-formed).  Checks the JSON
    Object Format variant: a top-level object with a ``traceEvents``
    array whose entries carry the required keys with sane types — the
    structural subset ``chrome://tracing`` needs to load a file.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _VALID_PHASES:
            problems.append(f"{where}: invalid phase {phase!r}")
            continue
        if phase == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: invalid ts {ts!r}")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing pid")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing tid")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
    return problems
