"""Batched fast-path codec for the CSV graph stream format.

The event model in :mod:`repro.core.events` pays per-event costs that
dominate high-rate replays: an ``EventType(...)`` enum construction per
line, a character-by-character payload unescape even for clean
payloads, frozen-dataclass construction with ``__post_init__``
isinstance checks, and one Python function call per event.  This
module provides the bulk fast path used by :class:`GraphStream` file
I/O and the batched :class:`LiveReplayer`:

* a precomputed per-command dispatch table (one dict lookup per line
  instead of an enum constructor plus ``try``/``except``);
* chunked file decoding — files are read in ~64 KiB blocks and split
  once, instead of line-by-line iteration;
* escape handling that only scans payloads actually containing a
  backslash / separator;
* a ``trusted=True`` mode that constructs events via ``object.__new__``
  and skips the redundant ``__post_init__`` validation — safe for
  machine-generated streams (anything written by this library);
* bulk formatting (``format_events``) that joins a whole batch into a
  single string for one buffered write.

``events.parse_line`` / ``events.format_event`` remain the public
single-event API; they are thin wrappers over this module, so every
caller observes identical semantics (including error messages and
:class:`StreamFormatError` line numbers).
"""

from __future__ import annotations

import gc
import mmap
import re
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tracing import Tracer

from repro.core.events import (
    EdgeId,
    Event,
    EventType,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
    SpeedEvent,
)
from repro.errors import StreamFormatError

__all__ = [
    "parse_line",
    "parse_lines",
    "parse_stream_file",
    "iter_parse_chunks",
    "iter_raw_batches",
    "RawBatch",
    "format_event",
    "format_lines",
    "format_events",
    "write_stream_file",
    "detect_stream_format",
]

#: File block size for chunked decoding (satisfies one syscall ≈ many lines).
BLOCK_SIZE = 1 << 16


def detect_stream_format(path: str | Path) -> str:
    """``"binary"`` or ``"csv"``, decided by the file's magic bytes.

    Every file-reading entry point in this module autodetects via this
    helper, so callers can hand either format to ``parse_stream_file``,
    ``iter_parse_chunks`` or ``iter_raw_batches`` unchanged.
    """
    from repro.core import binfmt

    return binfmt.detect_format(path)

# ---------------------------------------------------------------------------
# Escaping
# ---------------------------------------------------------------------------

_ESCAPE_RE = re.compile(r"[\\,\n\r]")


def _escape(text: str) -> str:
    """Escape separators/newlines; no-op (no copy) for clean payloads.

    The replace chain runs at C speed; escaping the backslash first
    keeps the later escapes unambiguous.
    """
    if _ESCAPE_RE.search(text) is None:
        return text
    return (
        text.replace("\\", "\\\\")
        .replace(",", "\\,")
        .replace("\n", "\\n")
        .replace("\r", "\\r")
    )


def _unescape_part(part: str) -> str:
    return part.replace("\\,", ",").replace("\\n", "\n").replace("\\r", "\r")


def _unescape_scan(text: str) -> str:
    # Splitting on the escaped backslash first isolates literal
    # backslashes, so the remaining single-character escapes can be
    # resolved with unambiguous C-level replaces; unknown escape
    # sequences (e.g. ``\x``) are preserved verbatim, matching a
    # left-to-right scan.
    parts = text.split("\\\\")
    if len(parts) == 1:
        return _unescape_part(text)
    return "\\".join(_unescape_part(part) for part in parts)


def _unescape(text: str) -> str:
    """Undo :func:`_escape`; the common clean case is a single C scan."""
    if "\\" not in text:
        return text
    return _unescape_scan(text)


def _split_unescaped_comma(text: str) -> tuple[str, str]:
    """Split ``text`` at the first comma not preceded by an odd number of
    backslashes (i.e. the first *unescaped* field separator)."""
    search = 0
    while True:
        comma = text.find(",", search)
        if comma == -1:
            return text, ""
        backslashes = 0
        j = comma - 1
        while j >= 0 and text[j] == "\\":
            backslashes += 1
            j -= 1
        if backslashes % 2 == 0:
            return text[:comma], text[comma + 1 :]
        search = comma + 1


# ---------------------------------------------------------------------------
# Parsing: per-command dispatch tables
# ---------------------------------------------------------------------------

_NEW_GRAPH_EVENT = GraphEvent.__new__
_NEW_EDGE_ID = EdgeId.__new__
_SET = object.__setattr__


def _parse_edge_text(text: str) -> EdgeId:
    # The separator search starts at index 1 so a leading minus sign of a
    # negative source id is never mistaken for the separator.
    sep = text.find("-", 1)
    if sep == -1:
        raise StreamFormatError(f"edge id {text!r} has no '-' separator")
    try:
        return EdgeId(int(text[:sep]), int(text[sep + 1 :]))
    except ValueError:
        raise StreamFormatError(
            f"edge id {text!r} does not contain two integer vertex ids"
        ) from None


def _vertex_handler(
    event_type: EventType, trusted: bool
) -> Callable[[list[str]], GraphEvent]:
    # Handlers receive the ``line.split(",", 2)`` parts; a short list
    # (missing field) raises IndexError, which the caller routes to the
    # careful slow path for exact error reporting.
    unescape = _unescape_scan
    if trusted:

        def handle(
            parts: list[str],
            new=_NEW_GRAPH_EVENT,
            cls=GraphEvent,
            set_attr=_SET,
        ) -> GraphEvent:
            payload = parts[2]
            event = new(cls)
            set_attr(event, "event_type", event_type)
            set_attr(event, "entity", int(parts[1]))
            set_attr(
                event,
                "payload",
                payload if "\\" not in payload else unescape(payload),
            )
            return event

    else:

        def handle(parts: list[str]) -> GraphEvent:
            payload = parts[2]
            return GraphEvent(
                event_type,
                int(parts[1]),
                payload if "\\" not in payload else unescape(payload),
            )

    return handle


def _edge_handler(
    event_type: EventType, trusted: bool
) -> Callable[[list[str]], GraphEvent]:
    unescape = _unescape_scan
    if trusted:

        def handle(
            parts: list[str],
            new=_NEW_GRAPH_EVENT,
            cls=GraphEvent,
            set_attr=_SET,
            new_edge=_NEW_EDGE_ID,
            edge_cls=EdgeId,
        ) -> GraphEvent:
            payload = parts[2]
            entity_text = parts[1]
            sep = entity_text.find("-", 1)
            if sep == -1:
                raise StreamFormatError(
                    f"edge id {entity_text!r} has no '-' separator"
                )
            edge = new_edge(edge_cls)
            set_attr(edge, "source", int(entity_text[:sep]))
            set_attr(edge, "target", int(entity_text[sep + 1 :]))
            event = new(cls)
            set_attr(event, "event_type", event_type)
            set_attr(event, "entity", edge)
            set_attr(
                event,
                "payload",
                payload if "\\" not in payload else unescape(payload),
            )
            return event

    else:

        def handle(parts: list[str]) -> GraphEvent:
            payload = parts[2]
            return GraphEvent(
                event_type,
                _parse_edge_text(parts[1]),
                payload if "\\" not in payload else unescape(payload),
            )

    return handle


def _rejoin_rest(parts: list[str]) -> str:
    """Reassemble everything after the command field (lossless: the
    split removed exactly the commas re-added here)."""
    return ",".join(parts[1:])


def _marker_handler(parts: list[str]) -> MarkerEvent:
    # Labels are preserved verbatim (no whitespace stripping); the field
    # separator must honour escaped commas inside the label, so the
    # eager split is undone before scanning for the real separator.
    label, __ = _split_unescaped_comma(_rejoin_rest(parts))
    return MarkerEvent(_unescape(label))


def _speed_handler(parts: list[str]) -> SpeedEvent:
    return SpeedEvent(float(parts[1]))


def _pause_handler(parts: list[str]) -> PauseEvent:
    return PauseEvent(float(parts[1]))


def _build_dispatch(trusted: bool) -> dict[str, Callable[[list[str]], Event]]:
    table: dict[str, Callable[[list[str]], Event]] = {}
    for event_type in EventType:
        if event_type.is_vertex_event:
            table[event_type.value] = _vertex_handler(event_type, trusted)
        elif event_type.is_edge_event:
            table[event_type.value] = _edge_handler(event_type, trusted)
    table[EventType.MARKER.value] = _marker_handler
    table[EventType.SPEED.value] = _speed_handler
    table[EventType.PAUSE.value] = _pause_handler
    return table


_DISPATCH = _build_dispatch(trusted=False)
_DISPATCH_TRUSTED = _build_dispatch(trusted=True)


def _parse_line_slow(
    line: str, line_number: int | None, skip_comments: bool
) -> Event | None:
    """Whitespace-tolerant fallback parser with precise error messages.

    Returns ``None`` for blank/comment lines when ``skip_comments`` is
    set; raises :class:`StreamFormatError` otherwise.  Handles the
    paper's spaced spelling (``COMMAND, ENTITY_ID, PAYLOAD``) by
    stripping whitespace around the command and entity fields; payloads
    and marker labels stay verbatim so arbitrary user states survive
    the round trip.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        if skip_comments:
            return None
        if not stripped:
            raise StreamFormatError("empty line", line_number)
        raise StreamFormatError(f"unknown command {stripped!r}", line_number)

    line = line.rstrip("\n\r")
    command, sep, rest = line.partition(",")
    if not sep:
        raise StreamFormatError(
            f"no fields after command {command.strip()!r}", line_number
        )
    command = command.strip()
    try:
        event_type = EventType(command)
    except ValueError:
        raise StreamFormatError(f"unknown command {command!r}", line_number) from None

    if event_type is EventType.MARKER:
        label, __ = _split_unescaped_comma(rest)
        return MarkerEvent(_unescape(label))

    entity_text, __, payload = rest.partition(",")
    entity_text = entity_text.strip()
    if event_type is EventType.SPEED:
        try:
            return SpeedEvent(float(entity_text))
        except ValueError as exc:
            raise StreamFormatError(f"bad SPEED factor: {exc}", line_number) from None
    if event_type is EventType.PAUSE:
        try:
            return PauseEvent(float(entity_text))
        except ValueError as exc:
            raise StreamFormatError(
                f"bad PAUSE duration: {exc}", line_number
            ) from None

    payload = _unescape(payload)
    if event_type.is_vertex_event:
        try:
            vertex_id = int(entity_text)
        except ValueError:
            raise StreamFormatError(
                f"vertex id {entity_text!r} is not an integer", line_number
            ) from None
        return GraphEvent(event_type, vertex_id, payload)

    try:
        edge_id = _parse_edge_text(entity_text)
    except StreamFormatError as exc:
        raise StreamFormatError(str(exc), line_number) from None
    return GraphEvent(event_type, edge_id, payload)


def parse_line(
    line: str, line_number: int | None = None, *, trusted: bool = False
) -> Event:
    """Parse one CSV stream line into an :class:`Event`.

    Drop-in replacement for the legacy ``events.parse_line``; raises
    :class:`StreamFormatError` on malformed input.
    """
    dispatch = _DISPATCH_TRUSTED if trusted else _DISPATCH
    if line and line[-1] in "\r\n":
        line = line.rstrip("\r\n")
    parts = line.split(",", 2)
    handler = dispatch.get(parts[0])
    if handler is not None:
        try:
            return handler(parts)
        except (ValueError, IndexError, StreamFormatError):
            pass
    event = _parse_line_slow(line, line_number, skip_comments=False)
    assert event is not None
    return event


def parse_lines(
    lines: Iterable[str],
    *,
    trusted: bool = False,
    skip_comments: bool = True,
    first_line_number: int = 1,
) -> list[Event]:
    """Parse an iterable of CSV lines into a list of events (the bulk
    fast path).

    Blank lines and ``#`` comments are skipped when ``skip_comments``
    is set (the :meth:`GraphStream.read` semantics); otherwise they
    raise.  ``trusted`` skips redundant dataclass validation for
    machine-generated streams.  Error messages carry 1-based line
    numbers offset by ``first_line_number``.
    """
    events: list[Event] = []
    append = events.append
    dispatch = _DISPATCH_TRUSTED if trusted else _DISPATCH
    index = 0
    # Parsing creates no reference cycles, but every retained event is a
    # GC-tracked container: generational collections scanning the growing
    # result list cost ~35% of bulk parse time.  Pausing the collector
    # for the duration of the batch is safe (memory is bounded by the
    # input) and is only possible because this is a batch API.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        for index, line in enumerate(lines, start=first_line_number):
            if line and line[-1] in "\r\n":
                line = line.rstrip("\r\n")
            parts = line.split(",", 2)
            handler = dispatch.get(parts[0])
            if handler is not None:
                try:
                    append(handler(parts))
                    continue
                except (ValueError, IndexError, StreamFormatError):
                    pass
            # Slow path: whitespace-padded fields, trailing '\r', blanks,
            # comments, and malformed lines (for exact error reporting).
            event = _parse_line_slow(line, index, skip_comments)
            if event is not None:
                append(event)
    finally:
        if gc_was_enabled:
            gc.enable()
    return events


def _utf8_error_offset(path: str | Path) -> int | None:
    """Absolute byte offset of the first invalid UTF-8 byte in ``path``.

    Error-path helper only: re-scans the file with an incremental
    decoder to localise a failure already observed elsewhere.  Returns
    ``None`` if the file decodes cleanly (e.g. a racing rewrite).
    """
    import codecs

    decoder = codecs.getincrementaldecoder("utf-8")()
    consumed = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(BLOCK_SIZE)
            final = not block
            try:
                decoder.decode(block, final)
            except UnicodeDecodeError as exc:
                return consumed + exc.start
            if final:
                return None
            consumed += len(block)


def _raise_not_utf8(path: str | Path, exc: UnicodeDecodeError) -> None:
    offset = _utf8_error_offset(path)
    raise StreamFormatError(
        f"stream file is not valid UTF-8 ({exc.reason})",
        byte_offset=offset,
    ) from None


def _iter_line_blocks(path: str | Path) -> Iterator[list[str]]:
    """Yield lists of newline-free lines, reading ~64 KiB per block.

    Uses universal-newline text mode, so line boundaries match the
    legacy line-by-line reader exactly.  Non-UTF-8 bytes raise
    :class:`StreamFormatError` with the absolute byte offset instead of
    leaking :class:`UnicodeDecodeError`.
    """
    with open(path, "r", encoding="utf-8") as handle:
        carry = ""
        while True:
            try:
                block = handle.read(BLOCK_SIZE)
            except UnicodeDecodeError as exc:
                _raise_not_utf8(path, exc)
            if not block:
                break
            lines = (carry + block).split("\n")
            carry = lines.pop()
            if lines:
                yield lines
        if carry:
            yield [carry]


def _open_stream_mmap(path: str | Path) -> mmap.mmap | None:
    """Map a stream file read-only; ``None`` for an empty file.

    The fd is closed immediately (the mapping keeps its own reference),
    so callers only manage the mapping's lifetime.
    """
    with open(path, "rb") as handle:
        try:
            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:
            return None


def _iter_line_blocks_mmap(path: str | Path) -> Iterator[list[str]]:
    """Yield lists of newline-free lines from an mmap'd stream file.

    The zero-copy sibling of :func:`_iter_line_blocks`: blocks are
    decoded straight out of the mapping on ``\\n`` boundaries, skipping
    the text layer and the carry-string concatenation.  Lines keep a
    trailing ``\\r`` (``parse_lines`` strips it), so CRLF files parse
    identically; lone-``\\r`` line endings — which only universal
    newline mode would split — are not supported, which is why this
    reader backs the *trusted* (machine-generated) parse path only.
    """
    mapped = _open_stream_mmap(path)
    if mapped is None:
        return
    try:
        size = len(mapped)
        position = 0
        while position < size:
            end = min(position + BLOCK_SIZE, size)
            if end < size:
                newline = mapped.rfind(b"\n", position, end)
                if newline == -1:
                    # A line longer than the block: extend to its end.
                    newline = mapped.find(b"\n", end)
                end = size if newline == -1 else newline + 1
            try:
                block_text = mapped[position:end].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise StreamFormatError(
                    f"stream file is not valid UTF-8 ({exc.reason})",
                    byte_offset=position + exc.start,
                ) from None
            lines = block_text.split("\n")
            if lines and not lines[-1]:
                lines.pop()
            if lines:
                yield lines
            position = end
    finally:
        mapped.close()


#: First bytes of the six graph-changing commands (``ADD_*``,
#: ``REMOVE_*``, ``UPDATE_*``); no marker/control command shares them.
_RAW_GRAPH_FIRST_BYTES = frozenset(b"ARU")


class RawBatch:
    """A zero-copy run of consecutive graph-event lines.

    ``data`` is a :class:`memoryview` straight into the stream file's
    mapping — the exact bytes of ``count`` newline-separated lines,
    never copied through Python strings.  ``ends_with_newline`` is
    False only for a final line at EOF without one; emitters must then
    append the terminator themselves.

    Views alias the open mapping: consume (send) each batch before
    advancing the iterator that produced it.
    """

    __slots__ = ("data", "count", "ends_with_newline")

    def __init__(self, data: memoryview, count: int, ends_with_newline: bool):
        self.data = data
        self.count = count
        self.ends_with_newline = ends_with_newline

    def __repr__(self) -> str:
        return f"RawBatch({self.count} lines, {len(self.data)} bytes)"


# hot-path
def iter_raw_batches(
    path: str | Path, *, batch_lines: int = 256
) -> Iterator[RawBatch | Event]:
    """Yield zero-copy :class:`RawBatch` runs and parsed control events.

    The sharded replayer's emission fast path: runs of graph-event
    lines come back as :class:`memoryview` slices of the file's mmap
    (at most ``batch_lines`` lines per batch) that a transport can put
    on the wire verbatim, while ``MARKER``/``SPEED``/``PAUSE`` lines —
    which steer the replay instead of travelling over it — are parsed
    into their :class:`Event` objects.  Blank lines and ``#`` comments
    are skipped and break the current run.

    Graph lines are classified by their first byte (``A``/``R``/``U``
    is shared by exactly the six graph commands) and are *not*
    revalidated — the same trust contract as ``trusted=True`` parsing,
    intended for machine-generated files such as partition shards.
    """
    if batch_lines <= 0:
        raise ValueError(f"batch_lines must be positive, got {batch_lines}")
    if detect_stream_format(path) == "binary":
        from repro.core import binfmt

        yield from binfmt.iter_binary_batches(path)
        return
    mapped = _open_stream_mmap(path)
    if mapped is None:
        return
    view = memoryview(mapped)
    try:
        size = len(mapped)
        position = 0
        line_number = 0
        run_start = 0
        run_end = 0
        run_count = 0
        while position < size:
            line_number += 1
            newline = mapped.find(b"\n", position)
            end = size if newline == -1 else newline
            next_position = size if newline == -1 else newline + 1
            if end > position and mapped[position] in _RAW_GRAPH_FIRST_BYTES:
                if not run_count:
                    run_start = position
                run_end = next_position
                run_count += 1
                if run_count >= batch_lines:
                    yield RawBatch(
                        view[run_start:run_end], run_count, newline != -1
                    )
                    run_count = 0
            else:
                if run_count:
                    yield RawBatch(view[run_start:run_end], run_count, True)
                    run_count = 0
                try:
                    line = mapped[position:end].decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise StreamFormatError(
                        f"control line is not valid UTF-8 ({exc.reason})",
                        byte_offset=position + exc.start,
                    ) from None
                stripped = line.strip()
                if stripped and not stripped.startswith("#"):
                    yield parse_line(line, line_number)
            position = next_position
        if run_count:
            yield RawBatch(
                view[run_start:run_end],
                run_count,
                mapped[run_end - 1] == 0x0A,
            )
    finally:
        view.release()
        try:
            mapped.close()
        except BufferError:
            # A consumer still holds the last batch's view (e.g. the
            # loop variable after the final yield); the mapping closes
            # when that last view is garbage-collected.
            pass


def parse_stream_file(path: str | Path, *, trusted: bool = False) -> list[Event]:
    """Parse a whole stream file with chunked decoding.

    Equivalent to the legacy per-line reader (comments/blanks skipped,
    :class:`StreamFormatError` with line numbers) but roughly 3-4x
    faster.  Trusted parses read through the mmap block iterator, which
    skips the text layer's carry-string copies.

    Binary stream files (magic-byte autodetected) decode through
    :mod:`repro.core.binfmt`; ``trusted`` is a no-op there — the binary
    decoder never revalidates.
    """
    if detect_stream_format(path) == "binary":
        from repro.core import binfmt

        return binfmt.parse_binary_stream(path)
    events: list[Event] = []
    line_number = 1
    blocks = _iter_line_blocks_mmap(path) if trusted else _iter_line_blocks(path)
    for lines in blocks:
        events.extend(
            parse_lines(
                lines,
                trusted=trusted,
                skip_comments=True,
                first_line_number=line_number,
            )
        )
        line_number += len(lines)
    return events


# hot-path
def iter_parse_chunks(
    path: str | Path,
    *,
    trusted: bool = False,
    chunk_events: int = 1024,
    tracer: "Tracer | None" = None,
) -> Iterator[list[Event]]:
    """Yield chunks (lists) of parsed events from a stream file.

    The replayer's reader thread uses this to hand whole chunks across
    the queue instead of paying one hand-off per event.  With a
    :class:`~repro.core.tracing.Tracer`, each decoded file block gets a
    sampled ``decoded`` span (stamped on the tracer's clock) so the
    reader side of the pipeline is visible in exported traces.
    Trusted parses read blocks through the mmap iterator (no
    carry-string copies).
    """
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    if detect_stream_format(path) == "binary":
        from repro.core import binfmt

        yield from binfmt.iter_parse_binary_chunks(
            path, chunk_events=chunk_events, tracer=tracer
        )
        return
    pending: list[Event] = []
    line_number = 1
    decoded = 0
    blocks = _iter_line_blocks_mmap(path) if trusted else _iter_line_blocks(path)
    for lines in blocks:
        if tracer is None:
            pending.extend(
                parse_lines(
                    lines,
                    trusted=trusted,
                    skip_comments=True,
                    first_line_number=line_number,
                )
            )
        else:
            decode_start = tracer.clock.now()
            parsed = parse_lines(
                lines,
                trusted=trusted,
                skip_comments=True,
                first_line_number=line_number,
            )
            if parsed and tracer.sample_batch(decoded, len(parsed)):
                tracer.record_span(
                    "decoded",
                    "reader",
                    decode_start,
                    tracer.clock.now() - decode_start,
                    event_id=decoded,
                    count=len(parsed),
                )
            decoded += len(parsed)
            pending.extend(parsed)
        line_number += len(lines)
        while len(pending) >= chunk_events:
            yield pending[:chunk_events]
            del pending[:chunk_events]
    if pending:
        yield pending


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------

def _format_graph(event: GraphEvent) -> str:
    entity = event.entity
    if type(entity) is EdgeId:
        entity_text = f"{entity.source}-{entity.target}"
    else:
        entity_text = str(entity)
    # ``_value_`` is the enum member's plain instance attribute; the
    # public ``.value`` descriptor costs a Python-level property call
    # per event on this hot path.
    return f"{event.event_type._value_},{entity_text},{_escape(event.payload)}"


def _format_marker(event: MarkerEvent) -> str:
    return f"MARKER,{_escape(event.label)},"


def _format_float(value: float) -> str:
    """Shortest decimal text that parses back to exactly ``value``.

    ``%g`` keeps the historical compact spelling (``1``, ``2.5``,
    ``1e+06``) for the values it can represent exactly; anything it
    would truncate falls back to ``repr``, whose shortest-round-trip
    guarantee makes CSV↔binary conversion lossless for every float.
    """
    text = f"{value:g}"
    return text if float(text) == value else repr(value)


def _format_speed(event: SpeedEvent) -> str:
    return f"SPEED,{_format_float(event.factor)},"


def _format_pause(event: PauseEvent) -> str:
    return f"PAUSE,{_format_float(event.seconds)},"


_FORMATTERS: dict[type, Callable[[Event], str]] = {
    GraphEvent: _format_graph,
    MarkerEvent: _format_marker,
    SpeedEvent: _format_speed,
    PauseEvent: _format_pause,
}


def format_event(event: Event) -> str:
    """Serialize an event as one CSV stream line (without newline)."""
    formatter = _FORMATTERS.get(type(event))
    if formatter is not None:
        return formatter(event)
    # Subclasses of the concrete event types still serialize.
    for event_class, candidate in _FORMATTERS.items():
        if isinstance(event, event_class):
            return candidate(event)
    raise TypeError(f"cannot serialize {type(event).__name__}")


def format_lines(events: Iterable[Event]) -> list[str]:
    """Serialize events to a list of CSV lines (without newlines).

    The bulk fast path: the dominant :class:`GraphEvent` case is
    inlined so a batch costs no per-event dispatch call.
    """
    lines: list[str] = []
    append = lines.append
    search = _ESCAPE_RE.search
    escape = _escape
    graph_event = GraphEvent
    edge_id = EdgeId
    for event in events:
        if type(event) is graph_event:
            payload = event.payload
            if search(payload) is not None:
                payload = escape(payload)
            entity = event.entity
            if type(entity) is edge_id:
                append(
                    f"{event.event_type._value_},"
                    f"{entity.source}-{entity.target},{payload}"
                )
            else:
                append(f"{event.event_type._value_},{entity},{payload}")
        else:
            append(format_event(event))
    return lines


def format_events(events: Iterable[Event]) -> str:
    """Serialize a batch of events into one newline-terminated string.

    The bulk formatter: the result is suitable for a single buffered
    ``write`` — empty input yields an empty string.
    """
    lines = format_lines(events)
    if not lines:
        return ""
    lines.append("")  # trailing newline via the final join separator
    return "\n".join(lines)


def write_stream_file(
    path: str | Path,
    events: Iterable[Event],
    *,
    chunk_events: int = 4096,
    format: str = "csv",
) -> int:
    """Write events to a stream file with chunked bulk writes.

    ``format`` selects the representation: ``"csv"`` (the default, one
    line per event) or ``"binary"`` (the length-prefixed frame format
    of :mod:`repro.core.binfmt`).  Returns the number of events
    written.  Works with lazy iterables, so callers can stream
    arbitrarily long generators to disk without materialising them.
    """
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    if format == "binary":
        from repro.core import binfmt

        return binfmt.write_binary_stream(path, events)
    if format != "csv":
        raise ValueError(f"unknown stream format {format!r}")
    written = 0
    buffer: list[Event] = []
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        for event in events:
            buffer.append(event)
            if len(buffer) >= chunk_events:
                handle.write(format_events(buffer))
                written += len(buffer)
                buffer.clear()
        if buffer:
            handle.write(format_events(buffer))
            written += len(buffer)
    return written
