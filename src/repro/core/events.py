"""Event model and the plain-CSV graph stream format (paper section 4.2).

A graph stream is a plain comma-separated value file with one event per
line::

    COMMAND, ENTITY_ID, PAYLOAD

Graph-changing events add or remove a vertex/edge or update its state.
Vertices are identified by a unique id; edges are identified by
concatenating source and destination ids separated by a dash
(``"3-4"`` is the edge from vertex ``3`` to vertex ``4``).  States are
user-defined strings (e.g. stringified JSON).

Beyond the six graph-changing commands, a stream may contain *marker*
events that flag specific points in the stream for later time
correlation, and *control* events which change the replayer's behaviour
at runtime: ``SPEED`` multiplies the base replay rate by a factor
(``1`` restores the initially configured rate) and ``PAUSE`` suspends
emission for a given number of seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import StreamFormatError

__all__ = [
    "EventType",
    "Event",
    "GraphEvent",
    "MarkerEvent",
    "SpeedEvent",
    "PauseEvent",
    "EdgeId",
    "parse_edge_id",
    "format_edge_id",
    "parse_line",
    "format_event",
    "add_vertex",
    "remove_vertex",
    "update_vertex",
    "add_edge",
    "remove_edge",
    "update_edge",
    "marker",
    "speed",
    "pause",
]


class EventType(enum.Enum):
    """Commands that may appear in a graph stream.

    The six graph-changing operations come straight from the paper's
    system model (section 3.1); ``MARKER``, ``SPEED`` and ``PAUSE`` are
    the marker/control events of section 4.2.
    """

    ADD_VERTEX = "ADD_VERTEX"
    REMOVE_VERTEX = "REMOVE_VERTEX"
    UPDATE_VERTEX = "UPDATE_VERTEX"
    ADD_EDGE = "ADD_EDGE"
    REMOVE_EDGE = "REMOVE_EDGE"
    UPDATE_EDGE = "UPDATE_EDGE"
    MARKER = "MARKER"
    SPEED = "SPEED"
    PAUSE = "PAUSE"

    @property
    def is_graph_event(self) -> bool:
        """True for the six operations that change the graph."""
        return self in _GRAPH_EVENT_TYPES

    @property
    def is_topology_event(self) -> bool:
        """True for operations that add or remove vertices/edges."""
        return self in _TOPOLOGY_EVENT_TYPES

    @property
    def is_state_event(self) -> bool:
        """True for operations that only update vertex/edge state."""
        return self in (EventType.UPDATE_VERTEX, EventType.UPDATE_EDGE)

    @property
    def is_vertex_event(self) -> bool:
        return self in (
            EventType.ADD_VERTEX,
            EventType.REMOVE_VERTEX,
            EventType.UPDATE_VERTEX,
        )

    @property
    def is_edge_event(self) -> bool:
        return self in (
            EventType.ADD_EDGE,
            EventType.REMOVE_EDGE,
            EventType.UPDATE_EDGE,
        )

    @property
    def is_control_event(self) -> bool:
        """True for events that steer the replayer rather than the graph."""
        return self in (EventType.SPEED, EventType.PAUSE)


_GRAPH_EVENT_TYPES = frozenset(
    {
        EventType.ADD_VERTEX,
        EventType.REMOVE_VERTEX,
        EventType.UPDATE_VERTEX,
        EventType.ADD_EDGE,
        EventType.REMOVE_EDGE,
        EventType.UPDATE_EDGE,
    }
)

_TOPOLOGY_EVENT_TYPES = frozenset(
    {
        EventType.ADD_VERTEX,
        EventType.REMOVE_VERTEX,
        EventType.ADD_EDGE,
        EventType.REMOVE_EDGE,
    }
)


@dataclass(frozen=True, slots=True)
class EdgeId:
    """A directed edge identifier: source and destination vertex ids."""

    source: int
    target: int

    def __str__(self) -> str:
        return f"{self.source}-{self.target}"

    def reversed(self) -> "EdgeId":
        """The edge id with source and target swapped."""
        return EdgeId(self.target, self.source)

    def as_tuple(self) -> tuple[int, int]:
        return (self.source, self.target)


def parse_edge_id(text: str) -> EdgeId:
    """Parse a ``"src-dst"`` edge identifier.

    The parse is sign-aware — negative vertex ids such as ``"-1-4"``
    (the edge from vertex ``-1`` to vertex ``4``) are accepted, and
    optional whitespace around either id is tolerated.  Raises
    :class:`StreamFormatError` when the identifier is malformed.
    """
    text = text.strip()
    # Search from index 1 so a leading minus sign of a negative source
    # id is never mistaken for the separator.
    sep = text.find("-", 1)
    if sep == -1:
        raise StreamFormatError(f"edge id {text!r} has no '-' separator")
    try:
        return EdgeId(int(text[:sep]), int(text[sep + 1 :]))
    except ValueError:
        raise StreamFormatError(
            f"edge id {text!r} does not contain two integer vertex ids"
        ) from None


def format_edge_id(source: int, target: int) -> str:
    """Format an edge identifier as ``"src-dst"``."""
    return f"{source}-{target}"


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for every entry in a graph stream."""

    @property
    def type(self) -> EventType:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class GraphEvent(Event):
    """One of the six graph-changing operations.

    ``entity`` is an ``int`` vertex id for vertex operations and an
    :class:`EdgeId` for edge operations.  ``payload`` carries the new
    state for add/update operations (a user-defined string) and is
    empty for removals.
    """

    event_type: EventType
    entity: int | EdgeId
    payload: str = ""

    def __post_init__(self) -> None:
        if not self.event_type.is_graph_event:
            raise ValueError(f"{self.event_type} is not a graph-changing event")
        if self.event_type.is_vertex_event and not isinstance(self.entity, int):
            raise ValueError(
                f"{self.event_type.value} requires an int vertex id, "
                f"got {type(self.entity).__name__}"
            )
        if self.event_type.is_edge_event and not isinstance(self.entity, EdgeId):
            raise ValueError(
                f"{self.event_type.value} requires an EdgeId, "
                f"got {type(self.entity).__name__}"
            )

    @property
    def type(self) -> EventType:
        return self.event_type

    @property
    def vertex_id(self) -> int:
        """The vertex id for vertex events (raises otherwise)."""
        if not isinstance(self.entity, int):
            raise TypeError(f"{self.event_type.value} event has no vertex id")
        return self.entity

    @property
    def edge_id(self) -> EdgeId:
        """The edge id for edge events (raises otherwise)."""
        if not isinstance(self.entity, EdgeId):
            raise TypeError(f"{self.event_type.value} event has no edge id")
        return self.entity


@dataclass(frozen=True, slots=True)
class MarkerEvent(Event):
    """Flags a specific point in the stream for later time correlation."""

    label: str

    @property
    def type(self) -> EventType:
        return EventType.MARKER


@dataclass(frozen=True, slots=True)
class SpeedEvent(Event):
    """Changes the replayer speed: factor 1 is the initially set rate."""

    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"speed factor must be positive, got {self.factor}")

    @property
    def type(self) -> EventType:
        return EventType.SPEED


@dataclass(frozen=True, slots=True)
class PauseEvent(Event):
    """Pauses the replayer for a given number of seconds."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError(f"pause duration must be >= 0, got {self.seconds}")

    @property
    def type(self) -> EventType:
        return EventType.PAUSE


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def add_vertex(vertex_id: int, state: str = "") -> GraphEvent:
    """An ``ADD_VERTEX`` event creating ``vertex_id`` with initial state."""
    return GraphEvent(EventType.ADD_VERTEX, vertex_id, state)


def remove_vertex(vertex_id: int) -> GraphEvent:
    """A ``REMOVE_VERTEX`` event deleting ``vertex_id``."""
    return GraphEvent(EventType.REMOVE_VERTEX, vertex_id)


def update_vertex(vertex_id: int, state: str) -> GraphEvent:
    """An ``UPDATE_VERTEX`` event replacing the state of ``vertex_id``."""
    return GraphEvent(EventType.UPDATE_VERTEX, vertex_id, state)


def add_edge(source: int, target: int, state: str = "") -> GraphEvent:
    """An ``ADD_EDGE`` event creating the edge ``source -> target``."""
    return GraphEvent(EventType.ADD_EDGE, EdgeId(source, target), state)


def remove_edge(source: int, target: int) -> GraphEvent:
    """A ``REMOVE_EDGE`` event deleting the edge ``source -> target``."""
    return GraphEvent(EventType.REMOVE_EDGE, EdgeId(source, target))


def update_edge(source: int, target: int, state: str) -> GraphEvent:
    """An ``UPDATE_EDGE`` event replacing the state of ``source -> target``."""
    return GraphEvent(EventType.UPDATE_EDGE, EdgeId(source, target), state)


def marker(label: str) -> MarkerEvent:
    """A marker event with the given correlation label."""
    return MarkerEvent(label)


def speed(factor: float) -> SpeedEvent:
    """A control event that sets the replay speed-up ``factor``."""
    return SpeedEvent(factor)


def pause(seconds: float) -> PauseEvent:
    """A control event that pauses the replayer for ``seconds``."""
    return PauseEvent(seconds)


# ---------------------------------------------------------------------------
# CSV (de)serialization
# ---------------------------------------------------------------------------

_PAYLOAD_ESCAPES = {"\\": "\\\\", ",": "\\,", "\n": "\\n", "\r": "\\r"}
_PAYLOAD_UNESCAPES = {"\\": "\\", ",": ",", "n": "\n", "r": "\r"}


def _escape_payload(payload: str) -> str:
    """Escape separators/newlines so a payload survives the CSV line format."""
    if not any(ch in payload for ch in _PAYLOAD_ESCAPES):
        return payload
    return "".join(_PAYLOAD_ESCAPES.get(ch, ch) for ch in payload)


def _unescape_payload(payload: str) -> str:
    out: list[str] = []
    it = iter(range(len(payload)))
    i = 0
    while i < len(payload):
        ch = payload[i]
        if ch == "\\" and i + 1 < len(payload):
            nxt = payload[i + 1]
            if nxt in _PAYLOAD_UNESCAPES:
                out.append(_PAYLOAD_UNESCAPES[nxt])
                i += 2
                continue
        out.append(ch)
        i += 1
    del it
    return "".join(out)


def format_event(event: Event) -> str:
    """Serialize an event as one CSV stream line (without newline).

    Thin wrapper over :func:`repro.core.codec.format_event`; use
    :func:`repro.core.codec.format_events` to serialize whole batches.
    """
    return _codec.format_event(event)


def parse_line(line: str, line_number: int | None = None) -> Event:
    """Parse one CSV stream line into an :class:`Event`.

    Thin wrapper over :func:`repro.core.codec.parse_line`; use
    :func:`repro.core.codec.parse_lines` to parse whole batches.
    Raises :class:`StreamFormatError` on malformed input.  Payloads may
    contain escaped commas (``\\,``); only the first two unescaped
    commas separate the three fields.
    """
    return _codec.parse_line(line, line_number)


def _legacy_format_event(event: Event) -> str:
    """Pre-codec per-event serializer.

    Retained as the baseline for ``benchmarks/bench_codec_throughput``
    and the codec equivalence tests; new code should use
    :func:`format_event` / :func:`repro.core.codec.format_events`.
    """
    if isinstance(event, GraphEvent):
        entity = str(event.entity)
        return f"{event.event_type.value},{entity},{_escape_payload(event.payload)}"
    if isinstance(event, MarkerEvent):
        return f"MARKER,{_escape_payload(event.label)},"
    if isinstance(event, SpeedEvent):
        return f"SPEED,{event.factor:g},"
    if isinstance(event, PauseEvent):
        return f"PAUSE,{event.seconds:g},"
    raise TypeError(f"cannot serialize {type(event).__name__}")


def _legacy_parse_line(line: str, line_number: int | None = None) -> Event:
    """Pre-codec per-line parser.

    Retained as the baseline for ``benchmarks/bench_codec_throughput``
    and the codec equivalence tests; new code should use
    :func:`parse_line` / :func:`repro.core.codec.parse_lines`.
    """
    line = line.rstrip("\n\r")
    if not line:
        raise StreamFormatError("empty line", line_number)

    command, sep, rest = line.partition(",")
    if not sep:
        raise StreamFormatError(f"no fields after command {command!r}", line_number)
    command = command.strip()
    try:
        event_type = EventType(command)
    except ValueError:
        raise StreamFormatError(f"unknown command {command!r}", line_number) from None

    entity_text, __, payload = rest.partition(",")

    if event_type is EventType.MARKER:
        # Marker labels are preserved verbatim (no whitespace stripping)
        # so arbitrary labels survive the round trip.
        return MarkerEvent(_unescape_payload(entity_text))
    entity_text = entity_text.strip()
    if event_type is EventType.SPEED:
        try:
            return SpeedEvent(float(entity_text))
        except ValueError as exc:
            raise StreamFormatError(f"bad SPEED factor: {exc}", line_number) from None
    if event_type is EventType.PAUSE:
        try:
            return PauseEvent(float(entity_text))
        except ValueError as exc:
            raise StreamFormatError(f"bad PAUSE duration: {exc}", line_number) from None

    payload = _unescape_payload(payload)
    if event_type.is_vertex_event:
        try:
            vertex_id = int(entity_text)
        except ValueError:
            raise StreamFormatError(
                f"vertex id {entity_text!r} is not an integer", line_number
            ) from None
        return GraphEvent(event_type, vertex_id, payload)

    try:
        edge_id = parse_edge_id(entity_text)
    except StreamFormatError as exc:
        raise StreamFormatError(str(exc), line_number) from None
    return GraphEvent(event_type, edge_id, payload)


# Imported last: the codec depends on the event classes defined above,
# while the parse_line/format_event wrappers delegate to the codec.
# The module-object binding (rather than from-imports of functions)
# keeps the circular import safe from either entry path.
from repro.core import codec as _codec  # noqa: E402
