"""A-priori fault injection into graph streams (paper section 3.2).

The framework replays streams with strong guarantees (ordered,
reliable, exactly-once), but the analyst may *deterministically* derive
faulty streams from a correct one before replay: dropping events
(losses), duplicating events, or shuffling partial streams
(reordering).  All injectors are seeded and only affect graph-changing
events — markers and control events keep their relative positions so
time correlation and replay control still work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.events import Event, GraphEvent
from repro.core.stream import GraphStream

__all__ = [
    "drop_events",
    "duplicate_events",
    "shuffle_windows",
    "FaultPlan",
    "apply_fault_plan",
]


def _validated_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def drop_events(
    stream: GraphStream, probability: float, seed: int = 0
) -> GraphStream:
    """Drop each graph event independently with ``probability``.

    Models event loss on an unreliable channel.  Non-graph events are
    never dropped.
    """
    _validated_probability("probability", probability)
    rng = random.Random(seed)
    kept = [
        event
        for event in stream
        if not (isinstance(event, GraphEvent) and rng.random() < probability)
    ]
    return GraphStream(kept)


def duplicate_events(
    stream: GraphStream, probability: float, seed: int = 0
) -> GraphStream:
    """Duplicate each graph event independently with ``probability``.

    The duplicate immediately follows the original (at-least-once
    delivery with redelivery).  Non-graph events are never duplicated.
    """
    _validated_probability("probability", probability)
    rng = random.Random(seed)
    result: list[Event] = []
    for event in stream:
        result.append(event)
        if isinstance(event, GraphEvent) and rng.random() < probability:
            result.append(event)
    return GraphStream(result)


def shuffle_windows(
    stream: GraphStream, window: int, probability: float = 1.0, seed: int = 0
) -> GraphStream:
    """Shuffle graph events within consecutive windows (reordering).

    The stream is cut into windows of ``window`` *graph events*; each
    window is shuffled with ``probability``.  Markers and control
    events stay at their absolute positions, so reordering never moves
    an event across a marker/pause boundary — matching how network
    reordering is bounded in practice by buffer sizes.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    _validated_probability("probability", probability)
    rng = random.Random(seed)

    events = list(stream)
    graph_positions = [
        i for i, event in enumerate(events) if isinstance(event, GraphEvent)
    ]
    for start in range(0, len(graph_positions), window):
        chunk = graph_positions[start : start + window]
        if len(chunk) < 2 or rng.random() >= probability:
            continue
        values = [events[i] for i in chunk]
        rng.shuffle(values)
        for position, value in zip(chunk, values):
            events[position] = value
    return GraphStream(events)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A composable description of injected faults.

    Faults are applied in the fixed order drop → duplicate → reorder,
    which mirrors a lossy, redelivering, reordering channel.  Each
    stage draws from an independent sub-seed so changing one rate does
    not perturb the other stages.
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    shuffle_window: int = 0
    shuffle_probability: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        _validated_probability("drop_probability", self.drop_probability)
        _validated_probability("duplicate_probability", self.duplicate_probability)
        _validated_probability("shuffle_probability", self.shuffle_probability)
        if self.shuffle_window < 0:
            raise ValueError("shuffle_window must be >= 0")

    @property
    def is_noop(self) -> bool:
        return (
            self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.shuffle_window == 0
        )


def apply_fault_plan(stream: GraphStream, plan: FaultPlan) -> GraphStream:
    """Apply a :class:`FaultPlan` and return the faulty stream."""
    result = stream
    if plan.drop_probability > 0:
        result = drop_events(result, plan.drop_probability, seed=plan.seed * 3 + 1)
    if plan.duplicate_probability > 0:
        result = duplicate_events(
            result, plan.duplicate_probability, seed=plan.seed * 3 + 2
        )
    if plan.shuffle_window > 0:
        result = shuffle_windows(
            result,
            plan.shuffle_window,
            probability=plan.shuffle_probability,
            seed=plan.seed * 3 + 3,
        )
    return result
