"""Runtime metrics loggers (paper sections 4.1 and 5.1).

A logger periodically executes an operation — sampling a probe,
submitting a query, collecting a metric — appends a timestamp to the
outcome and writes it to its local log.  After the run the
:mod:`~repro.core.collector` merges all local logs.

:class:`SimPeriodicLogger` runs on the simulation clock;
:class:`ObjectSeriesLogger` captures full Python objects (e.g. rank
dictionaries) for retrospective analyses that need more than a scalar.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.resultlog import Record
from repro.sim.kernel import Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.tracing import Tracer

__all__ = ["SimPeriodicLogger", "ObjectSeriesLogger"]


class SimPeriodicLogger:
    """Samples a probe every ``interval`` simulated seconds.

    ``probe`` returns a list of records per invocation.  The logger
    keeps sampling until :meth:`stop` is called (the harness stops all
    loggers once the replay has finished and the platform drained).

    With a ``tracer``, each sampling tick also records an instant span
    (category ``"logger"``) so exported traces show when observation
    happened relative to the event flow — the reflection-measurement
    alignment the paper's cross-level analyses depend on.
    """

    def __init__(
        self,
        sim: Simulation,
        interval: float,
        probe: Callable[[], list[Record]],
        name: str = "logger",
        tracer: "Tracer | None" = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self.interval = interval
        self._probe = probe
        self.name = name
        self._tracer = tracer
        self.records: list[Record] = []
        self._stopped = False
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        produced = self._probe()
        self.records.extend(produced)
        if self._tracer is not None:
            self._tracer.instant(
                "sample",
                "logger",
                timestamp=self._sim.now,
                count=len(produced),
                logger=self.name,
            )
        self._sim.schedule(self.interval, self._tick)


class ObjectSeriesLogger:
    """Captures ``(timestamp, object)`` snapshots for later analysis.

    Scalar records go to the result log; some analyses (retrospective
    rank errors, section 5.3.2) need the full intermediate result —
    this logger keeps those as Python objects alongside the run.
    """

    def __init__(
        self,
        sim: Simulation,
        interval: float,
        capture: Callable[[], Any],
        name: str = "objects",
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self.interval = interval
        self._capture = capture
        self.name = name
        self.samples: list[tuple[float, Any]] = []
        self._stopped = False
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.samples.append((self._sim.now, self._capture()))
        self._sim.schedule(self.interval, self._tick)
