"""Measurement probes for the three evaluation levels (section 4.3).

* Level 0 — agnostic, outside-the-box measurements of the platform's
  processes: CPU utilisation (the ``pidstat``-style probe), memory and
  I/O proxies.  For simulated platforms these read the simulation
  kernel's resource accounting; :class:`LiveProcessProbe` reads the
  real ``/proc`` filesystem for live (wall-clock) runs such as the
  replayer benchmark.
* Level 1 — :class:`NativeMetricsProbe` polls the platform's native
  metrics interface.
* Level 2 — :class:`InternalProbe` reads injected measurement logic.

Each probe is a callable returning a list of
:class:`~repro.core.resultlog.Record` for the current instant; loggers
invoke probes periodically.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable

from repro.core.resultlog import Record
from repro.core.tracing import TraceClock, shared_clock
from repro.platforms.base import Platform
from repro.sim.kernel import Simulation

__all__ = [
    "CpuUtilizationProbe",
    "NativeMetricsProbe",
    "InternalProbe",
    "LiveProcessProbe",
]


class CpuUtilizationProbe:
    """Level-0 probe: per-process CPU utilisation of a simulated platform.

    Samples each process's busy fraction since the previous sample —
    exactly what periodic profiling tools report.  Values are percent
    (0–100), one record per process per sample.
    """

    def __init__(self, platform: Platform, sim: Simulation):
        self._platform = platform
        self._sim = sim

    def __call__(self) -> list[Record]:
        now = self._sim.now
        return [
            Record(
                timestamp=now,
                source=process.name,
                metric="cpu_load",
                value=100.0 * process.utilization_since_last_sample(),
            )
            for process in self._platform.processes()
        ]


class NativeMetricsProbe:
    """Level-1 probe: polls the platform's native metrics interface."""

    def __init__(self, platform: Platform, sim: Simulation):
        self._platform = platform
        self._sim = sim

    def __call__(self) -> list[Record]:
        now = self._sim.now
        metrics = self._platform.native_metrics()
        return [
            Record(
                timestamp=now,
                source=self._platform.name,
                metric=name,
                value=value,
            )
            for name, value in sorted(metrics.items())
        ]


class InternalProbe:
    """Level-2 probe: reads one injected internal measurement.

    ``extract`` may post-process the probed object into one float or a
    list of (suffix, float) pairs — e.g. per-worker queue lengths
    become ``queue_length`` records from sources ``worker-0`` etc.
    """

    def __init__(
        self,
        platform: Platform,
        sim: Simulation,
        probe_name: str,
        metric: str,
        extract: Callable[[Any], float | list[tuple[str, float]]] | None = None,
    ):
        self._platform = platform
        self._sim = sim
        self._probe_name = probe_name
        self._metric = metric
        self._extract = extract

    def __call__(self) -> list[Record]:
        now = self._sim.now
        value = self._platform.internal_probe(self._probe_name)
        if self._extract is not None:
            value = self._extract(value)
        if isinstance(value, list):
            records = []
            for item in value:
                if isinstance(item, tuple):
                    suffix, v = item
                else:  # plain list: index becomes the suffix
                    suffix, v = str(len(records)), item
                records.append(
                    Record(
                        timestamp=now,
                        source=f"{self._platform.name}-{suffix}",
                        metric=self._metric,
                        value=float(v),
                    )
                )
            return records
        return [
            Record(
                timestamp=now,
                source=self._platform.name,
                metric=self._metric,
                value=float(value),
            )
        ]


class LiveProcessProbe:
    """Level-0 probe for *real* processes (live runs): /proc sampling.

    Reads CPU jiffies and RSS of a PID from ``/proc/<pid>/stat`` and
    ``/proc/<pid>/status``; each call reports CPU percent since the
    previous call and current memory.  Degrades gracefully (no records)
    on platforms without procfs.

    Records are stamped with the run's unified
    :class:`~repro.core.tracing.TraceClock` (the process-wide shared
    clock by default) so live-probe series share an epoch with the
    replayer's and receivers' series and can be cross-correlated.
    Historically this probe used ``time.monotonic()`` while the
    replayer used ``time.perf_counter()`` — two clocks with different
    epochs, making level-0 series from the same run unalignable.
    """

    def __init__(
        self,
        pid: int | None = None,
        source: str | None = None,
        clock: TraceClock | None = None,
    ):
        self._pid = pid if pid is not None else os.getpid()
        self._source = source or f"pid-{self._pid}"
        self._clock = clock if clock is not None else shared_clock()
        self._last_jiffies: int | None = None
        self._last_time: float | None = None
        self._ticks = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100

    def _read_jiffies(self) -> int | None:
        try:
            stat = Path(f"/proc/{self._pid}/stat").read_text()
        except OSError:
            return None
        # Fields 14 and 15 (utime, stime), after the comm field which may
        # contain spaces — split on the closing paren.
        after = stat.rpartition(")")[2].split()
        return int(after[11]) + int(after[12])

    def _read_rss(self) -> int | None:
        try:
            with open(f"/proc/{self._pid}/status", "r", encoding="ascii") as handle:
                for line in handle:
                    if line.startswith("VmRSS:"):
                        return int(line.split()[1]) * 1024
        except OSError:
            return None
        return None

    def __call__(self) -> list[Record]:
        now = self._clock.now()
        records: list[Record] = []
        jiffies = self._read_jiffies()
        if jiffies is not None:
            if self._last_jiffies is not None and self._last_time is not None:
                elapsed = now - self._last_time
                if elapsed > 0:
                    cpu_seconds = (jiffies - self._last_jiffies) / self._ticks
                    records.append(
                        Record(
                            timestamp=now,
                            source=self._source,
                            metric="cpu_load",
                            value=100.0 * cpu_seconds / elapsed,
                        )
                    )
            self._last_jiffies = jiffies
            self._last_time = now
        rss = self._read_rss()
        if rss is not None:
            records.append(
                Record(
                    timestamp=now,
                    source=self._source,
                    metric="memory_usage",
                    value=float(rss),
                )
            )
        return records
