"""Graph stream container, file I/O and workload characterisation.

A :class:`GraphStream` is an ordered sequence of events (graph-changing,
marker, and control events) that can be persisted to / loaded from the
plain CSV format of section 4.2.  The module also computes the stream
properties of section 4.4.1 — event mix, topology-change direction and
type ratios, state-change type ratios, and windowed temporal
distributions — which together characterise the load a stream induces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core import codec
from repro.core.events import (
    Event,
    EventType,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
)
__all__ = ["GraphStream", "StreamStatistics", "WindowStatistics"]

#: Conventional marker label separating bootstrap phase from evaluation phase.
BOOTSTRAP_END_MARKER = "bootstrap-end"


@dataclass(frozen=True, slots=True)
class WindowStatistics:
    """Event counts within one window of a stream (temporal distribution)."""

    start_index: int
    end_index: int
    topology_events: int
    state_events: int
    add_events: int
    remove_events: int

    @property
    def total_events(self) -> int:
        return self.topology_events + self.state_events


@dataclass(frozen=True, slots=True)
class StreamStatistics:
    """Aggregate workload properties of a stream (section 4.4.1).

    Ratios are in ``[0, 1]`` and are ``nan`` when their denominator is
    zero (e.g. the add/remove direction ratio of a stream without
    topology changes).
    """

    total_events: int
    graph_events: int
    marker_events: int
    control_events: int
    topology_events: int
    state_events: int
    vertex_events: int
    edge_events: int
    add_events: int
    remove_events: int
    counts_by_type: dict[EventType, int]

    @property
    def event_mix(self) -> float:
        """Ratio of topology-changing events among graph events."""
        if not self.graph_events:
            return math.nan
        return self.topology_events / self.graph_events

    @property
    def direction_ratio(self) -> float:
        """Ratio of add operations among topology-changing events."""
        denominator = self.add_events + self.remove_events
        if not denominator:
            return math.nan
        return self.add_events / denominator

    @property
    def vertex_ratio(self) -> float:
        """Ratio of vertex operations among graph events."""
        if not self.graph_events:
            return math.nan
        return self.vertex_events / self.graph_events


class GraphStream:
    """An ordered, replayable sequence of stream events.

    The container is list-like (indexing, slicing, iteration, length)
    and adds stream-specific helpers: file (de)serialisation, phase
    splitting at the bootstrap marker, and workload statistics.
    """

    def __init__(self, events: Iterable[Event] = ()):
        self._events: list[Event] = list(events)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return GraphStream(self._events[index])
        return self._events[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GraphStream):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:
        return f"GraphStream({len(self._events)} events)"

    def append(self, event: Event) -> None:
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        self._events.extend(events)

    @property
    def events(self) -> Sequence[Event]:
        """Read-only view of the underlying event list."""
        return tuple(self._events)

    # -- derived views ---------------------------------------------------------

    def graph_events(self) -> Iterator[GraphEvent]:
        """Iterate over only the graph-changing events."""
        return (e for e in self._events if isinstance(e, GraphEvent))

    def markers(self) -> list[tuple[int, MarkerEvent]]:
        """All marker events with their stream indices."""
        return [
            (i, e) for i, e in enumerate(self._events) if isinstance(e, MarkerEvent)
        ]

    def marker_index(self, label: str) -> int:
        """Stream index of the first marker with ``label``.

        Raises :class:`ValueError` when no such marker exists.
        """
        for i, event in enumerate(self._events):
            if isinstance(event, MarkerEvent) and event.label == label:
                return i
        raise ValueError(f"no marker labelled {label!r} in stream")

    def split_phases(
        self, marker_label: str = BOOTSTRAP_END_MARKER
    ) -> tuple["GraphStream", "GraphStream"]:
        """Split into (bootstrap, evaluation) sub-streams at a marker.

        Follows section 4.1: the stream is typically divided in two
        parts by a marker (and usually a pause event); the first phase
        bootstraps the initial graph, the second is the main evaluation
        phase.  The marker itself ends the bootstrap phase; an
        immediately following pause event is also assigned to the
        bootstrap phase.
        """
        index = self.marker_index(marker_label)
        split = index + 1
        if split < len(self._events) and isinstance(self._events[split], PauseEvent):
            split += 1
        return GraphStream(self._events[:split]), GraphStream(self._events[split:])

    def partition(
        self, workers: int, shard_by: str = "round-robin"
    ) -> list["GraphStream"]:
        """Split into ``workers`` marker-aligned shards for parallel
        replay: graph events are distributed, control events replicated
        (see :func:`repro.core.sharding.partition_stream`).
        """
        from repro.core.sharding import partition_stream

        return partition_stream(self, workers, shard_by)

    # -- statistics ---------------------------------------------------------

    def statistics(self) -> StreamStatistics:
        """Aggregate workload statistics over the whole stream."""
        counts: dict[EventType, int] = {t: 0 for t in EventType}
        for event in self._events:
            counts[event.type] += 1

        graph_total = sum(counts[t] for t in EventType if t.is_graph_event)
        topology = sum(counts[t] for t in EventType if t.is_topology_event)
        vertex = sum(counts[t] for t in EventType if t.is_vertex_event)
        edge = sum(counts[t] for t in EventType if t.is_edge_event)
        adds = counts[EventType.ADD_VERTEX] + counts[EventType.ADD_EDGE]
        removes = counts[EventType.REMOVE_VERTEX] + counts[EventType.REMOVE_EDGE]
        state = counts[EventType.UPDATE_VERTEX] + counts[EventType.UPDATE_EDGE]

        return StreamStatistics(
            total_events=len(self._events),
            graph_events=graph_total,
            marker_events=counts[EventType.MARKER],
            control_events=counts[EventType.SPEED] + counts[EventType.PAUSE],
            topology_events=topology,
            state_events=state,
            vertex_events=vertex,
            edge_events=edge,
            add_events=adds,
            remove_events=removes,
            counts_by_type=counts,
        )

    def windowed_statistics(self, window: int) -> list[WindowStatistics]:
        """Temporal distribution: per-window event counts.

        ``window`` is the number of stream entries per window; the last
        window may be shorter.  Raises :class:`ValueError` for
        non-positive windows.
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        result: list[WindowStatistics] = []
        for start in range(0, len(self._events), window):
            chunk = self._events[start : start + window]
            topology = state = adds = removes = 0
            for event in chunk:
                event_type = event.type
                if event_type.is_topology_event:
                    topology += 1
                    if event_type in (EventType.ADD_VERTEX, EventType.ADD_EDGE):
                        adds += 1
                    else:
                        removes += 1
                elif event_type.is_state_event:
                    state += 1
            result.append(
                WindowStatistics(
                    start_index=start,
                    end_index=start + len(chunk),
                    topology_events=topology,
                    state_events=state,
                    add_events=adds,
                    remove_events=removes,
                )
            )
        return result

    # -- file I/O ----------------------------------------------------------

    def write(self, path: str | Path, *, format: str = "csv") -> None:
        """Write the stream to a stream file (CSV or binary).

        ``format="csv"`` writes one event per line via the codec's bulk
        formatter (one buffered write per chunk); ``format="binary"``
        writes the length-prefixed GTB1 frame format with a trailing
        batch index.
        """
        codec.write_stream_file(path, self._events, format=format)

    @classmethod
    def read(cls, path: str | Path, *, trusted: bool = False) -> "GraphStream":
        """Load a stream from a CSV stream file.

        Blank lines and lines starting with ``#`` are skipped; any other
        malformed line raises :class:`StreamFormatError` with its line
        number.  The file is decoded in ~64 KiB blocks through the
        codec fast path; ``trusted=True`` additionally skips redundant
        per-event validation for machine-generated files.
        """
        return cls(codec.parse_stream_file(path, trusted=trusted))

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "GraphStream":
        """Parse a stream from an iterable of CSV lines (skips blanks)."""
        return cls(codec.parse_lines(lines, skip_comments=True))

    def to_lines(self) -> list[str]:
        """Serialize each event to its CSV line (without newlines)."""
        return codec.format_lines(self._events)
