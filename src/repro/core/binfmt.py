"""Length-prefixed binary graph stream format (peer of the CSV format).

The CSV format of :mod:`repro.core.events` is the paper's interchange
representation; it is also the replay engine's parse bottleneck — the
scale-out benchmark shows parsed-events emission saturating an order of
magnitude below zero-copy byte emission, entirely on string splitting
and integer parsing.  This module defines a binary encoding designed
for cheap machine decoding (SProBench-style HPC stream framing): fixed
``struct``-packed fields, one-byte :class:`~repro.core.events.EventType`
tags, and explicit length prefixes so a reader slices records and
frames without ever scanning content for separators.

Wire layout (all integers little-endian)::

    file    :=  magic frame* [index]
    magic   :=  "GTB1"                                   (4 bytes)
    frame   :=  kind:u8  count:u32  body_len:u32  body   (9-byte header)
                kind 0: graph frame  — body is `count` graph records
                kind 1: control frame — body is 1 MARKER/SPEED/PAUSE record
    record  :=  tag:u8  body_len:u32  body               (5-byte header)
                vertex body:  id:i64, payload utf-8
                edge   body:  source:i64, target:i64, payload utf-8
                MARKER body:  label utf-8 (verbatim — no escaping)
                SPEED  body:  factor:f64
                PAUSE  body:  seconds:f64
    index   :=  "GTBI" n:u32 (offset:u64 count:u32 kind:u8)*n
                index_offset:u64 "GTBE"                  (trailing)

Frames are the mmap-able batch index of the stream: every frame header
carries its extent, so :func:`iter_binary_batches` jumps header to
header and hands each graph frame to the transport as one zero-copy
:class:`~repro.core.codec.RawBatch` — the binary analogue of the CSV
newline-run scanner, without the newline scan.  The trailing index
summarises the frame table for O(1) counting and random access; files
cut off mid-stream (or written through a raw pipe, which never sees the
footer) remain fully readable by header jumping.

Payloads and marker labels are raw UTF-8 — the CSV escaping rules
(``\\,``, ``\\n``, ...) do not exist here, so any string round-trips
byte-exactly.  SPEED/PAUSE values are IEEE doubles, exact where CSV's
``%g`` rendering rounds.

``_TAG_BY_TYPE`` is a hand-maintained literal on purpose: the wire
format must stay stable even if the enum is ever reordered.  The
``SCHEMA004`` check rule verifies it stays in lockstep with
:class:`~repro.core.events.EventType` and the CSV dispatch tables.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Callable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.codec import RawBatch
    from repro.core.tracing import Tracer

from repro.core.events import (
    EdgeId,
    Event,
    EventType,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
    SpeedEvent,
)
from repro.errors import StreamFormatError

__all__ = [
    "MAGIC",
    "FRAME_GRAPH",
    "FRAME_CONTROL",
    "detect_format",
    "encode_event",
    "decode_event",
    "encode_graph_frame",
    "encode_control_frame",
    "decode_frame_events",
    "scan_frame",
    "iter_frame_record_spans",
    "record_entity_id",
    "frame_info",
    "BinaryStreamWriter",
    "write_binary_stream",
    "iter_binary_batches",
    "iter_wire_frame_counts",
    "iter_parse_binary_chunks",
    "parse_binary_stream",
    "read_frame_index",
    "convert_stream",
]

#: First bytes of every binary stream file.
MAGIC = b"GTB1"
#: Leads the trailing frame index.
INDEX_MAGIC = b"GTBI"
#: Last four bytes of an indexed file.
END_MAGIC = b"GTBE"

#: Frame kinds.
FRAME_GRAPH = 0
FRAME_CONTROL = 1

_FRAME_HEADER = struct.Struct("<BII")  # kind, record count, body length
_RECORD_HEADER = struct.Struct("<BI")  # tag, body length
_I64 = struct.Struct("<q")
_I64_PAIR = struct.Struct("<qq")
_F64 = struct.Struct("<d")
_INDEX_ENTRY = struct.Struct("<QIB")  # frame offset, record count, kind
_INDEX_COUNT = struct.Struct("<I")
_INDEX_OFFSET = struct.Struct("<Q")

FRAME_HEADER_SIZE = _FRAME_HEADER.size
RECORD_HEADER_SIZE = _RECORD_HEADER.size

#: Wire tag per event type.  A hand-maintained literal (not derived from
#: enum order) so the on-disk format survives enum refactors; SCHEMA004
#: checks it stays a bijection with ``EventType``.
_TAG_BY_TYPE: dict[EventType, int] = {
    EventType.ADD_VERTEX: 1,
    EventType.REMOVE_VERTEX: 2,
    EventType.UPDATE_VERTEX: 3,
    EventType.ADD_EDGE: 4,
    EventType.REMOVE_EDGE: 5,
    EventType.UPDATE_EDGE: 6,
    EventType.MARKER: 7,
    EventType.SPEED: 8,
    EventType.PAUSE: 9,
}

_TYPE_BY_TAG: dict[int, EventType] = {
    tag: event_type for event_type, tag in _TAG_BY_TYPE.items()
}


def detect_format(path: str | Path) -> str:
    """``"binary"`` when ``path`` starts with the stream magic, else
    ``"csv"``.

    Only the first four bytes are read; an empty or short file is CSV
    (the CSV reader handles empty files as empty streams).
    """
    with open(path, "rb") as handle:
        return "binary" if handle.read(len(MAGIC)) == MAGIC else "csv"


# ---------------------------------------------------------------------------
# Record encoding
# ---------------------------------------------------------------------------


def _encode_graph(event: GraphEvent) -> bytes:
    tag = _TAG_BY_TYPE[event.event_type]
    payload = event.payload.encode("utf-8")
    entity = event.entity
    if type(entity) is EdgeId:
        body = _I64_PAIR.pack(entity.source, entity.target) + payload
    else:
        body = _I64.pack(entity) + payload
    return _RECORD_HEADER.pack(tag, len(body)) + body


def _encode_marker(event: MarkerEvent) -> bytes:
    body = event.label.encode("utf-8")
    return _RECORD_HEADER.pack(_TAG_BY_TYPE[EventType.MARKER], len(body)) + body


def _encode_speed(event: SpeedEvent) -> bytes:
    return _RECORD_HEADER.pack(_TAG_BY_TYPE[EventType.SPEED], 8) + _F64.pack(
        event.factor
    )


def _encode_pause(event: PauseEvent) -> bytes:
    return _RECORD_HEADER.pack(_TAG_BY_TYPE[EventType.PAUSE], 8) + _F64.pack(
        event.seconds
    )


_ENCODERS: dict[type, Callable[[Event], bytes]] = {
    GraphEvent: _encode_graph,
    MarkerEvent: _encode_marker,
    SpeedEvent: _encode_speed,
    PauseEvent: _encode_pause,
}


def encode_event(event: Event) -> bytes:
    """Serialize one event as a binary record (header + body)."""
    encoder = _ENCODERS.get(type(event))
    if encoder is not None:
        return encoder(event)
    for event_class, candidate in _ENCODERS.items():
        if isinstance(event, event_class):
            return candidate(event)
    raise TypeError(f"cannot serialize {type(event).__name__}")


# ---------------------------------------------------------------------------
# Record decoding
# ---------------------------------------------------------------------------

_NEW_GRAPH_EVENT = GraphEvent.__new__
_NEW_EDGE_ID = EdgeId.__new__
_SET = object.__setattr__


def _vertex_decoder(event_type: EventType):
    unpack_id = _I64.unpack_from

    def decode(
        buf,
        start: int,
        end: int,
        new=_NEW_GRAPH_EVENT,
        cls=GraphEvent,
        set_attr=_SET,
    ) -> GraphEvent:
        event = new(cls)
        set_attr(event, "event_type", event_type)
        set_attr(event, "entity", unpack_id(buf, start)[0])
        set_attr(event, "payload", str(buf[start + 8 : end], "utf-8"))
        return event

    return decode


def _edge_decoder(event_type: EventType):
    unpack_pair = _I64_PAIR.unpack_from

    def decode(
        buf,
        start: int,
        end: int,
        new=_NEW_GRAPH_EVENT,
        cls=GraphEvent,
        set_attr=_SET,
        new_edge=_NEW_EDGE_ID,
        edge_cls=EdgeId,
    ) -> GraphEvent:
        source, target = unpack_pair(buf, start)
        edge = new_edge(edge_cls)
        set_attr(edge, "source", source)
        set_attr(edge, "target", target)
        event = new(cls)
        set_attr(event, "event_type", event_type)
        set_attr(event, "entity", edge)
        set_attr(event, "payload", str(buf[start + 16 : end], "utf-8"))
        return event

    return decode


def _marker_decoder(buf, start: int, end: int) -> MarkerEvent:
    return MarkerEvent(str(buf[start:end], "utf-8"))


def _speed_decoder(buf, start: int, end: int) -> SpeedEvent:
    return SpeedEvent(_F64.unpack_from(buf, start)[0])


def _pause_decoder(buf, start: int, end: int) -> PauseEvent:
    return PauseEvent(_F64.unpack_from(buf, start)[0])


def _build_decoders() -> dict[int, Callable]:
    table: dict[int, Callable] = {}
    for event_type, tag in _TAG_BY_TYPE.items():
        if event_type.is_vertex_event:
            table[tag] = _vertex_decoder(event_type)
        elif event_type.is_edge_event:
            table[tag] = _edge_decoder(event_type)
    table[_TAG_BY_TYPE[EventType.MARKER]] = _marker_decoder
    table[_TAG_BY_TYPE[EventType.SPEED]] = _speed_decoder
    table[_TAG_BY_TYPE[EventType.PAUSE]] = _pause_decoder
    return table


_DECODERS: dict[int, Callable] = _build_decoders()
_KNOWN_TAGS: frozenset[int] = frozenset(_DECODERS)


def decode_event(record: bytes | memoryview, offset: int = 0) -> Event:
    """Decode one binary record starting at ``offset``."""
    try:
        tag, body_len = _RECORD_HEADER.unpack_from(record, offset)
    except struct.error:
        raise StreamFormatError(
            "truncated binary record header", byte_offset=offset
        ) from None
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise StreamFormatError(
            f"unknown binary record tag {tag}", byte_offset=offset
        )
    start = offset + RECORD_HEADER_SIZE
    end = start + body_len
    if end > len(record):
        raise StreamFormatError(
            f"binary record overruns its buffer ({end} > {len(record)})",
            byte_offset=offset,
        )
    try:
        return decoder(record, start, end)
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        raise StreamFormatError(
            f"malformed binary record: {exc}", byte_offset=offset
        ) from None


def record_entity_id(record: bytes | memoryview, offset: int = 0) -> int:
    """The shard key of a graph record (vertex id / edge source id)
    without decoding the rest of the record — the streamed partitioner's
    ``shard_by="hash"`` peek."""
    try:
        tag = record[offset]
    except IndexError:
        raise StreamFormatError(
            "truncated binary record header", byte_offset=offset
        ) from None
    event_type = _TYPE_BY_TAG.get(tag)
    if event_type is None or not event_type.is_graph_event:
        raise StreamFormatError(
            f"record tag {tag} is not a graph event", byte_offset=offset
        )
    try:
        return _I64.unpack_from(record, offset + RECORD_HEADER_SIZE)[0]
    except struct.error:
        raise StreamFormatError(
            "truncated binary record body", byte_offset=offset
        ) from None


# ---------------------------------------------------------------------------
# Frame encoding
# ---------------------------------------------------------------------------


def encode_graph_frame(events: Iterable[GraphEvent]) -> bytes:
    """Pack graph events into one graph frame (header + records)."""
    encode = _encode_graph
    records = [encode(event) for event in events]
    body = b"".join(records)
    return _FRAME_HEADER.pack(FRAME_GRAPH, len(records), len(body)) + body


def encode_control_frame(event: Event) -> bytes:
    """Pack one MARKER/SPEED/PAUSE event into a control frame."""
    record = encode_event(event)
    return _FRAME_HEADER.pack(FRAME_CONTROL, 1, len(record)) + record


def frame_records(records: list[bytes], kind: int = FRAME_GRAPH) -> bytes:
    """Frame already-encoded records verbatim (the partitioner's path:
    records sliced from a source file are reframed without decoding)."""
    body = b"".join(records)
    return _FRAME_HEADER.pack(kind, len(records), len(body)) + body


def frame_info(frame: bytes | memoryview) -> tuple[int, int]:
    """(kind, record count) of a frame byte run (header included)."""
    try:
        kind, count, __ = _FRAME_HEADER.unpack_from(frame, 0)
    except struct.error:
        raise StreamFormatError(
            "truncated binary frame header", byte_offset=0
        ) from None
    return kind, count


def iter_frame_record_spans(
    frame: bytes | memoryview,
) -> Iterator[tuple[int, int]]:
    """Yield the ``(start, end)`` byte span of each record in a frame.

    Spans include the record header, so ``frame[start:end]`` is the
    record's complete wire bytes — the streamed partitioner scatters
    these into per-shard writers without decoding them.
    """
    try:
        __, count, body_len = _FRAME_HEADER.unpack_from(frame, 0)
    except struct.error:
        raise StreamFormatError("truncated binary frame header") from None
    end_of_body = FRAME_HEADER_SIZE + body_len
    if end_of_body > len(frame):
        raise StreamFormatError(
            f"binary frame overruns its buffer ({end_of_body} > {len(frame)})"
        )
    unpack_record = _RECORD_HEADER.unpack_from
    position = FRAME_HEADER_SIZE
    seen = 0
    while position < end_of_body:
        try:
            __, body = unpack_record(frame, position)
        except struct.error:
            raise StreamFormatError(
                "truncated binary record header", byte_offset=position
            ) from None
        end = position + RECORD_HEADER_SIZE + body
        if end > end_of_body:
            raise StreamFormatError(
                f"binary record overruns its frame ({end} > {end_of_body})",
                byte_offset=position,
            )
        yield position, end
        position = end
        seen += 1
    if seen != count:
        raise StreamFormatError(
            f"binary frame header promises {count} record(s), body holds "
            f"{seen}"
        )


# hot-path
def decode_frame_events(frame: bytes | memoryview) -> list[Event]:
    """Decode every record of one frame (header included) into events.

    The decode-in-worker hot loop: per record one ``Struct.unpack_from``
    for the header, one for the entity, and one UTF-8 payload
    construction — no string splitting, no integer parsing.
    """
    try:
        __, count, body_len = _FRAME_HEADER.unpack_from(frame, 0)
    except struct.error:
        raise StreamFormatError("truncated binary frame header") from None
    end_of_body = FRAME_HEADER_SIZE + body_len
    if end_of_body > len(frame):
        raise StreamFormatError(
            f"binary frame overruns its buffer ({end_of_body} > {len(frame)})"
        )
    events: list[Event] = []
    append = events.append
    decoders = _DECODERS
    unpack_record = _RECORD_HEADER.unpack_from
    header_size = RECORD_HEADER_SIZE
    position = FRAME_HEADER_SIZE
    while position < end_of_body:
        try:
            tag, body = unpack_record(frame, position)
        except struct.error:
            raise StreamFormatError(
                "truncated binary record header", byte_offset=position
            ) from None
        start = position + header_size
        position = start + body
        decoder = decoders.get(tag)
        if decoder is None:
            raise StreamFormatError(
                f"unknown binary record tag {tag}",
                byte_offset=start - header_size,
            )
        if position > end_of_body:
            raise StreamFormatError(
                f"binary record overruns its frame ({position} > {end_of_body})",
                byte_offset=start - header_size,
            )
        try:
            append(decoder(frame, start, position))
        except (struct.error, UnicodeDecodeError, ValueError) as exc:
            raise StreamFormatError(
                f"malformed binary record: {exc}",
                byte_offset=start - header_size,
            ) from None
    if len(events) != count:
        raise StreamFormatError(
            f"binary frame header promises {count} record(s), body holds "
            f"{len(events)}"
        )
    return events


def scan_frame(frame: bytes | memoryview) -> int:
    """Validate one frame's record structure and return its record count.

    Walks every record header — tag known, length prefix inside the
    frame body, body count matching the frame header — without
    materialising event objects.  This is the decode-in-worker fast
    path for paced replay: the worker proves each record well-formed
    and counts it (the length prefixes make that a fixed-cost header
    walk, where CSV needs a charwise split-and-parse), then forwards
    the frame bytes verbatim.  Consumers that need the payloads call
    :func:`decode_frame_events` instead.
    """
    try:
        __, count, body_len = _FRAME_HEADER.unpack_from(frame, 0)
    except struct.error:
        raise StreamFormatError("truncated binary frame header") from None
    end_of_body = FRAME_HEADER_SIZE + body_len
    if end_of_body > len(frame):
        raise StreamFormatError(
            f"binary frame overruns its buffer ({end_of_body} > {len(frame)})"
        )
    known_tags = _KNOWN_TAGS
    unpack_record = _RECORD_HEADER.unpack_from
    header_size = RECORD_HEADER_SIZE
    position = FRAME_HEADER_SIZE
    seen = 0
    try:
        while position < end_of_body:
            tag, body = unpack_record(frame, position)
            if tag not in known_tags:
                raise StreamFormatError(
                    f"unknown binary record tag {tag}", byte_offset=position
                )
            position += header_size + body
            seen += 1
    except struct.error:
        raise StreamFormatError(
            "truncated binary record header", byte_offset=position
        ) from None
    if position > end_of_body:
        raise StreamFormatError(
            f"binary record overruns its frame ({position} > {end_of_body})",
            byte_offset=position,
        )
    if seen != count:
        raise StreamFormatError(
            f"binary frame header promises {count} record(s), body holds "
            f"{seen}"
        )
    return seen


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


class BinaryStreamWriter:
    """Streaming binary stream writer: magic, frames, trailing index.

    Graph events accumulate into graph frames of at most
    ``batch_records`` records; control events flush the pending graph
    frame first (frames never mix kinds, and stream order is
    preserved), then land in their own single-record control frame.
    ``add_record`` appends an already-encoded graph record verbatim —
    the streamed partitioner's zero-decode path.

    Usable as a context manager; :meth:`close` writes the trailing
    frame index.  ``events_written`` counts every record framed so far.

    With ``witness_path`` the writer also records a structural witness
    sidecar (per-frame kind/count/body, per-record body length — see
    :mod:`repro.core.witness`): the facts it already computes while
    framing, captured so a decode-mode replay can bulk-verify the file
    instead of re-walking every record header.
    """

    def __init__(
        self,
        target: str | Path | BinaryIO,
        batch_records: int = 256,
        witness_path: str | Path | None = None,
    ):
        if batch_records <= 0:
            raise ValueError(
                f"batch_records must be positive, got {batch_records}"
            )
        if isinstance(target, (str, Path)):
            self._file: BinaryIO = open(target, "wb", buffering=1 << 16)
            self._owns = True
        else:
            self._file = target
            self._owns = False
        self._batch_records = batch_records
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._index: list[tuple[int, int, int]] = []
        self._offset = len(MAGIC)
        self._closed = False
        self.events_written = 0
        self._witness_path = witness_path
        self._frame_bodies: list[int] = []
        self._record_lens: list[int] = []
        self._file.write(MAGIC)

    def _write_frame(self, frame: bytes, count: int, kind: int) -> None:
        self._index.append((self._offset, count, kind))
        if self._witness_path is not None:
            self._frame_bodies.append(len(frame) - FRAME_HEADER_SIZE)
        self._file.write(frame)
        self._offset += len(frame)
        self.events_written += count

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        records = self._pending
        body = b"".join(records)
        frame = (
            _FRAME_HEADER.pack(FRAME_GRAPH, len(records), len(body)) + body
        )
        self._write_frame(frame, len(records), FRAME_GRAPH)
        self._pending = []
        self._pending_bytes = 0

    def add(self, event: Event) -> None:
        """Append one event (graph events batch; control events frame)."""
        if type(event) is GraphEvent or isinstance(event, GraphEvent):
            self.add_record(_encode_graph(event))
        else:
            self._flush_pending()
            frame = encode_control_frame(event)
            if self._witness_path is not None:
                self._record_lens.append(
                    len(frame) - FRAME_HEADER_SIZE - RECORD_HEADER_SIZE
                )
            self._write_frame(frame, 1, FRAME_CONTROL)

    def add_record(self, record: bytes) -> None:
        """Append an already-encoded graph record verbatim."""
        self._pending.append(record)
        self._pending_bytes += len(record)
        if self._witness_path is not None:
            self._record_lens.append(len(record) - RECORD_HEADER_SIZE)
        if len(self._pending) >= self._batch_records:
            self._flush_pending()

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.add(event)

    def close(self) -> None:
        """Flush pending records and append the trailing frame index."""
        if self._closed:
            return
        self._closed = True
        self._flush_pending()
        parts = [INDEX_MAGIC, _INDEX_COUNT.pack(len(self._index))]
        parts.extend(
            _INDEX_ENTRY.pack(offset, count, kind)
            for offset, count, kind in self._index
        )
        parts.append(_INDEX_OFFSET.pack(self._offset))
        parts.append(END_MAGIC)
        trailer = b"".join(parts)
        self._file.write(trailer)
        self._file.flush()
        if self._owns:
            self._file.close()
        if self._witness_path is not None:
            from repro.core import witness

            Path(self._witness_path).write_bytes(
                witness.dump_witness(
                    [count for __, count, __ in self._index],
                    self._frame_bodies,
                    bytes(kind for __, __, kind in self._index),
                    self._record_lens,
                    self._offset + len(trailer),
                )
            )

    def __enter__(self) -> "BinaryStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_binary_stream(
    path: str | Path | BinaryIO,
    events: Iterable[Event],
    *,
    batch_records: int = 256,
    witness_path: "str | Path | None" = None,
) -> int:
    """Write events to a binary stream file; returns the event count.

    Works with lazy iterables, so arbitrarily long generators stream to
    disk without materialising.  ``witness_path`` records the
    :mod:`repro.core.witness` structural sidecar alongside, letting
    replayers skip the per-frame integrity scan.
    """
    writer = BinaryStreamWriter(
        path, batch_records=batch_records, witness_path=witness_path
    )
    with writer:
        writer.extend(events)
    # Read after close(): the final partial graph frame flushes there.
    return writer.events_written


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def _open_binary_view(path: str | Path):
    """(mmap, size) of a binary stream file after the magic check."""
    import mmap as mmap_module

    with open(path, "rb") as handle:
        try:
            mapped = mmap_module.mmap(
                handle.fileno(), 0, access=mmap_module.ACCESS_READ
            )
        except ValueError:
            raise StreamFormatError(f"{path}: empty binary stream file") from None
    try:
        if mapped[: len(MAGIC)] != MAGIC:
            raise StreamFormatError(
                f"{path}: missing binary stream magic ({len(mapped)} byte(s))"
            )
    except BaseException:
        mapped.close()
        raise
    return mapped


def read_frame_index(path: str | Path) -> list[tuple[int, int, int]] | None:
    """The trailing ``(offset, count, kind)`` frame index, or ``None``.

    ``None`` means the file carries no (valid) trailing index — e.g. it
    was cut off mid-stream or captured from a wire that never sends the
    footer; such files remain readable by frame-header jumping.
    """
    mapped = _open_binary_view(path)
    try:
        size = len(mapped)
        tail = _INDEX_OFFSET.size + len(END_MAGIC)
        if size < tail or mapped[size - len(END_MAGIC) :] != END_MAGIC:
            return None
        (index_offset,) = _INDEX_OFFSET.unpack_from(
            mapped, size - tail
        )
        if (
            index_offset + len(INDEX_MAGIC) + _INDEX_COUNT.size > size
            or mapped[index_offset : index_offset + len(INDEX_MAGIC)]
            != INDEX_MAGIC
        ):
            return None
        (count,) = _INDEX_COUNT.unpack_from(
            mapped, index_offset + len(INDEX_MAGIC)
        )
        entries_start = index_offset + len(INDEX_MAGIC) + _INDEX_COUNT.size
        if entries_start + count * _INDEX_ENTRY.size > size - tail:
            return None
        return [
            _INDEX_ENTRY.unpack_from(mapped, entries_start + i * _INDEX_ENTRY.size)
            for i in range(count)
        ]
    finally:
        mapped.close()


def _frames_end(mapped) -> int:
    """Offset where the frame region ends (the index, or EOF)."""
    size = len(mapped)
    tail = _INDEX_OFFSET.size + len(END_MAGIC)
    if size >= tail and mapped[size - len(END_MAGIC) :] == END_MAGIC:
        (index_offset,) = _INDEX_OFFSET.unpack_from(mapped, size - tail)
        if (
            index_offset <= size - tail
            and mapped[index_offset : index_offset + len(INDEX_MAGIC)]
            == INDEX_MAGIC
        ):
            return index_offset
    return size


# hot-path
def iter_binary_batches(path: str | Path) -> Iterator["RawBatch | Event"]:
    """Yield zero-copy graph-frame :class:`RawBatch` runs and parsed
    control events — the binary analogue of
    :func:`repro.core.codec.iter_raw_batches`.

    Graph frames come back as :class:`memoryview` slices of the file's
    mmap covering the *whole* frame (header included), so a transport
    can put them on the wire verbatim and a frame-aware receiver can
    count records from the headers alone.  Control frames are decoded
    into their :class:`Event` objects.  The iterator jumps frame header
    to frame header — no content scanning.
    """
    from repro.core.codec import RawBatch

    mapped = _open_binary_view(path)
    view = memoryview(mapped)
    try:
        end = _frames_end(mapped)
        position = len(MAGIC)
        while position < end:
            # A truncated trailing index (no valid footer) starts with
            # INDEX_MAGIC where a frame header would be: stop cleanly.
            if mapped[position : position + len(INDEX_MAGIC)] == INDEX_MAGIC:
                break
            try:
                kind, count, body_len = _FRAME_HEADER.unpack_from(
                    mapped, position
                )
            except struct.error:
                raise StreamFormatError(
                    "truncated binary frame header",
                    byte_offset=position,
                ) from None
            frame_end = position + FRAME_HEADER_SIZE + body_len
            if frame_end > end:
                raise StreamFormatError(
                    f"binary frame overruns the file "
                    f"({frame_end} > {end})",
                    byte_offset=position,
                )
            if kind == FRAME_GRAPH:
                yield RawBatch(view[position:frame_end], count, True)
            elif kind == FRAME_CONTROL:
                yield decode_event(view, position + FRAME_HEADER_SIZE)
            else:
                raise StreamFormatError(
                    f"unknown binary frame kind {kind}",
                    byte_offset=position,
                )
            position = frame_end
    finally:
        view.release()
        try:
            mapped.close()
        except BufferError:
            # A consumer still holds the last frame's view; the mapping
            # closes when that view is garbage-collected.
            pass


def iter_wire_frame_counts(file) -> Iterator[int]:
    """Yield each frame's record count from a binary wire stream.

    ``file`` is a readable binary file object positioned just *after*
    the stream magic (receivers consume the magic while autodetecting
    the format).  Frame bodies are read and discarded — receivers only
    count.  A stream that ends cleanly on a frame boundary terminates
    the iterator; one cut off mid-frame raises
    :class:`StreamFormatError`.
    """
    read = file.read
    header_size = FRAME_HEADER_SIZE
    unpack = _FRAME_HEADER.unpack
    while True:
        header = read(header_size)
        if not header:
            return
        while len(header) < header_size:
            more = read(header_size - len(header))
            if not more:
                raise StreamFormatError("truncated binary frame header on wire")
            header += more
        kind, count, body_len = unpack(header)
        if kind not in (FRAME_GRAPH, FRAME_CONTROL):
            raise StreamFormatError(f"unknown binary frame kind {kind}")
        remaining = body_len
        while remaining:
            chunk = read(min(remaining, 1 << 16))
            if not chunk:
                raise StreamFormatError("truncated binary frame body on wire")
            remaining -= len(chunk)
        yield count


def iter_parse_binary_chunks(
    path: str | Path,
    *,
    chunk_events: int = 1024,
    tracer: "Tracer | None" = None,
) -> Iterator[list[Event]]:
    """Yield chunks (lists) of decoded events from a binary stream file.

    The binary sibling of :func:`repro.core.codec.iter_parse_chunks`,
    used by the replayer's reader thread.  With a tracer, each decoded
    frame gets a sampled ``decoded`` span.
    """
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    pending: list[Event] = []
    decoded = 0
    for item in iter_binary_batches(path):
        if isinstance(item, Event):
            pending.append(item)
        elif tracer is None:
            pending.extend(decode_frame_events(item.data))
        else:
            decode_start = tracer.clock.now()
            events = decode_frame_events(item.data)
            if events and tracer.sample_batch(decoded, len(events)):
                tracer.record_span(
                    "decoded",
                    "reader",
                    decode_start,
                    tracer.clock.now() - decode_start,
                    event_id=decoded,
                    count=len(events),
                )
            decoded += len(events)
            pending.extend(events)
        while len(pending) >= chunk_events:
            yield pending[:chunk_events]
            del pending[:chunk_events]
    if pending:
        yield pending


def parse_binary_stream(path: str | Path) -> list[Event]:
    """Decode a whole binary stream file into a list of events."""
    events: list[Event] = []
    for chunk in iter_parse_binary_chunks(path, chunk_events=4096):
        events.extend(chunk)
    return events


# ---------------------------------------------------------------------------
# Conversion
# ---------------------------------------------------------------------------


def convert_stream(
    source: str | Path,
    destination: str | Path,
    to_format: str,
    *,
    batch_records: int = 256,
) -> int:
    """Convert a stream file between CSV and binary, streaming.

    ``to_format`` is ``"csv"`` or ``"binary"``; the source format is
    autodetected, so both directions (and format-preserving copies,
    which normalise framing) go through the same call.  Events stream
    through in chunks — neither side is ever fully materialised.
    Returns the number of events converted.
    """
    from repro.core import codec

    if to_format not in ("csv", "binary"):
        raise ValueError(
            f"unknown target format {to_format!r}; expected 'csv' or 'binary'"
        )
    chunks = codec.iter_parse_chunks(source, chunk_events=4096)
    written = 0
    if to_format == "binary":
        writer = BinaryStreamWriter(destination, batch_records=batch_records)
        with writer:
            for chunk in chunks:
                writer.extend(chunk)
        written = writer.events_written
    else:
        with open(destination, "w", encoding="utf-8", newline="\n") as handle:
            for chunk in chunks:
                handle.write(codec.format_events(chunk))
                written += len(chunk)
    return written


def stream_summary(path: str | Path) -> dict[str, int]:
    """Cheap event counts from the trailing frame index (O(frames)).

    Falls back to frame-header jumping when the index is missing.
    Returns ``{"graph_events": ..., "control_events": ..., "frames": ...}``.
    """
    index = read_frame_index(path)
    if index is None:
        index = []
        for item in iter_binary_batches(path):
            if isinstance(item, Event):
                index.append((0, 1, FRAME_CONTROL))
            else:
                index.append((0, item.count, FRAME_GRAPH))
    graph = sum(count for __, count, kind in index if kind == FRAME_GRAPH)
    control = sum(count for __, count, kind in index if kind == FRAME_CONTROL)
    return {
        "graph_events": graph,
        "control_events": control,
        "frames": len(index),
    }
