"""Single-producer/single-consumer shared-memory ring buffer.

The local-transport fast path: a :class:`ShmRing` carries the existing
GTB1/CSV batch payloads between a replay worker and a receiver in the
same machine through one ``multiprocessing.shared_memory`` segment —
no syscall, no kernel copy, no socket buffer.  One producer process
writes, one consumer process reads; the sharded replayer uses one ring
per worker (rings are cheap: a ring is a file in ``/dev/shm``).

Layout of the segment (offsets in bytes)::

    0    magic "GTRB0001", version u32, slot capacity u32,
         arena capacity u64                    (read-only after create)
    64   head_seq u64                          (producer publishes)
    128  tail_seq u64, freed_bytes u64         (consumer publishes)
    192  producer flags u8 (bit 0: closed)
    256  consumer flags u8 (bit 0: closed)
    320  descriptor table: slot capacity x 24-byte descriptors
    ...  payload arena (64-byte aligned), arena capacity bytes

Head and tail live in separate cache lines so the two sides never
write-share a line.  Publication order is write payload, write
descriptor, then store ``head_seq`` — CPython emits the stores in
statement order and x86/ARM64 shared mappings keep same-address order
across processes, while the per-descriptor sequence number
(``seq_lo == seq & 0xFFFFFFFF``) gives the consumer an acquire-side
check: a descriptor whose sequence, offset, stride, or kind disagrees
with the consumer's own cursor arithmetic is corrupt and raises a
typed :class:`~repro.errors.StreamFormatError` with the descriptor's
byte offset in the segment.

Slots are length-prefixed and fully determined: given the consumer's
byte cursor, a descriptor's expected ``offset`` (start of payload in
the arena, 0 after an end-of-arena wrap) and ``stride`` (bytes the
slot consumes, wrap padding included) are recomputable, so every field
is verifiable, not trusted.  Blocking sides use a bounded
spin-then-sleep backoff (:func:`_backoff`) — on a single-CPU machine
the peer needs the core, so the loop yields quickly and escalates to
short sleeps, bounded by ``stall_timeout``.

:func:`dump_slot_stream` / :func:`scan_slot_stream` serialize the same
slot framing to a flat byte stream (magic ``GTRS``) — the fuzzer's
entry point into this layer: corrupt or truncated slot headers in a
``.shm`` workload must be rejected with the same typed errors the live
ring raises.
"""

from __future__ import annotations

import os
import struct
import time
from typing import Iterator

from repro.errors import ConnectorError, StreamFormatError

try:  # numpy is optional: the vector drain path degrades to the loop
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy is absent
    _np = None

__all__ = [
    "SLOT_RAW",
    "SLOT_FRAME",
    "SLOT_EOF",
    "ShmRing",
    "RingProducer",
    "RingConsumer",
    "SLOT_STREAM_MAGIC",
    "dump_slot_stream",
    "scan_slot_stream",
    "iter_slot_stream",
]

MAGIC = b"GTRB0001"
VERSION = 1

#: Slot kinds carried in descriptors (and in the flat slot stream).
SLOT_RAW = 1  # newline-delimited CSV line run
SLOT_FRAME = 2  # one GTB1 binary frame
SLOT_EOF = 3  # producer's clean end-of-stream (empty payload)

_KNOWN_KINDS = frozenset((SLOT_RAW, SLOT_FRAME, SLOT_EOF))

_HEADER = struct.Struct("<8sII Q")  # magic, version, slots, arena bytes
_U64 = struct.Struct("<Q")
_U64_PAIR = struct.Struct("<QQ")

#: One slot descriptor: payload offset in the arena, payload length,
#: record count, stride (arena bytes consumed, wrap padding included),
#: low 32 bits of the slot sequence, slot kind.
_DESC = struct.Struct("<IIIIII")

_HEAD_OFF = 64
_TAIL_OFF = 128
_PRODUCER_FLAGS_OFF = 192
_CONSUMER_FLAGS_OFF = 256
_DESC_OFF = 320

_SEQ_MASK = 0xFFFFFFFF

#: Backoff schedule: re-check this many times back to back, then hand
#: the core to the peer with ``sched_yield`` for a while, then sleep,
#: doubling from the floor to the ceiling.  The yields matter most on a
#: single-CPU machine: the peer is runnable and one quantum away, and a
#: yield wakes it ~an order of magnitude sooner than the shortest sleep.
_SPIN_ROUNDS = 32
_YIELD_ROUNDS = 256
_SLEEP_FLOOR = 0.0001
_SLEEP_CEILING = 0.002

_sched_yield = getattr(os, "sched_yield", None) or (lambda: time.sleep(0))

#: Segment names created by this process.  Attaching to one of these
#: must NOT unregister it from the resource tracker — the create-side
#: registration is the crash-safety net that reclaims the segment if
#: the owning process dies before unlinking.
_OWNED_NAMES: set[str] = set()


def _desc_aligned(slots: int) -> int:
    """Arena offset: descriptor table end rounded up to a cache line."""
    end = _DESC_OFF + slots * _DESC.size
    return (end + 63) & ~63


_PAGE_SIZE = 4096


def _prefault(buf, start: int, write: bool) -> None:
    """Touch every page of ``buf`` from ``start`` so the hot path never
    page-faults.

    A fresh segment is all holes: without this, every first write to a
    page lands a minor fault in the middle of a push (~3 faults per
    256-record frame — measurably slower than a pipe whose 64KB kernel
    buffer stays hot forever).  Write-touching allocates the page for
    real; a read-touch would only map the shared zero page, leaving the
    allocation fault for the producer.  Callers must own every byte
    they write-touch: the read-modify-write below can lose a concurrent
    update by the other side.
    """
    if _np is not None:
        view = _np.frombuffer(buf, dtype=_np.uint8)[start::_PAGE_SIZE]
        if write:
            view |= 0
        else:
            int(view.sum())
        return
    if write:
        for off in range(start, len(buf), _PAGE_SIZE):
            buf[off] = buf[off]
    else:
        touched = 0
        for off in range(start, len(buf), _PAGE_SIZE):
            touched += buf[off]


class ShmRing:
    """The shared segment and both sides' cursor arithmetic.

    Create the segment with :meth:`create` (the owning side — in this
    codebase always the consumer/receiver, which outlives workers) or
    map an existing one with :meth:`attach`.  The owner must call both
    :meth:`close` and :meth:`unlink`; attachers only :meth:`close`.
    Both are idempotent, so lifecycle code can be unconditional.
    """

    def __init__(self, segment, slots: int, arena_bytes: int, owner: bool):
        self._segment = segment
        self._buf = segment.buf
        self.slots = slots
        self.arena_bytes = arena_bytes
        self.owner = owner
        self.arena_offset = _desc_aligned(slots)
        self._closed = False
        self._unlinked = False

    # -- construction --------------------------------------------------

    @classmethod
    def create(
        cls,
        slots: int = 512,
        arena_bytes: int = 1 << 20,
        name: str | None = None,
    ) -> "ShmRing":
        """Create a new ring segment (the owning side)."""
        from multiprocessing import shared_memory

        if slots <= 0 or slots & (slots - 1):
            raise ValueError(f"slots must be a positive power of two, got {slots}")
        if arena_bytes <= 0:
            raise ValueError(f"arena_bytes must be positive, got {arena_bytes}")
        size = _desc_aligned(slots) + arena_bytes
        segment = shared_memory.SharedMemory(
            create=True, size=size, name=name
        )
        _OWNED_NAMES.add(segment.name)
        try:
            _HEADER.pack_into(
                segment.buf, 0, MAGIC, VERSION, slots, arena_bytes
            )
            # SharedMemory zero-fills new segments, so cursors, flags
            # and descriptors all start at zero — no further init.
            # Write-touch every page while no peer exists yet: tmpfs
            # backs a fresh segment with holes, and allocating them now
            # keeps first-write faults out of the producer's hot path.
            _prefault(segment.buf, 0, write=True)
            return cls(segment, slots, arena_bytes, owner=True)
        except BaseException:
            segment.close()
            segment.unlink()
            _OWNED_NAMES.discard(segment.name)
            raise

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Map an existing ring segment by name (the non-owning side).

        The attaching process is *not* the segment's owner: Python's
        ``resource_tracker`` would otherwise unlink the segment when
        this process exits (the 3.11 attach-side registration quirk),
        so the attachment is unregistered here and the owner keeps the
        single unlink.
        """
        from multiprocessing import resource_tracker, shared_memory

        try:
            segment = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError) as exc:
            raise ConnectorError(
                f"cannot attach shm ring {name!r}: {exc}"
            ) from exc
        if segment.name not in _OWNED_NAMES:
            # Python registers even non-owning attachments with the
            # resource tracker, which would unlink the (still live)
            # segment when this process exits; only the owner holds
            # the unlink.  Same-process attachments keep the owner's
            # registration untouched.
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker variations
                pass
        try:
            magic, version, slots, arena_bytes = _HEADER.unpack_from(
                segment.buf, 0
            )
            if magic != MAGIC or version != VERSION:
                raise ConnectorError(
                    f"segment {name!r} is not a GTRB ring "
                    f"(magic {magic!r}, version {version})"
                )
            return cls(segment, slots, arena_bytes, owner=False)
        except BaseException:
            segment.close()
            raise

    # -- shared state --------------------------------------------------

    @property
    def name(self) -> str:
        return self._segment.name

    def head_seq(self) -> int:
        return _U64.unpack_from(self._buf, _HEAD_OFF)[0]

    def tail_state(self) -> tuple[int, int]:
        """(tail_seq, freed_bytes) as last published by the consumer."""
        return _U64_PAIR.unpack_from(self._buf, _TAIL_OFF)

    def producer_closed(self) -> bool:
        return bool(self._buf[_PRODUCER_FLAGS_OFF] & 1)

    def consumer_closed(self) -> bool:
        return bool(self._buf[_CONSUMER_FLAGS_OFF] & 1)

    def set_producer_closed(self) -> None:
        self._buf[_PRODUCER_FLAGS_OFF] = 1

    def set_consumer_closed(self) -> None:
        self._buf[_CONSUMER_FLAGS_OFF] = 1

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        A payload view still alive in a straggling drain thread makes
        the underlying mmap unclosable (``BufferError``); the mapping
        is then left for process teardown — :meth:`unlink` still
        removes the name, so nothing persists in ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        self._buf = None
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - straggling view
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner side, idempotent).

        Safe after the peer crashed or never attached; existing
        mappings survive a POSIX unlink, so a still-running peer is
        undisturbed and the memory is reclaimed when the last mapping
        closes.
        """
        if not self._unlinked:
            self._unlinked = True
            _OWNED_NAMES.discard(self._segment.name)
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    @property
    def closed(self) -> bool:
        return self._closed


def _backoff(deadline: float, sleep: float) -> float:
    """One blocking step; returns the escalated sleep interval."""
    if time.monotonic() >= deadline:
        raise ConnectorError(
            "shm ring stalled: peer made no progress before the timeout"
        )
    time.sleep(sleep)  # repro-check: disable=HOT001 -- bounded backoff
    return min(sleep * 2, _SLEEP_CEILING)


class RingProducer:
    """The writing side of a ring: length-prefixed slot pushes.

    ``push`` blocks (spin-then-sleep) while the ring lacks a free
    descriptor or enough arena space, and raises
    :class:`~repro.errors.ConnectorError` if the consumer closed or no
    progress happens within ``stall_timeout`` seconds.
    """

    def __init__(self, ring: ShmRing, stall_timeout: float = 30.0):
        self._ring = ring
        self._buf = ring._buf
        self._arena_off = ring.arena_offset
        self._arena_cap = ring.arena_bytes
        self._slots = ring.slots
        self._stall_timeout = stall_timeout
        # Populate this process's page table for the whole mapping up
        # front (an attaching producer starts with none of it mapped).
        # Page 0 is skipped: it holds the consumer-written cursors, and
        # a write-touch could lose a concurrent tail update.  Every
        # page past it is producer-owned (descriptors + arena).
        _prefault(self._buf, _PAGE_SIZE, write=True)
        self._head_seq = ring.head_seq()
        tail_seq, freed = ring.tail_state()
        self._produced_bytes = self._recover_produced_bytes(freed)
        self._cached_tail = tail_seq
        self._cached_freed = freed
        #: Times a push found the ring full and had to block — a
        #: diagnostic for sizing rings against their producers.
        self.wait_count = 0

    def _recover_produced_bytes(self, freed: int) -> int:
        """Rebuild the byte cursor from published state (fresh rings
        start at zero; reattaching mid-stream replays the strides of
        the still-unconsumed descriptors)."""
        produced = freed
        tail_seq, __ = self._ring.tail_state()
        for seq in range(tail_seq, self._head_seq):
            desc_off = _DESC_OFF + (seq % self._slots) * _DESC.size
            __, __, __, stride, __, __ = _DESC.unpack_from(
                self._buf, desc_off
            )
            produced += stride
        return produced

    def _wait_for_space(self, stride: int) -> None:
        self.wait_count += 1
        deadline = 0.0
        sleep = _SLEEP_FLOOR
        spins = 0
        while True:
            if (
                self._head_seq - self._cached_tail < self._slots
                and self._produced_bytes + stride - self._cached_freed
                <= self._arena_cap
            ):
                return
            self._cached_tail, self._cached_freed = self._ring.tail_state()
            if (
                self._head_seq - self._cached_tail < self._slots
                and self._produced_bytes + stride - self._cached_freed
                <= self._arena_cap
            ):
                return
            if self._ring.consumer_closed():
                raise ConnectorError("shm ring consumer is closed")
            spins += 1
            if spins < _SPIN_ROUNDS:
                continue
            if spins < _YIELD_ROUNDS:
                _sched_yield()
                continue
            if not deadline:
                deadline = time.monotonic() + self._stall_timeout
            sleep = _backoff(deadline, sleep)

    def push(self, payload: "bytes | memoryview", count: int, kind: int) -> None:
        """Copy one slot into the ring and publish it."""
        size = len(payload)
        if size > self._arena_cap // 2:
            # Above half the arena, end-of-arena wrap padding could
            # exceed capacity outright — an unsatisfiable wait.
            raise ConnectorError(
                f"slot of {size} bytes exceeds half the "
                f"{self._arena_cap}-byte ring arena; use a larger ring"
            )
        pos = self._produced_bytes % self._arena_cap
        contig = self._arena_cap - pos
        if contig >= size:
            offset, stride = pos, size
        else:
            # Payload would straddle the arena end: pad to the start so
            # every slot stays contiguous (zero-copy views need that).
            offset, stride = 0, size + contig
        self._wait_for_space(stride)
        base = self._arena_off + offset
        if size:
            self._buf[base : base + size] = payload
        _DESC.pack_into(
            self._buf,
            _DESC_OFF + (self._head_seq % self._slots) * _DESC.size,
            offset,
            size,
            count,
            stride,
            self._head_seq & _SEQ_MASK,
            kind,
        )
        self._head_seq += 1
        self._produced_bytes += stride
        _U64.pack_into(self._buf, _HEAD_OFF, self._head_seq)

    def push_many(self, items, kind: int) -> None:
        """Copy a run of ``(payload, count)`` slots and publish once.

        The hot path behind :class:`ShmTransport`'s buffered flush: one
        head publication and mostly-cached space checks amortize over
        the whole run, which cuts per-slot interpreter overhead ~3x
        against :meth:`push` — the difference between losing to and
        beating the pipe transport on a single-CPU machine.  Blocking
        first publishes the slots written so far, so a full ring drains
        while this side waits.
        """
        buf = self._buf
        arena_off = self._arena_off
        arena_cap = self._arena_cap
        half = arena_cap // 2
        slots = self._slots
        desc_size = _DESC.size
        pack_desc = _DESC.pack_into
        pack_u64 = _U64.pack_into
        head = self._head_seq
        produced = self._produced_bytes
        cached_tail = self._cached_tail
        cached_freed = self._cached_freed
        try:
            for payload, count in items:
                size = len(payload)
                if size > half:
                    raise ConnectorError(
                        f"slot of {size} bytes exceeds half the "
                        f"{arena_cap}-byte ring arena; use a larger ring"
                    )
                pos = produced % arena_cap
                contig = arena_cap - pos
                if contig >= size:
                    offset, stride = pos, size
                else:
                    offset, stride = 0, size + contig
                if (
                    head - cached_tail >= slots
                    or produced + stride - cached_freed > arena_cap
                ):
                    self._head_seq = head
                    self._produced_bytes = produced
                    pack_u64(buf, _HEAD_OFF, head)
                    self._wait_for_space(stride)
                    cached_tail = self._cached_tail
                    cached_freed = self._cached_freed
                base = arena_off + offset
                if size:
                    buf[base : base + size] = payload
                pack_desc(
                    buf,
                    _DESC_OFF + (head % slots) * desc_size,
                    offset,
                    size,
                    count,
                    stride,
                    head & _SEQ_MASK,
                    kind,
                )
                head += 1
                produced += stride
        finally:
            self._head_seq = head
            self._produced_bytes = produced
            self._cached_tail = cached_tail
            self._cached_freed = cached_freed
            pack_u64(buf, _HEAD_OFF, head)

    def push_eof(self, timeout: float | None = 2.0) -> bool:
        """Best-effort end-of-stream marker; False if it could not be
        delivered (consumer gone or ring wedged full)."""
        saved = self._stall_timeout
        if timeout is not None:
            self._stall_timeout = timeout
        try:
            self.push(b"", 0, SLOT_EOF)
            return True
        except ConnectorError:
            return False
        finally:
            self._stall_timeout = saved


class _Slot:
    """One consumed slot: (seq, kind, count, payload view)."""

    __slots__ = ("seq", "kind", "count", "payload", "stride")

    def __init__(self, seq, kind, count, payload, stride):
        self.seq = seq
        self.kind = kind
        self.count = count
        self.payload = payload
        self.stride = stride


class RingConsumer:
    """The reading side of a ring: validated slot pops.

    Descriptors are *checked*, not trusted: sequence, kind, offset and
    stride must all match the consumer's own cursor arithmetic, and a
    mismatch raises :class:`~repro.errors.StreamFormatError` carrying
    the descriptor's byte offset in the segment.  Payload views alias
    ring memory and stay valid until the slot is acknowledged with
    :meth:`advance` (which is what frees the space for the producer).
    """

    def __init__(self, ring: ShmRing):
        self._ring = ring
        self._buf = ring._buf
        self._arena_off = ring.arena_offset
        self._arena_cap = ring.arena_bytes
        self._slots = ring.slots
        if not ring.owner:
            # An attaching consumer maps the segment cold; touch it so
            # drains don't fault page by page.  (The owning side already
            # touched every page at create.)
            _prefault(self._buf, _PAGE_SIZE, write=False)
        self.tail_seq, self.consumed_bytes = ring.tail_state()
        self._pending_seq = self.tail_seq
        self._pending_bytes = self.consumed_bytes
        self.finished = False  # EOF slot seen

    def available(self) -> int:
        return self._ring.head_seq() - self._pending_seq

    def _validate(self, seq: int, cursor: int) -> tuple:
        desc_off = _DESC_OFF + (seq % self._slots) * _DESC.size
        offset, size, count, stride, seq_lo, kind = _DESC.unpack_from(
            self._buf, desc_off
        )
        pos = cursor % self._arena_cap
        contig = self._arena_cap - pos
        if contig >= size:
            expect_off, expect_stride = pos, size
        else:
            expect_off, expect_stride = 0, size + contig
        if seq_lo != seq & _SEQ_MASK:
            raise StreamFormatError(
                f"shm slot {seq}: sequence mismatch "
                f"(descriptor says {seq_lo})",
                byte_offset=desc_off,
            )
        if kind not in _KNOWN_KINDS:
            raise StreamFormatError(
                f"shm slot {seq}: unknown slot kind {kind}",
                byte_offset=desc_off,
            )
        if size > self._arena_cap or offset != expect_off or stride != expect_stride:
            raise StreamFormatError(
                f"shm slot {seq}: corrupt geometry (offset {offset}, "
                f"length {size}, stride {stride}; expected offset "
                f"{expect_off}, stride {expect_stride})",
                byte_offset=desc_off,
            )
        return offset, size, count, stride, kind

    def pop_available(self, max_slots: int = 0) -> list[_Slot]:
        """Consume every published slot (up to ``max_slots`` if given)
        without blocking; returns ``[]`` when the ring is idle.

        Views in the result alias the ring; call :meth:`advance` when
        done with them to release the space to the producer.
        """
        n = self.available()
        if max_slots and n > max_slots:
            n = max_slots
        out: list[_Slot] = []
        seq = self._pending_seq
        cursor = self._pending_bytes
        for __ in range(n):
            offset, size, count, stride, kind = self._validate(seq, cursor)
            base = self._arena_off + offset
            payload = self._buf[base : base + size] if size else b""
            out.append(_Slot(seq, kind, count, payload, stride))
            if kind == SLOT_EOF:
                self.finished = True
            seq += 1
            cursor += stride
        self._pending_seq = seq
        self._pending_bytes = cursor
        return out

    def drain_counts(self, max_slots: int = 4096) -> tuple[int, int, bool]:
        """Consume published slots, verifying payload-counted records.

        The counting receiver's hot path: every descriptor is validated
        (sequence, kind, geometry) *and* its record count re-derived
        from the payload — a FRAME slot's count must match its frame
        header, a RAW slot's count its newline count — so the receiver
        counts independently, exactly like the pipe/TCP receivers'
        :func:`_count_stream`.  With numpy available, whole runs of
        slots are checked in a handful of vector operations
        (descriptors are fixed-size, so a run is one reshape away);
        otherwise — or to localize an error the vector pass detected —
        a per-slot loop does the same checks and raises the precise
        :class:`~repro.errors.StreamFormatError`.

        Returns ``(slots_consumed, records, finished)`` and advances
        the pending cursor; call :meth:`advance` to publish the space
        back to the producer.
        """
        n = self.available()
        if max_slots and n > max_slots:
            n = max_slots
        if n == 0:
            return 0, 0, self.finished
        if _np is not None and n >= 8:
            vector = self._drain_counts_vector(n)
            if vector is not None:
                return vector
            # The vector pass saw an inconsistency: fall through to the
            # per-slot loop, which raises with the exact byte offset.
        return self._drain_counts_loop(n)

    def _drain_counts_loop(self, n: int) -> tuple[int, int, bool]:
        from repro.core import binfmt

        records = 0
        consumed = 0
        while consumed < n:
            seq = self._pending_seq
            offset, size, count, stride, kind = self._validate(
                seq, self._pending_bytes
            )
            desc_off = _DESC_OFF + (seq % self._slots) * _DESC.size
            base = self._arena_off + offset
            if kind == SLOT_FRAME:
                payload = self._buf[base : base + size]
                try:
                    fkind, fcount = binfmt.frame_info(payload)
                    __, __, fbody = binfmt._FRAME_HEADER.unpack_from(
                        payload, 0
                    )
                finally:
                    payload.release()
                if (
                    fkind not in (binfmt.FRAME_GRAPH, binfmt.FRAME_CONTROL)
                    or fbody + binfmt.FRAME_HEADER_SIZE != size
                    or fcount != count
                ):
                    raise StreamFormatError(
                        f"shm slot {seq}: frame header (kind {fkind}, "
                        f"{fcount} records, body {fbody}) disagrees with "
                        f"descriptor ({count} records, {size} bytes)",
                        byte_offset=desc_off,
                    )
                records += count
            elif kind == SLOT_RAW:
                data = bytes(self._buf[base : base + size])
                lines = data.count(b"\n")
                if data and data[-1] != 0x0A:
                    lines += 1
                if lines != count:
                    raise StreamFormatError(
                        f"shm slot {seq}: payload holds {lines} lines, "
                        f"descriptor claims {count}",
                        byte_offset=desc_off,
                    )
                records += count
            else:  # SLOT_EOF — _validate already vetted the kind
                if size or count:
                    raise StreamFormatError(
                        f"shm slot {seq}: EOF slot must be empty "
                        f"(length {size}, count {count})",
                        byte_offset=desc_off,
                    )
                self.finished = True
                self._pending_seq += 1
                self._pending_bytes += stride
                consumed += 1
                break
            self._pending_seq += 1
            self._pending_bytes += stride
            consumed += 1
        return consumed, records, self.finished

    def _drain_counts_vector(self, n: int) -> "tuple[int, int, bool] | None":
        """Vectorized drain: None means "loop path must re-check"."""
        np = _np
        from repro.core import binfmt

        start = self._pending_seq
        first = start % self._slots
        span = min(n, self._slots - first)
        d1 = np.frombuffer(
            self._buf,
            dtype=np.uint32,
            count=span * 6,
            offset=_DESC_OFF + first * _DESC.size,
        ).reshape(-1, 6)
        if n > span:
            d2 = np.frombuffer(
                self._buf, dtype=np.uint32, count=(n - span) * 6,
                offset=_DESC_OFF,
            ).reshape(-1, 6)
            desc = np.concatenate((d1, d2))
        else:
            desc = d1
        kinds = desc[:, 5]
        eof = np.nonzero(kinds == SLOT_EOF)[0]
        finished = False
        if eof.size:
            finished = True
            n = int(eof[0]) + 1
            desc = desc[:n]
            kinds = kinds[:n]
        offs = desc[:, 0].astype(np.int64)
        sizes = desc[:, 1].astype(np.int64)
        counts = desc[:, 2].astype(np.int64)
        strides = desc[:, 3].astype(np.int64)
        expect_seq = (
            np.arange(start, start + n, dtype=np.uint64) & _SEQ_MASK
        ).astype(np.uint32)
        if not (
            (desc[:, 4] == expect_seq).all()
            and ((kinds >= SLOT_RAW) & (kinds <= SLOT_EOF)).all()
        ):
            return None
        prefix = np.empty(n, dtype=np.int64)
        prefix[0] = self._pending_bytes
        if n > 1:
            prefix[1:] = self._pending_bytes + np.cumsum(strides[:-1])
        pos = prefix % self._arena_cap
        contig = self._arena_cap - pos
        wrap = contig < sizes
        if not (
            (offs == np.where(wrap, 0, pos)).all()
            and (strides == np.where(wrap, sizes + contig, sizes)).all()
            and (sizes <= self._arena_cap // 2).all()
        ):
            return None
        frames = kinds == SLOT_FRAME
        if frames.any():
            fo = self._arena_off + offs[frames]
            fsizes = sizes[frames]
            if not (fsizes >= binfmt.FRAME_HEADER_SIZE).all():
                return None
            arena = np.frombuffer(self._buf, dtype=np.uint8)
            fcount = (
                arena[fo + 1].astype(np.int64)
                | (arena[fo + 2].astype(np.int64) << 8)
                | (arena[fo + 3].astype(np.int64) << 16)
                | (arena[fo + 4].astype(np.int64) << 24)
            )
            fbody = (
                arena[fo + 5].astype(np.int64)
                | (arena[fo + 6].astype(np.int64) << 8)
                | (arena[fo + 7].astype(np.int64) << 16)
                | (arena[fo + 8].astype(np.int64) << 24)
            )
            if not (
                (arena[fo] <= binfmt.FRAME_CONTROL).all()
                and (fcount == counts[frames]).all()
                and (fbody + binfmt.FRAME_HEADER_SIZE == fsizes).all()
            ):
                return None
        raws = np.nonzero(kinds == SLOT_RAW)[0]
        for i in raws:
            base = self._arena_off + int(offs[i])
            data = bytes(self._buf[base : base + int(sizes[i])])
            lines = data.count(b"\n")
            if data and data[-1] != 0x0A:
                lines += 1
            if lines != int(counts[i]):
                return None
        if finished:
            eofs = kinds == SLOT_EOF
            if sizes[eofs].any() or counts[eofs].any():
                return None
        self._pending_seq += n
        self._pending_bytes += int(strides.sum())
        if finished:
            self.finished = True
        return n, int(counts.sum()), finished

    def advance(self) -> None:
        """Acknowledge every slot returned so far: release memoryviews
        held by the caller *before* calling this."""
        if self._pending_seq != self.tail_seq:
            self.tail_seq = self._pending_seq
            self.consumed_bytes = self._pending_bytes
            _U64_PAIR.pack_into(
                self._buf, _TAIL_OFF, self.tail_seq, self.consumed_bytes
            )

    def producer_done(self) -> bool:
        """True once no further slots can arrive."""
        return self.finished or (
            self._ring.producer_closed() and self.available() == 0
        )


# -- flat slot-stream serialization (the fuzzer's surface) -------------

SLOT_STREAM_MAGIC = b"GTRS"

#: Serialized slot header: sequence, payload length, record count, kind.
_WIRE_SLOT = struct.Struct("<IIIB3x")


def dump_slot_stream(slots: "list[tuple[int, int, bytes]]") -> bytes:
    """Serialize ``(kind, count, payload)`` slots to a flat byte stream.

    The same framing the live ring publishes, laid out end to end —
    what a consumer would see walking a ring's slots in order.  Used to
    build fuzz workloads and corpus entries for the slot layer.
    """
    parts = [SLOT_STREAM_MAGIC]
    for seq, (kind, count, payload) in enumerate(slots):
        parts.append(_WIRE_SLOT.pack(seq & _SEQ_MASK, len(payload), count, kind))
        parts.append(bytes(payload))
    return b"".join(parts)


def iter_slot_stream(
    data: "bytes | memoryview",
) -> Iterator[tuple[int, int, memoryview]]:
    """Walk a flat slot stream, validating every slot header.

    Yields ``(kind, count, payload)`` per slot.  Corrupt or truncated
    headers raise :class:`~repro.errors.StreamFormatError` with the
    offending byte offset — the identical checks
    :class:`RingConsumer` applies to live descriptors: magic, sequence
    continuity, known kind, length-prefix within bounds, nothing after
    an EOF slot.
    """
    view = memoryview(data)
    total = len(view)
    if total < len(SLOT_STREAM_MAGIC) or bytes(
        view[: len(SLOT_STREAM_MAGIC)]
    ) != SLOT_STREAM_MAGIC:
        raise StreamFormatError(
            "slot stream does not start with the GTRS magic", byte_offset=0
        )
    position = len(SLOT_STREAM_MAGIC)
    seq = 0
    finished = False
    while position < total:
        if finished:
            raise StreamFormatError(
                f"slot data after the EOF slot at slot {seq - 1}",
                byte_offset=position,
            )
        if position + _WIRE_SLOT.size > total:
            raise StreamFormatError(
                f"truncated slot header at slot {seq}: "
                f"{total - position} of {_WIRE_SLOT.size} bytes",
                byte_offset=position,
            )
        seq_lo, size, count, kind = _WIRE_SLOT.unpack_from(view, position)
        if seq_lo != seq & _SEQ_MASK:
            raise StreamFormatError(
                f"slot {seq}: sequence mismatch (header says {seq_lo})",
                byte_offset=position,
            )
        if kind not in _KNOWN_KINDS:
            raise StreamFormatError(
                f"slot {seq}: unknown slot kind {kind}",
                byte_offset=position,
            )
        body_start = position + _WIRE_SLOT.size
        if body_start + size > total:
            raise StreamFormatError(
                f"slot {seq}: payload of {size} bytes overruns the "
                f"stream ({total - body_start} left)",
                byte_offset=position,
            )
        if kind == SLOT_EOF:
            if size or count:
                raise StreamFormatError(
                    f"slot {seq}: EOF slot must be empty "
                    f"(length {size}, count {count})",
                    byte_offset=position,
                )
            finished = True
        yield kind, count, view[body_start : body_start + size]
        position = body_start + size
        seq += 1


def scan_slot_stream(data: "bytes | memoryview") -> tuple[int, int]:
    """Validate a flat slot stream end to end.

    Returns ``(slots, records)`` where ``records`` is the sum of the
    slots' *verified* record counts: FRAME payloads are record-walked
    with :func:`repro.core.binfmt.scan_frame` and must agree with the
    header's count; RAW payloads are newline-counted.  Any disagreement
    or malformed payload raises
    :class:`~repro.errors.StreamFormatError`.
    """
    from repro.core import binfmt

    slots = 0
    records = 0
    position = len(SLOT_STREAM_MAGIC)
    for kind, count, payload in iter_slot_stream(data):
        if kind == SLOT_FRAME:
            try:
                scanned = binfmt.scan_frame(payload)
            except StreamFormatError as exc:
                inner = exc.byte_offset or 0
                raise StreamFormatError(
                    f"slot {slots}: corrupt frame payload: {exc}",
                    byte_offset=position + _WIRE_SLOT.size + inner,
                ) from exc
            if scanned != count:
                raise StreamFormatError(
                    f"slot {slots}: frame holds {scanned} records, "
                    f"header claims {count}",
                    byte_offset=position,
                )
            records += scanned
        elif kind == SLOT_RAW:
            lines = bytes(payload).count(b"\n")
            if payload and not payload[-1] == 0x0A:
                lines += 1
            if lines != count:
                raise StreamFormatError(
                    f"slot {slots}: payload holds {lines} lines, "
                    f"header claims {count}",
                    byte_offset=position,
                )
            records += lines
        slots += 1
        position += _WIRE_SLOT.size + len(payload)
    return slots, records
