"""Live (wall-clock) graph stream replayer (paper section 5.1).

"The graph stream replayer ... is specifically designed for emitting a
stream of events with a uniform, yet tunable event rate.  Streaming is
decoupled from reading the stream graph file.  We use a multi-threaded
design to decouple both tasks and to ensure high throughput.  Emitting
stream events is handled by a dedicated thread that uses high precision
timestamps and busy-waiting for timeliness."

This implementation follows that design: a reader thread parses the
stream file into a bounded hand-off queue while the emitter thread
paces deliveries with ``time.perf_counter`` and a hybrid
sleep/busy-wait loop.  ``SPEED`` and ``PAUSE`` control events take
effect at their stream position.  The emitter records per-window
egress counts so the actual achieved rate can be analysed afterwards
(the Figure 3a measurement).

Both sides of the hand-off are batched: the reader enqueues *chunks*
(lists of events) so the queue costs one put/get per ``read_chunk``
events rather than per event, and the emitter paces with a token
bucket that emits up to ``batch_size`` events per wakeup through
``Transport.send_many``.  ``batch_size=1`` reproduces the unbatched
per-event pacing exactly; larger batches trade per-event timing
granularity for a substantially higher saturation rate (see
``benchmarks/bench_codec_throughput.py``).  Control events always take
effect at their exact stream position: a pending batch is flushed
before any ``MARKER``/``SPEED``/``PAUSE`` is handled.

Resilience: the replayer checkpoints at every marker boundary.  When a
transport failure escapes the delivery layer (see
:mod:`repro.core.resilience`) and ``max_resumes`` allows it, the replay
*resumes* from the last checkpoint instead of dying: the source is
re-read, events up to the checkpoint are fast-forwarded without
emission, and events after it are re-emitted (at-least-once
redelivery, counted in the report).  Resume requires a re-iterable
source (file path, :class:`~repro.core.stream.GraphStream`, list).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.core import codec
from repro.core.connectors import Transport
from repro.core.events import (
    Event,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
    SpeedEvent,
)
from repro.core.metrics import percentile
from repro.core.resilience import FaultCounters, collect_fault_counters
from repro.core.stream import GraphStream
from repro.core.tracing import TraceClock, Tracer, shared_clock
from repro.errors import ConnectorError, ReplayError

__all__ = ["LiveReplayer", "ReplayReport", "ReplayCheckpoint"]

_SENTINEL = object()

#: Sleep when more than this far from the deadline; busy-wait below it.
_SPIN_THRESHOLD = 0.0015


@dataclass(frozen=True, slots=True)
class ReplayCheckpoint:
    """A resume point taken at a marker boundary.

    ``position`` is the number of stream items fully handled before
    the checkpoint (the fast-forward distance on resume);
    ``speed_factor`` restores the rate state the markers were passed
    at; ``marker_count`` is how many marker timestamps were recorded,
    so a failed attempt's markers can be rolled back.
    """

    label: str
    position: int
    emitted: int
    speed_factor: float
    marker_count: int


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """Outcome of a live replay.

    ``events_emitted`` counts every delivered emission, including
    re-emissions after a checkpoint resume; ``redeliveries`` counts the
    lines that may have reached the system under test more than once
    (transport-level unacknowledged resends plus checkpoint-rewind
    re-emissions), so ``events_emitted - redeliveries`` is the
    exactly-once floor.  The fault counters are zero for replays
    through plain transports.
    """

    events_emitted: int
    duration: float
    window_rates: tuple[float, ...]
    marker_times: tuple[tuple[str, float], ...]
    retries: int = 0
    redeliveries: int = 0
    breaker_openings: int = 0
    chaos_faults: int = 0
    resumes: int = 0
    checkpoints: int = 0
    #: Run start on the replay's :class:`~repro.core.tracing.TraceClock`
    #: — add it to the (run-relative) ``marker_times`` to place markers
    #: on the same epoch as probe and receiver records.
    started_at: float = 0.0

    @property
    def mean_rate(self) -> float:
        return self.events_emitted / self.duration if self.duration > 0 else 0.0

    def rate_percentile(self, q: float) -> float:
        """Percentile ``q`` of the per-window achieved rates.

        Falls back to the mean rate when the run was shorter than one
        measurement window.
        """
        if not self.window_rates:
            return self.mean_rate
        return percentile(self.window_rates, q)

    @property
    def p5_rate(self) -> float:
        """5th percentile of the per-window achieved rates."""
        return self.rate_percentile(5)

    @property
    def median_rate(self) -> float:
        """Median of the per-window achieved rates."""
        return self.rate_percentile(50)

    @property
    def p95_rate(self) -> float:
        """95th percentile of the per-window achieved rates."""
        return self.rate_percentile(95)


class _ReaderThread:
    """One replay attempt's reader: thread + hand-off queue + stop flag.

    Each resume attempt gets a fresh instance, so a reader that is
    stuck in a slow source can never feed chunks into a later
    attempt's queue.
    """

    def __init__(
        self,
        source: GraphStream | str | Path | Iterable[Event],
        read_chunk: int,
        queue_capacity: int,
        trusted_parse: bool,
        tracer: Tracer | None = None,
    ):
        self._source = source
        self._read_chunk = read_chunk
        self._trusted_parse = trusted_parse
        self._tracer = tracer
        # The queue holds chunks, so express the event-denominated
        # capacity in chunk units (at least two so reader and emitter
        # can overlap).
        self.queue: queue.Queue[list[Event] | object] = queue.Queue(
            maxsize=max(2, queue_capacity // read_chunk)
        )
        self._stop = threading.Event()
        # guarded-by: the reader writes before exiting; readers of
        # `error` only look after join(), so the join edge orders it.
        self.error: Exception | None = None
        self._thread = threading.Thread(target=self._read_source, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def _put(self, item: list[Event] | object) -> bool:
        """Enqueue ``item``, giving up when the emitter has stopped."""
        while not self._stop.is_set():
            try:
                self.queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    # hot-path
    def _read_source(self) -> None:
        try:
            if isinstance(self._source, (str, Path)):
                for chunk in codec.iter_parse_chunks(
                    self._source,
                    trusted=self._trusted_parse,
                    chunk_events=self._read_chunk,
                    tracer=self._tracer,
                ):
                    if not self._put(chunk):
                        return
            else:
                buffer: list[Event] = []
                for event in self._source:
                    buffer.append(event)
                    if len(buffer) >= self._read_chunk:
                        if not self._put(buffer):
                            return
                        buffer = []
                if buffer:
                    self._put(buffer)
        except Exception as exc:  # surfaced on the emitter thread
            self.error = exc  # guarded-by: join() before error is read
        finally:
            self._put(_SENTINEL)

    def _drain_queue(self) -> None:
        try:
            while True:
                self.queue.get_nowait()
        except queue.Empty:
            pass

    def stop(self, join_timeout: float) -> bool:
        """Stop, drain and join; returns False when the thread leaked.

        A reader stuck inside a blocking source cannot be interrupted;
        after ``join_timeout`` it is abandoned (it is a daemon thread
        and its queue is attempt-local, so it cannot corrupt a resume).
        """
        self._stop.set()
        self._drain_queue()
        self._thread.join(timeout=join_timeout)
        if self._thread.is_alive():
            return False
        # One more drain: the reader may have enqueued its sentinel
        # between our drain and its exit.
        self._drain_queue()
        return True


class LiveReplayer:
    """Replays a stream over a transport at a tunable uniform rate.

    ``source`` is a :class:`GraphStream`, a path to a stream file, or
    any iterable of events.  File sources are parsed on a dedicated
    reader thread, decoupled from emission through a bounded queue of
    event chunks.

    ``batch_size`` is the token-bucket burst size: the emitter sends up
    to that many events per wakeup in a single ``send_many`` call.  The
    default of 1 matches the paper's per-event pacing; raising it (e.g.
    to 32-256) lifts the saturation rate at the cost of event timing
    being uniform only at batch granularity.  ``read_chunk`` is how
    many events the reader hands over per queue operation; it does not
    affect emission timing.

    ``max_resumes`` enables checkpoint resume: when a
    :class:`~repro.errors.ConnectorError` escapes the transport during
    emission, up to that many resumes restart delivery from the last
    marker checkpoint (requires a re-iterable source).
    ``transport_factory`` builds a replacement transport per resume
    (e.g. reconnecting TCP); without it the existing transport is
    reused.  ``resume_delay`` sleeps before each resume so a crashed
    system under test gets time to come back.

    ``clock`` is the unified :class:`~repro.core.tracing.TraceClock`
    the replay paces and stamps with (the process-wide shared clock by
    default, so replayer, receivers and live probes share one epoch).
    ``tracer`` enables per-event tracing: sampled ``encoded`` /
    ``emitted`` spans per batch, ``marker`` instants, and an exact
    ``emitted`` count for span accounting.  ``tracer=None`` (default)
    keeps the hot path untouched.
    """

    def __init__(
        self,
        source: GraphStream | str | Path | Iterable[Event],
        transport: Transport,
        rate: float,
        window_seconds: float = 1.0,
        queue_capacity: int = 65536,
        batch_size: int = 1,
        read_chunk: int = 1024,
        wire_format: str = "csv",
        trusted_parse: bool = True,
        max_resumes: int = 0,
        resume_delay: float = 0.0,
        transport_factory: Callable[[], Transport] | None = None,
        reader_join_timeout: float = 5.0,
        clock: TraceClock | None = None,
        tracer: Tracer | None = None,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if read_chunk <= 0:
            raise ValueError(f"read_chunk must be positive, got {read_chunk}")
        if wire_format not in ("csv", "binary"):
            raise ValueError(
                f"unknown wire_format {wire_format!r}; "
                "expected 'csv' or 'binary'"
            )
        if max_resumes < 0:
            raise ValueError(f"max_resumes must be >= 0, got {max_resumes}")
        if resume_delay < 0:
            raise ValueError("resume_delay must be >= 0")
        if reader_join_timeout <= 0:
            raise ValueError("reader_join_timeout must be positive")
        self._source = source
        self._transport = transport
        self._base_rate = rate
        self._window_seconds = window_seconds
        self._batch_size = batch_size
        self._read_chunk = read_chunk
        self._wire_format = wire_format
        self._queue_capacity = queue_capacity
        self._trusted_parse = trusted_parse
        self._max_resumes = max_resumes
        self._resume_delay = resume_delay
        self._transport_factory = transport_factory
        self._reader_join_timeout = reader_join_timeout
        if tracer is not None and clock is None:
            clock = tracer.clock
        self._clock = clock if clock is not None else shared_clock()
        self._tracer = tracer
        #: True when a reader thread could not be joined (stuck source).
        self.reader_leaked = False

    def _resumable(self) -> bool:
        """Resume needs a source that can be iterated again."""
        return isinstance(self._source, (str, Path, GraphStream, list, tuple))

    def _new_reader(self) -> _ReaderThread:
        return _ReaderThread(
            self._source,
            self._read_chunk,
            self._queue_capacity,
            self._trusted_parse,
            tracer=self._tracer,
        )

    # -- emission ----------------------------------------------------------

    # hot-path
    def run(self) -> ReplayReport:
        """Replay the whole stream; blocks until finished.

        Raises :class:`ReplayError` when the reader thread failed
        (malformed file) or :class:`ConnectorError` when the transport
        raised and the resume budget is spent.  The transport is closed
        and the reader thread stopped on every exit path.
        """
        batch_size = self._batch_size
        window_seconds = self._window_seconds
        format_lines = codec.format_lines
        binary_wire = self._wire_format == "binary"
        if binary_wire:
            from repro.core.binfmt import encode_graph_frame
        # All pacing and stamping goes through the unified trace clock,
        # so replayer series share an epoch with receivers and probes.
        perf_counter = self._clock.now
        tracer = self._tracer

        # Totals surviving across resume attempts.
        emitted = 0
        window_rates: list[float] = []
        marker_times: list[tuple[str, float]] = []
        resumes = 0
        resume_redeliveries = 0
        checkpoints = 0
        checkpoint = ReplayCheckpoint(
            label="", position=0, emitted=0, speed_factor=1.0, marker_count=0
        )

        # Sampling bookkeeping kept as plain ints so an unsampled traced
        # batch costs one integer comparison over the untraced path.
        # ``next_sample`` is the smallest multiple of the stride >= the
        # current position; exact counts are flushed to the tracer at
        # sampled batches and on every exit path.
        trace_step = tracer.sample_every if tracer is not None else 0
        next_sample = 0
        traced_counted = 0

        def flush_trace_counts() -> None:
            nonlocal traced_counted
            if tracer is not None and emitted > traced_counted:
                tracer.count("emitted", emitted - traced_counted)
                traced_counted = emitted

        start = perf_counter()
        reader_error: Exception | None = None

        while True:
            transport = self._transport
            reader = self._new_reader()
            reader.start()

            interval = 1.0 / (self._base_rate * checkpoint.speed_factor)
            position = 0
            emitted_since_checkpoint = 0
            pending: list[Event] = []
            next_emit = perf_counter()
            window_start = next_emit
            window_count = 0

            def flush() -> None:
                """Token-bucket emission: wait for the batch's deadline,
                then burst the whole pending batch in one ``send_many``."""
                nonlocal emitted, emitted_since_checkpoint, next_emit
                nonlocal window_start, window_count
                nonlocal next_sample, traced_counted
                if not pending:
                    return
                now = perf_counter()
                wait = next_emit - now
                if wait > 0:
                    if wait > _SPIN_THRESHOLD:
                        # pacing sleep, bounded by the next emit slot
                        time.sleep(wait - 0.001)  # repro-check: disable=HOT001
                    while perf_counter() < next_emit:
                        pass
                    now = next_emit
                elif -wait > window_seconds:
                    # Behind schedule: do not accumulate debt beyond one
                    # window, so a slow transport degrades rate rather
                    # than bursting unboundedly afterwards.
                    next_emit = now
                count = len(pending)
                if tracer is None or emitted + count <= next_sample:
                    # Pending only ever holds graph events (control
                    # events flush before being handled), so a binary
                    # wire batch is exactly one graph frame.
                    if binary_wire:
                        transport.send_frame(encode_graph_frame(pending), count)
                    else:
                        transport.send_many(format_lines(pending))
                else:
                    encode_start = perf_counter()
                    if binary_wire:
                        payload = encode_graph_frame(pending)
                    else:
                        payload = format_lines(pending)
                    encode_end = perf_counter()
                    tracer.record_span(
                        "encoded",
                        "replayer",
                        encode_start,
                        encode_end - encode_start,
                        event_id=emitted,
                        count=count,
                    )
                    if binary_wire:
                        transport.send_frame(payload, count)
                    else:
                        transport.send_many(payload)
                    send_end = perf_counter()
                    tracer.record_span(
                        "emitted",
                        "replayer",
                        encode_start,
                        send_end - encode_start,
                        event_id=emitted,
                        count=count,
                    )
                    end_pos = emitted + count
                    next_sample = -(-end_pos // trace_step) * trace_step
                    tracer.count("emitted", end_pos - traced_counted)
                    traced_counted = end_pos
                pending.clear()
                emitted += count
                emitted_since_checkpoint += count
                window_count += count
                next_emit += count * interval
                if now - window_start >= window_seconds:
                    window_rates.append(window_count / (now - window_start))
                    window_start = now
                    window_count = 0

            failure: BaseException | None = None
            try:
                while True:
                    # bounded by reader progress: the reader thread
                    # always enqueues the sentinel (in its finally)
                    chunk = reader.queue.get()  # repro-check: disable=HOT001
                    if chunk is _SENTINEL:
                        break
                    for item in chunk:
                        if position < checkpoint.position:
                            # Fast-forward to the checkpoint: already
                            # delivered before the resume, do not
                            # re-emit, re-pause, or re-record markers.
                            position += 1
                            continue
                        if isinstance(item, GraphEvent):
                            pending.append(item)
                            if len(pending) >= batch_size:
                                flush()
                        elif isinstance(item, MarkerEvent):
                            flush()
                            marker_at = perf_counter()
                            marker_times.append((item.label, marker_at - start))
                            if tracer is not None:
                                tracer.instant(
                                    "marker",
                                    "replayer",
                                    timestamp=marker_at,
                                    event_id=emitted,
                                    label=item.label,
                                )
                            checkpoints += 1
                            checkpoint = ReplayCheckpoint(
                                label=item.label,
                                position=position + 1,
                                emitted=emitted,
                                speed_factor=interval_factor(
                                    self._base_rate, interval
                                ),
                                marker_count=len(marker_times),
                            )
                            emitted_since_checkpoint = 0
                        elif isinstance(item, SpeedEvent):
                            flush()
                            interval = 1.0 / (self._base_rate * item.factor)
                        elif isinstance(item, PauseEvent):
                            flush()
                            # PAUSE events block by design
                            time.sleep(item.seconds)  # repro-check: disable=HOT001
                            next_emit = perf_counter()
                        else:
                            raise ReplayError(
                                f"cannot replay {type(item).__name__}"
                            )
                        position += 1
                flush()
            except ConnectorError as exc:
                failure = exc
                if not reader.stop(self._reader_join_timeout):
                    self.reader_leaked = True  # guarded-by: emitter-only
                if resumes >= self._max_resumes or not self._resumable():
                    flush_trace_counts()
                    self._close_transport(failure)
                    raise
                # Resume from the last checkpoint: events emitted after
                # it will be delivered again (at-least-once).
                resumes += 1
                resume_redeliveries += emitted_since_checkpoint
                del marker_times[checkpoint.marker_count :]
                if self._transport_factory is not None:
                    try:
                        transport.close()
                    except ConnectorError:
                        pass
                    self._transport = self._transport_factory()
                if self._resume_delay:
                    # configured reconnect backoff, off the steady path
                    time.sleep(self._resume_delay)  # repro-check: disable=HOT001
                continue
            except BaseException as exc:
                failure = exc
                if not reader.stop(self._reader_join_timeout):
                    self.reader_leaked = True  # guarded-by: emitter-only
                flush_trace_counts()
                self._close_transport(failure)
                raise
            else:
                flush_trace_counts()
                duration = perf_counter() - start
                if not reader.stop(self._reader_join_timeout):
                    self.reader_leaked = True  # guarded-by: emitter-only
                reader_error = reader.error
                self._close_transport(None)
                break

        if reader_error is not None:
            raise ReplayError(
                f"stream source failed: {reader_error}"
            ) from reader_error
        counters: FaultCounters = collect_fault_counters(self._transport)
        return ReplayReport(
            events_emitted=emitted,
            duration=duration,
            window_rates=tuple(window_rates),
            marker_times=tuple(marker_times),
            retries=counters.retries,
            redeliveries=counters.redeliveries + resume_redeliveries,
            breaker_openings=counters.breaker_openings,
            chaos_faults=counters.chaos_faults,
            resumes=resumes,
            checkpoints=checkpoints,
            started_at=start,
        )

    def _close_transport(self, failure: BaseException | None) -> None:
        """Close the transport; swallow close errors only when already
        propagating a more interesting failure."""
        try:
            self._transport.close()
        except Exception:
            if failure is None:
                raise


def interval_factor(base_rate: float, interval: float) -> float:
    """The SPEED factor currently in effect given the emit interval."""
    return 1.0 / (interval * base_rate)
