"""Live (wall-clock) graph stream replayer (paper section 5.1).

"The graph stream replayer ... is specifically designed for emitting a
stream of events with a uniform, yet tunable event rate.  Streaming is
decoupled from reading the stream graph file.  We use a multi-threaded
design to decouple both tasks and to ensure high throughput.  Emitting
stream events is handled by a dedicated thread that uses high precision
timestamps and busy-waiting for timeliness."

This implementation follows that design: a reader thread parses the
stream file into a bounded hand-off queue while the emitter thread
paces deliveries with ``time.perf_counter`` and a hybrid
sleep/busy-wait loop.  ``SPEED`` and ``PAUSE`` control events take
effect at their stream position.  The emitter records per-window
egress counts so the actual achieved rate can be analysed afterwards
(the Figure 3a measurement).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core.connectors import Transport
from repro.core.events import (
    Event,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
    SpeedEvent,
    format_event,
    parse_line,
)
from repro.core.stream import GraphStream
from repro.errors import ReplayError

__all__ = ["LiveReplayer", "ReplayReport"]

_SENTINEL = object()

#: Sleep when more than this far from the deadline; busy-wait below it.
_SPIN_THRESHOLD = 0.0015


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """Outcome of a live replay."""

    events_emitted: int
    duration: float
    window_rates: tuple[float, ...]
    marker_times: tuple[tuple[str, float], ...]

    @property
    def mean_rate(self) -> float:
        return self.events_emitted / self.duration if self.duration > 0 else 0.0


class LiveReplayer:
    """Replays a stream over a transport at a tunable uniform rate.

    ``source`` is a :class:`GraphStream`, a path to a stream file, or
    any iterable of events.  File sources are parsed on a dedicated
    reader thread, decoupled from emission through a bounded queue.
    """

    def __init__(
        self,
        source: GraphStream | str | Path | Iterable[Event],
        transport: Transport,
        rate: float,
        window_seconds: float = 1.0,
        queue_capacity: int = 65536,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        self._source = source
        self._transport = transport
        self._base_rate = rate
        self._window_seconds = window_seconds
        self._queue: queue.Queue = queue.Queue(maxsize=queue_capacity)
        self._reader_error: Exception | None = None

    # -- reader thread ---------------------------------------------------

    def _read_source(self) -> None:
        try:
            if isinstance(self._source, (str, Path)):
                with open(self._source, "r", encoding="utf-8") as handle:
                    for line_number, line in enumerate(handle, start=1):
                        stripped = line.strip()
                        if not stripped or stripped.startswith("#"):
                            continue
                        self._queue.put(parse_line(line, line_number))
            else:
                for event in self._source:
                    self._queue.put(event)
        except Exception as exc:  # surfaced on the emitter thread
            self._reader_error = exc
        finally:
            self._queue.put(_SENTINEL)

    # -- emission ----------------------------------------------------------

    def run(self) -> ReplayReport:
        """Replay the whole stream; blocks until finished.

        Raises :class:`ReplayError` when the reader thread failed
        (malformed file) or the transport raised.
        """
        reader = threading.Thread(target=self._read_source, daemon=True)
        reader.start()

        emitted = 0
        window_rates: list[float] = []
        marker_times: list[tuple[str, float]] = []
        speed_factor = 1.0
        interval = 1.0 / self._base_rate

        start = time.perf_counter()
        next_emit = start
        window_start = start
        window_count = 0

        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                break
            if isinstance(item, MarkerEvent):
                marker_times.append(
                    (item.label, time.perf_counter() - start)
                )
                continue
            if isinstance(item, SpeedEvent):
                speed_factor = item.factor
                interval = 1.0 / (self._base_rate * speed_factor)
                continue
            if isinstance(item, PauseEvent):
                time.sleep(item.seconds)
                next_emit = time.perf_counter()
                continue
            if not isinstance(item, GraphEvent):
                raise ReplayError(f"cannot replay {type(item).__name__}")

            now = time.perf_counter()
            wait = next_emit - now
            if wait > 0:
                if wait > _SPIN_THRESHOLD:
                    time.sleep(wait - 0.001)
                while time.perf_counter() < next_emit:
                    pass
                now = next_emit
            else:
                # Behind schedule: do not accumulate debt beyond one
                # window, so a slow transport degrades rate rather than
                # bursting unboundedly afterwards.
                if -wait > self._window_seconds:
                    next_emit = now

            self._transport.send(format_event(item))
            emitted += 1
            window_count += 1
            next_emit += interval

            if now - window_start >= self._window_seconds:
                window_rates.append(window_count / (now - window_start))
                window_start = now
                window_count = 0

        duration = time.perf_counter() - start
        self._transport.close()
        reader.join(timeout=5.0)
        if self._reader_error is not None:
            raise ReplayError(
                f"stream source failed: {self._reader_error}"
            ) from self._reader_error
        if window_count and duration > 0:
            # Final partial window.
            tail = duration - (window_start - start)
            if tail > 0:
                window_rates.append(window_count / tail)
        return ReplayReport(
            events_emitted=emitted,
            duration=duration,
            window_rates=tuple(window_rates),
            marker_times=tuple(marker_times),
        )
