"""Live (wall-clock) graph stream replayer (paper section 5.1).

"The graph stream replayer ... is specifically designed for emitting a
stream of events with a uniform, yet tunable event rate.  Streaming is
decoupled from reading the stream graph file.  We use a multi-threaded
design to decouple both tasks and to ensure high throughput.  Emitting
stream events is handled by a dedicated thread that uses high precision
timestamps and busy-waiting for timeliness."

This implementation follows that design: a reader thread parses the
stream file into a bounded hand-off queue while the emitter thread
paces deliveries with ``time.perf_counter`` and a hybrid
sleep/busy-wait loop.  ``SPEED`` and ``PAUSE`` control events take
effect at their stream position.  The emitter records per-window
egress counts so the actual achieved rate can be analysed afterwards
(the Figure 3a measurement).

Both sides of the hand-off are batched: the reader enqueues *chunks*
(lists of events) so the queue costs one put/get per ``read_chunk``
events rather than per event, and the emitter paces with a token
bucket that emits up to ``batch_size`` events per wakeup through
``Transport.send_many``.  ``batch_size=1`` reproduces the unbatched
per-event pacing exactly; larger batches trade per-event timing
granularity for a substantially higher saturation rate (see
``benchmarks/bench_codec_throughput.py``).  Control events always take
effect at their exact stream position: a pending batch is flushed
before any ``MARKER``/``SPEED``/``PAUSE`` is handled.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.core import codec
from repro.core.connectors import Transport
from repro.core.events import (
    Event,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
    SpeedEvent,
)
from repro.core.metrics import percentile
from repro.core.stream import GraphStream
from repro.errors import ReplayError

__all__ = ["LiveReplayer", "ReplayReport"]

_SENTINEL = object()

#: Sleep when more than this far from the deadline; busy-wait below it.
_SPIN_THRESHOLD = 0.0015


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """Outcome of a live replay."""

    events_emitted: int
    duration: float
    window_rates: tuple[float, ...]
    marker_times: tuple[tuple[str, float], ...]

    @property
    def mean_rate(self) -> float:
        return self.events_emitted / self.duration if self.duration > 0 else 0.0

    def rate_percentile(self, q: float) -> float:
        """Percentile ``q`` of the per-window achieved rates.

        Falls back to the mean rate when the run was shorter than one
        measurement window.
        """
        if not self.window_rates:
            return self.mean_rate
        return percentile(self.window_rates, q)

    @property
    def p5_rate(self) -> float:
        """5th percentile of the per-window achieved rates."""
        return self.rate_percentile(5)

    @property
    def median_rate(self) -> float:
        """Median of the per-window achieved rates."""
        return self.rate_percentile(50)

    @property
    def p95_rate(self) -> float:
        """95th percentile of the per-window achieved rates."""
        return self.rate_percentile(95)


class LiveReplayer:
    """Replays a stream over a transport at a tunable uniform rate.

    ``source`` is a :class:`GraphStream`, a path to a stream file, or
    any iterable of events.  File sources are parsed on a dedicated
    reader thread, decoupled from emission through a bounded queue of
    event chunks.

    ``batch_size`` is the token-bucket burst size: the emitter sends up
    to that many events per wakeup in a single ``send_many`` call.  The
    default of 1 matches the paper's per-event pacing; raising it (e.g.
    to 32-256) lifts the saturation rate at the cost of event timing
    being uniform only at batch granularity.  ``read_chunk`` is how
    many events the reader hands over per queue operation; it does not
    affect emission timing.
    """

    def __init__(
        self,
        source: GraphStream | str | Path | Iterable[Event],
        transport: Transport,
        rate: float,
        window_seconds: float = 1.0,
        queue_capacity: int = 65536,
        batch_size: int = 1,
        read_chunk: int = 1024,
        trusted_parse: bool = True,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if read_chunk <= 0:
            raise ValueError(f"read_chunk must be positive, got {read_chunk}")
        self._source = source
        self._transport = transport
        self._base_rate = rate
        self._window_seconds = window_seconds
        self._batch_size = batch_size
        self._read_chunk = read_chunk
        self._trusted_parse = trusted_parse
        # The queue holds chunks, so express the event-denominated
        # capacity in chunk units (at least two so reader and emitter
        # can overlap).
        self._queue: queue.Queue[list[Event] | object] = queue.Queue(
            maxsize=max(2, queue_capacity // read_chunk)
        )
        self._stop = threading.Event()
        # guarded-by: reader writes before exiting; run() reads only
        # after reader.join(), so the join edge orders the accesses.
        self._reader_error: Exception | None = None

    # -- reader thread ---------------------------------------------------

    def _put(self, item: list[Event] | object) -> bool:
        """Enqueue ``item``, giving up when the emitter has stopped."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _read_source(self) -> None:
        try:
            if isinstance(self._source, (str, Path)):
                for chunk in codec.iter_parse_chunks(
                    self._source,
                    trusted=self._trusted_parse,
                    chunk_events=self._read_chunk,
                ):
                    if not self._put(chunk):
                        return
            else:
                buffer: list[Event] = []
                for event in self._source:
                    buffer.append(event)
                    if len(buffer) >= self._read_chunk:
                        if not self._put(buffer):
                            return
                        buffer = []
                if buffer:
                    self._put(buffer)
        except Exception as exc:  # surfaced on the emitter thread
            self._reader_error = exc  # guarded-by: reader.join() in run()
        finally:
            self._put(_SENTINEL)

    def _drain_queue(self) -> None:
        try:
            while True:
                self._queue.get_nowait()
        except queue.Empty:
            pass

    # -- emission ----------------------------------------------------------

    def run(self) -> ReplayReport:
        """Replay the whole stream; blocks until finished.

        Raises :class:`ReplayError` when the reader thread failed
        (malformed file) or :class:`ConnectorError` when the transport
        raised.  The transport is closed and the reader thread stopped
        on every exit path.
        """
        reader = threading.Thread(target=self._read_source, daemon=True)
        reader.start()

        transport = self._transport
        batch_size = self._batch_size
        window_seconds = self._window_seconds
        format_lines = codec.format_lines
        perf_counter = time.perf_counter

        emitted = 0
        window_rates: list[float] = []
        marker_times: list[tuple[str, float]] = []
        interval = 1.0 / self._base_rate
        pending: list[Event] = []

        start = perf_counter()
        next_emit = start
        window_start = start
        window_count = 0

        def flush() -> None:
            """Token-bucket emission: wait for the batch's deadline,
            then burst the whole pending batch in one ``send_many``."""
            nonlocal emitted, next_emit, window_start, window_count
            if not pending:
                return
            now = perf_counter()
            wait = next_emit - now
            if wait > 0:
                if wait > _SPIN_THRESHOLD:
                    time.sleep(wait - 0.001)
                while perf_counter() < next_emit:
                    pass
                now = next_emit
            elif -wait > window_seconds:
                # Behind schedule: do not accumulate debt beyond one
                # window, so a slow transport degrades rate rather than
                # bursting unboundedly afterwards.
                next_emit = now
            transport.send_many(format_lines(pending))
            count = len(pending)
            pending.clear()
            emitted += count
            window_count += count
            next_emit += count * interval
            if now - window_start >= window_seconds:
                window_rates.append(window_count / (now - window_start))
                window_start = now
                window_count = 0

        failure: BaseException | None = None
        try:
            while True:
                chunk = self._queue.get()
                if chunk is _SENTINEL:
                    break
                for item in chunk:
                    if isinstance(item, GraphEvent):
                        pending.append(item)
                        if len(pending) >= batch_size:
                            flush()
                    elif isinstance(item, MarkerEvent):
                        flush()
                        marker_times.append((item.label, perf_counter() - start))
                    elif isinstance(item, SpeedEvent):
                        flush()
                        interval = 1.0 / (self._base_rate * item.factor)
                    elif isinstance(item, PauseEvent):
                        flush()
                        time.sleep(item.seconds)
                        next_emit = perf_counter()
                    else:
                        raise ReplayError(f"cannot replay {type(item).__name__}")
            flush()
            duration = perf_counter() - start
        except BaseException as exc:
            failure = exc
            raise
        finally:
            # Always stop the reader and close the transport — a
            # raising transport must not leak the reader thread or the
            # transport's file descriptors.
            self._stop.set()
            self._drain_queue()
            try:
                self._transport.close()
            except Exception:
                if failure is None:
                    raise
            reader.join(timeout=5.0)

        if self._reader_error is not None:
            raise ReplayError(
                f"stream source failed: {self._reader_error}"
            ) from self._reader_error
        if window_count and duration > 0:
            # Final partial window.
            tail = duration - (window_start - start)
            if tail > 0:
                window_rates.append(window_count / tail)
        return ReplayReport(
            events_emitted=emitted,
            duration=duration,
            window_rates=tuple(window_rates),
            marker_times=tuple(marker_times),
        )
