"""Process-parallel sharded replay: scale-out of the Fig 3a replayer.

A single :class:`~repro.core.replayer.LiveReplayer` is GIL-bound — one
core drives parsing, pacing and I/O, so the achieved-vs-target curve of
the replayer benchmark (paper Figure 3a) saturates at whatever one core
can push.  This module scales the load generator *out* instead of up,
the same move SProBench makes for HPC stream benchmarks: partition the
stream into N marker-aligned shards, replay each shard in its own
worker process at ``rate / N``, and merge the per-worker reports into
one aggregate view, so the system under test — not the harness —
becomes the bottleneck.

Partitioning (:func:`partition_stream`) splits only the graph events;
``MARKER`` / ``SPEED`` / ``PAUSE`` control events are *replicated* to
every shard.  Markers never travel over the transport (the replayer
handles them locally), so replication changes no delivered bytes, but
it keeps every worker's checkpointing, speed changes and pauses aligned
to the same stream positions — shard replays stay mutually
phase-consistent, and the union of shard emissions is exactly the
original stream's graph-event multiset.

Partitioning is *streamed at the byte level* for file sources: the
parent classifies each line (CSV) or record (binary) by its leading
byte/tag and scatters the raw bytes into per-shard files without ever
constructing, or re-encoding, an :class:`Event` — the parent does I/O,
not parsing.  In-memory sources still partition event-by-event via
:func:`partition_stream`.

Emission inside a worker runs in one of three modes:

* ``"events"`` — the existing :class:`LiveReplayer` (parse → pace →
  format → send), byte-for-byte the single-process behaviour;
* ``"decode"`` — decode-in-worker: each worker decodes its shard's
  batches into :class:`Event` objects locally (the per-event work the
  parent used to do for every shard) and emits the stored batch bytes
  verbatim — zero re-encode.  With binary shards the decode is a cheap
  struct walk; with CSV shards it is the trusted bulk parse.  Control
  events steer the replay as usual.  No checkpoint resume.
* ``"raw"`` — a zero-copy loop over
  :func:`repro.core.codec.iter_raw_batches`: graph-line runs are sent
  as :class:`memoryview` slices of the shard file's mmap via
  ``Transport.send_raw`` (binary frames via ``Transport.send_frame``),
  skipping the parse/format round-trip entirely.  Control events still
  steer the replay.  Raw mode does not support checkpoint resume.

Workers synchronise on a start barrier so their pacing windows share an
epoch, and return their :class:`ReplayReport` over a queue; the merged
report sums counts and per-window rates and keeps the per-shard
breakdown (:class:`ShardedReplayReport`).  All cross-process
configuration travels as picklable specs (:class:`WorkerConfig`,
:class:`~repro.core.connectors.TransportSpec`,
:class:`~repro.core.resilience.RetryPolicy`, ...), so workers can be
started with either the ``fork`` or ``spawn`` method.
"""

from __future__ import annotations

import multiprocessing
import queue
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Sequence

from repro.core import binfmt, codec, witness
from repro.core.connectors import Transport, TransportSpec
from repro.core.events import (
    EdgeId,
    Event,
    GraphEvent,
    MarkerEvent,
    PauseEvent,
    SpeedEvent,
)
from repro.core.replayer import LiveReplayer, ReplayReport
from repro.core.resilience import (
    ChaosConfig,
    RetryPolicy,
    build_transport_chain,
    collect_fault_counters,
)
from repro.core.stream import GraphStream
from repro.core.tracing import shared_clock
from repro.errors import ReplayError, StreamFormatError

__all__ = [
    "SHARD_STRATEGIES",
    "ShardPlan",
    "WorkerConfig",
    "ShardedReplayReport",
    "ShardedReplayer",
    "partition_stream",
    "write_shards",
    "merge_replay_reports",
]

#: Supported graph-event partitioning strategies.
SHARD_STRATEGIES = ("round-robin", "hash")

#: Sleep-vs-spin threshold of the raw emission loop (mirrors the
#: LiveReplayer's pacing).
_SPIN_THRESHOLD = 0.0015


# -- partitioning ------------------------------------------------------------


def _entity_shard(entity: int | EdgeId, workers: int) -> int:
    """Deterministic shard index for a graph entity.

    Vertex events shard by vertex id, edge events by source vertex id
    (co-locating a vertex's out-edges with it).  Plain modulo on the
    integer ids — never ``hash()`` on strings, whose per-process
    randomisation would break cross-run and cross-worker determinism.
    """
    if isinstance(entity, EdgeId):
        return entity.source % workers
    return entity % workers


def partition_stream(
    events: Iterable[Event], workers: int, shard_by: str = "round-robin"
) -> list[GraphStream]:
    """Split a stream into ``workers`` marker-aligned shards.

    Graph events are distributed round-robin (exact balance) or by
    entity hash (``shard_by="hash"``: a vertex's events always land on
    the same shard, at the cost of skew).  Control events (markers,
    speed, pause) are replicated to every shard — each shard receives
    each control event exactly once, at the same relative position —
    so shard replays stay phase-aligned and checkpoints agree.

    The union of the shards' graph events is exactly the input's
    graph-event multiset; with one worker the single shard is the
    input stream itself.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if shard_by not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard_by {shard_by!r}; expected one of {SHARD_STRATEGIES}"
        )
    shards: list[list[Event]] = [[] for __ in range(workers)]
    round_robin = 0
    for event in events:
        if isinstance(event, GraphEvent):
            if shard_by == "round-robin":
                index = round_robin
                round_robin += 1
                if round_robin == workers:
                    round_robin = 0
            else:
                index = _entity_shard(event.entity, workers)
            shards[index].append(event)
        else:
            for shard in shards:
                shard.append(event)
    return [GraphStream(shard) for shard in shards]


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Where a partitioned stream's shards live (picklable).

    ``graph_events`` is the per-shard graph-event count (the balance /
    skew view); ``control_events`` is the number of control events
    replicated into every shard.
    """

    workers: int
    shard_by: str
    paths: tuple[str, ...]
    graph_events: tuple[int, ...]
    control_events: int

    @property
    def total_graph_events(self) -> int:
        return sum(self.graph_events)


def _csv_entity_shard(mapped, start: int, end: int, workers: int) -> int:
    """Shard index of the CSV graph line at ``mapped[start:end]``.

    Decodes *only* the entity field (second column) — no event object,
    no payload work.  The dash search starts one byte into the field so
    a negative vertex id's sign is never mistaken for the edge
    separator, matching :func:`_entity_shard`.
    """
    first = mapped.find(b",", start, end)
    if first == -1:
        raise StreamFormatError("graph line has no entity field")
    second = mapped.find(b",", first + 1, end)
    entity = mapped[first + 1 : end if second == -1 else second]
    sep = entity.find(b"-", 1)
    try:
        if sep == -1:
            return int(entity) % workers
        return int(entity[:sep]) % workers
    except ValueError:
        raise StreamFormatError(
            f"cannot shard entity field {bytes(entity)!r}"
        ) from None


def _write_shards_csv_bytes(
    source: str | Path, workers: int, directory: Path, shard_by: str
) -> ShardPlan:
    """Streamed byte-level CSV partitioner: scatter raw lines to shard
    files without parsing.

    Graph lines (classified by first byte, the ``iter_raw_batches``
    trust contract) are copied verbatim to exactly one shard; control
    lines are parsed (they steer replays — worth validating once here)
    and their bytes replicated to every shard; blanks and comments are
    dropped, matching the parse-based path.
    """
    paths = [directory / f"shard-{index}.csv" for index in range(workers)]
    graph_counts = [0] * workers
    control_events = 0
    round_robin = 0
    hash_mode = shard_by == "hash"
    graph_first_bytes = codec._RAW_GRAPH_FIRST_BYTES
    # Acquire the shard files and the source view inside the same try
    # so a failure opening any of them (or mapping the source) cannot
    # leak the handles opened before it.
    files: list[BinaryIO] = []
    mapped = None
    try:
        for path in paths:
            files.append(open(path, "wb", buffering=1 << 16))
        mapped = codec._open_stream_mmap(source)
        if mapped is not None:
            size = len(mapped)
            position = 0
            line_number = 0
            while position < size:
                line_number += 1
                newline = mapped.find(b"\n", position)
                end = size if newline == -1 else newline
                next_position = size if newline == -1 else newline + 1
                if end > position and mapped[position] in graph_first_bytes:
                    if hash_mode:
                        index = _csv_entity_shard(mapped, position, end, workers)
                    else:
                        index = round_robin
                        round_robin += 1
                        if round_robin == workers:
                            round_robin = 0
                    files[index].write(mapped[position:end])
                    files[index].write(b"\n")
                    graph_counts[index] += 1
                else:
                    line = mapped[position:end].decode("utf-8")
                    stripped = line.strip()
                    if stripped and not stripped.startswith("#"):
                        codec.parse_line(line, line_number)
                        control_events += 1
                        data = mapped[position:end]
                        for handle in files:
                            handle.write(data)
                            handle.write(b"\n")
                position = next_position
    finally:
        if mapped is not None:
            mapped.close()
        for handle in files:
            handle.close()
    return ShardPlan(
        workers=workers,
        shard_by=shard_by,
        paths=tuple(str(path) for path in paths),
        graph_events=tuple(graph_counts),
        control_events=control_events,
    )


def _write_shards_binary_records(
    source: str | Path, workers: int, directory: Path, shard_by: str
) -> ShardPlan:
    """Streamed binary partitioner: scatter raw records to shard files.

    Graph frames are walked record header to record header; each
    record's bytes move verbatim into one shard's
    :class:`~repro.core.binfmt.BinaryStreamWriter` (which reframes and
    indexes them).  Control events are replicated to every shard.
    """
    paths = [directory / f"shard-{index}.gtb" for index in range(workers)]
    graph_counts = [0] * workers
    control_events = 0
    round_robin = 0
    hash_mode = shard_by == "hash"
    # Construct the writers inside the try: each one opens a file, so a
    # failure on the k-th must still close the k-1 already open.
    writers: list[binfmt.BinaryStreamWriter] = []
    try:
        for path in paths:
            writers.append(
                binfmt.BinaryStreamWriter(
                    path, witness_path=witness.witness_path(path)
                )
            )
        for item in binfmt.iter_binary_batches(source):
            if isinstance(item, Event):
                control_events += 1
                for writer in writers:
                    writer.add(item)
                continue
            frame = item.data
            for start, end in binfmt.iter_frame_record_spans(frame):
                if hash_mode:
                    index = binfmt.record_entity_id(frame, start) % workers
                else:
                    index = round_robin
                    round_robin += 1
                    if round_robin == workers:
                        round_robin = 0
                writers[index].add_record(bytes(frame[start:end]))
                graph_counts[index] += 1
    finally:
        for writer in writers:
            writer.close()
    return ShardPlan(
        workers=workers,
        shard_by=shard_by,
        paths=tuple(str(path) for path in paths),
        graph_events=tuple(graph_counts),
        control_events=control_events,
    )


def _write_shards_events(
    events: Iterable[Event],
    workers: int,
    directory: Path,
    shard_by: str,
    stream_format: str,
) -> ShardPlan:
    """Event-level partitioner for in-memory sources (and format
    conversions), via :func:`partition_stream`."""
    shards = partition_stream(events, workers, shard_by)
    extension = "gtb" if stream_format == "binary" else "csv"
    paths = []
    graph_counts = []
    control_events = 0
    for index, shard in enumerate(shards):
        path = directory / f"shard-{index}.{extension}"
        codec.write_stream_file(path, shard, format=stream_format)
        paths.append(str(path))
        statistics = shard.statistics()
        graph_counts.append(statistics.graph_events)
        if index == 0:
            control_events = (
                statistics.marker_events + statistics.control_events
            )
    return ShardPlan(
        workers=workers,
        shard_by=shard_by,
        paths=tuple(paths),
        graph_events=tuple(graph_counts),
        control_events=control_events,
    )


def write_shards(
    source: GraphStream | str | Path | Iterable[Event],
    workers: int,
    directory: str | Path,
    shard_by: str = "round-robin",
    trusted_parse: bool = True,
    stream_format: str = "auto",
) -> ShardPlan:
    """Partition ``source`` and write one stream file per shard.

    ``source`` may be a stream file path (CSV or binary, autodetected),
    a :class:`GraphStream`, or any iterable of events.  Shard files are
    written as ``shard-<i>.csv`` / ``shard-<i>.gtb`` under
    ``directory`` (created if missing).  ``stream_format`` selects the
    shard file format: ``"auto"`` keeps a file source's own format
    (CSV for in-memory sources), ``"csv"`` / ``"binary"`` force one.

    Trusted file sources in their own format take the streamed
    byte-level path: raw lines/records are scattered to shard files
    without the parent ever parsing or re-encoding an event.
    ``trusted_parse=False`` (or a cross-format request) falls back to
    the validating event-level partitioner.  Empty shards — a stream
    shorter than the worker count — produce empty (or frame-less)
    files, which replay to empty reports.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if shard_by not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard_by {shard_by!r}; expected one of {SHARD_STRATEGIES}"
        )
    if stream_format not in ("auto", "csv", "binary"):
        raise ValueError(
            f"unknown stream_format {stream_format!r}; "
            "expected 'auto', 'csv' or 'binary'"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(source, (str, Path)):
        source_format = codec.detect_stream_format(source)
        target_format = (
            source_format if stream_format == "auto" else stream_format
        )
        if target_format == source_format:
            if source_format == "binary":
                return _write_shards_binary_records(
                    source, workers, directory, shard_by
                )
            if trusted_parse:
                return _write_shards_csv_bytes(
                    source, workers, directory, shard_by
                )
        events: Iterable[Event] = codec.parse_stream_file(
            source, trusted=trusted_parse
        )
        return _write_shards_events(
            events, workers, directory, shard_by, target_format
        )
    target_format = "csv" if stream_format == "auto" else stream_format
    return _write_shards_events(
        source, workers, directory, shard_by, target_format
    )


# -- worker-side replay ------------------------------------------------------


@dataclass(frozen=True, slots=True)
class WorkerConfig:
    """Everything one worker process needs, in picklable form.

    The live transport is rebuilt inside the worker from
    ``transport_spec`` (plus the optional resilience configs, composed
    by :func:`~repro.core.resilience.build_transport_chain`), because
    sockets and file objects cannot cross a process boundary.
    """

    index: int
    path: str
    rate: float
    emission: str = "events"
    #: Wire format the worker emits: ``"auto"`` follows the shard
    #: file's own format (magic-byte detected), ``"csv"`` / ``"binary"``
    #: force one.  Raw/decode emission moves shard bytes verbatim, so
    #: there the wire format *is* the shard format.
    wire_format: str = "auto"
    window_seconds: float = 1.0
    batch_size: int = 64
    read_chunk: int = 1024
    batch_lines: int = 256
    transport_spec: TransportSpec | None = None
    chaos_config: ChaosConfig | None = None
    retry_policy: RetryPolicy | None = None
    breaker_threshold: int = 0
    breaker_recovery: float = 1.0
    max_resumes: int = 0
    resume_delay: float = 0.0

    def build_transport(self) -> Transport:
        if self.transport_spec is None:
            raise ReplayError(
                f"worker {self.index} has no transport spec to build"
            )
        return build_transport_chain(
            self.transport_spec.build(),
            chaos_config=self.chaos_config,
            retry_policy=self.retry_policy,
            breaker_threshold=self.breaker_threshold,
            breaker_recovery=self.breaker_recovery,
        )


def _replay_stream(
    config: WorkerConfig, transport: Transport, decode: bool
) -> ReplayReport:
    """Shard replay over stored batch bytes: the raw and decode modes.

    Paces with the same token-bucket discipline as the
    :class:`LiveReplayer` (sleep to ~1ms before the deadline, spin the
    rest, never accumulate more than one window of debt) but at
    :class:`~repro.core.codec.RawBatch` granularity, and handles
    control events locally — markers are recorded, ``SPEED`` rescales
    the interval, ``PAUSE`` sleeps.  No checkpoint resume: a transport
    failure propagates.

    Batches of a binary shard are whole frames and go out through
    ``send_frame``; CSV line runs go through ``send_raw`` — either way
    the stored bytes hit the wire verbatim.  With ``decode`` the worker
    decodes each batch locally before emitting it: the per-event work
    the parent-side partitioner no longer does, now paid inside the
    worker where it scales with ``--workers``.  For binary shards that
    is a :func:`~repro.core.binfmt.scan_frame` record walk — every
    record header and tag validated, counts proven against the frame
    header, payload materialisation deferred to consumers — while CSV
    shards need the full trusted bulk parse just to delimit and count
    their records.  That asymmetry is the point of the length-prefixed
    format.
    """
    binary = codec.detect_stream_format(config.path) == "binary"
    emit = transport.send_frame if binary else transport.send_raw
    if not decode:
        count_batch = None
    elif binary:
        # One bulk witness verification up front replaces the per-frame
        # record walk when the shard carries a sidecar (see
        # repro.core.witness); corruption raises here, before any
        # emission.  No sidecar, stale sidecar, or no numpy: fall back
        # to walking every frame.
        if witness.preverify_shard(config.path) is not None:
            count_batch = witness.count_verified_frame
        else:
            count_batch = binfmt.scan_frame
    else:
        parse_lines = codec.parse_lines

        def count_batch(data) -> int:
            lines = str(data, "utf-8").split("\n")
            if lines and not lines[-1]:
                lines.pop()
            return len(parse_lines(lines, trusted=True, skip_comments=True))

    clock = shared_clock()
    perf_counter = clock.now
    rate = config.rate
    window_seconds = config.window_seconds
    interval = 1.0 / rate
    emitted = 0
    checkpoints = 0
    window_rates: list[float] = []
    marker_times: list[tuple[str, float]] = []

    start = perf_counter()
    next_emit = start
    window_start = start
    window_count = 0
    failure: BaseException | None = None
    try:
        for item in codec.iter_raw_batches(
            config.path, batch_lines=config.batch_lines
        ):
            if isinstance(item, codec.RawBatch):
                if count_batch is None:
                    count = item.count
                else:
                    # Decode-in-worker: validate and count the batch's
                    # records locally before the verbatim byte emission
                    # (raw mode trusts the partitioner's counts).
                    count = count_batch(item.data)
                now = perf_counter()
                wait = next_emit - now
                if wait > 0:
                    if wait > _SPIN_THRESHOLD:
                        # pacing sleep, bounded by the next emit slot
                        time.sleep(wait - 0.001)  # repro-check: disable=HOT001
                    while perf_counter() < next_emit:
                        pass
                    now = next_emit
                elif -wait > window_seconds:
                    # Behind schedule: cap the debt at one window so a
                    # slow transport degrades rate instead of bursting.
                    next_emit = now
                emit(item.data, count)
                emitted += count
                window_count += count
                next_emit += count * interval
                if now - window_start >= window_seconds:
                    window_rates.append(window_count / (now - window_start))
                    window_start = now
                    window_count = 0
            elif isinstance(item, MarkerEvent):
                marker_times.append((item.label, perf_counter() - start))
                checkpoints += 1
            elif isinstance(item, SpeedEvent):
                interval = 1.0 / (rate * item.factor)
            elif isinstance(item, PauseEvent):
                # PAUSE events block by design
                time.sleep(item.seconds)  # repro-check: disable=HOT001
                next_emit = perf_counter()
            else:
                raise ReplayError(f"cannot replay {type(item).__name__}")
        duration = perf_counter() - start
    except BaseException as exc:
        failure = exc
        raise
    finally:
        try:
            transport.close()
        except Exception:
            if failure is None:
                raise
    counters = collect_fault_counters(transport)
    return ReplayReport(
        events_emitted=emitted,
        duration=duration,
        window_rates=tuple(window_rates),
        marker_times=tuple(marker_times),
        retries=counters.retries,
        redeliveries=counters.redeliveries,
        breaker_openings=counters.breaker_openings,
        chaos_faults=counters.chaos_faults,
        checkpoints=checkpoints,
        started_at=start,
    )


# hot-path
def replay_shard(config: WorkerConfig, transport: Transport) -> ReplayReport:
    """Run one shard's replay on an already-built transport."""
    if config.emission == "raw":
        return _replay_stream(config, transport, decode=False)
    if config.emission == "decode":
        return _replay_stream(config, transport, decode=True)
    wire_format = config.wire_format
    if wire_format == "auto":
        wire_format = codec.detect_stream_format(config.path)
    replayer = LiveReplayer(
        config.path,
        transport,
        rate=config.rate,
        window_seconds=config.window_seconds,
        batch_size=config.batch_size,
        read_chunk=config.read_chunk,
        wire_format=wire_format,
        max_resumes=config.max_resumes,
        resume_delay=config.resume_delay,
        transport_factory=(
            config.build_transport
            if config.max_resumes and config.transport_spec is not None
            else None
        ),
    )
    return replayer.run()


def _worker_main(config: WorkerConfig, barrier, results) -> None:
    """Worker process entry point: build, sync, replay, report.

    The transport is built *before* the barrier so no worker starts
    pacing until every worker is connected; a failure anywhere aborts
    the barrier, releasing the siblings and the parent immediately.
    """
    transport: Transport | None = None
    try:
        transport = config.build_transport()
        barrier.wait(timeout=_START_TIMEOUT)
        report = replay_shard(config, transport)
        results.put((config.index, report, None))
    except BaseException as exc:
        barrier.abort()
        if transport is not None:
            try:
                transport.close()
            except Exception:
                pass
        results.put((config.index, None, f"{type(exc).__name__}: {exc}"))


#: How long workers / the parent wait on the start barrier.
_START_TIMEOUT = 30.0


# -- report merging ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ShardedReplayReport(ReplayReport):
    """A merged :class:`ReplayReport` plus the per-shard breakdown.

    The aggregate fields follow :func:`merge_replay_reports`; the
    ``shards`` tuple keeps each worker's own report so per-shard
    variance (hash skew, straggler workers) stays inspectable.
    """

    shards: tuple[ReplayReport, ...] = ()

    @property
    def workers(self) -> int:
        return len(self.shards)

    @property
    def per_shard_rates(self) -> tuple[float, ...]:
        """Each shard's mean achieved rate (events/second)."""
        return tuple(shard.mean_rate for shard in self.shards)


def merge_replay_reports(reports: Sequence[ReplayReport]) -> ReplayReport:
    """Merge per-worker reports into one aggregate report.

    Counts (events, retries, redeliveries, breaker openings, chaos
    faults, resumes) are summed.  Per-window rates are summed
    *position-wise* — workers share a barrier-aligned start, so window
    ``i`` covers the same wall-clock slice in every report; a worker
    that finished early contributes zero to later windows.  Marker
    times take the per-marker maximum across shards (a marker has been
    passed once the *slowest* shard passes it); checkpoints count the
    shared marker boundaries, not their replicas, so the merged value
    is the per-shard maximum.  ``duration`` is the longest worker
    duration and ``started_at`` the earliest worker start.
    """
    if not reports:
        raise ValueError("cannot merge zero replay reports")
    window_count = max(len(report.window_rates) for report in reports)
    window_rates = [0.0] * window_count
    for report in reports:
        for index, rate in enumerate(report.window_rates):
            window_rates[index] += rate

    # Markers are replicated, so reports agree on labels/order; merge
    # defensively by position and keep the longest sequence.
    reference = max(reports, key=lambda report: len(report.marker_times))
    marker_times = []
    for index, (label, at) in enumerate(reference.marker_times):
        slowest = at
        for report in reports:
            if index < len(report.marker_times):
                other_label, other_at = report.marker_times[index]
                if other_label == label:
                    slowest = max(slowest, other_at)
        marker_times.append((label, slowest))

    return ReplayReport(
        events_emitted=sum(r.events_emitted for r in reports),
        duration=max(r.duration for r in reports),
        window_rates=tuple(window_rates),
        marker_times=tuple(marker_times),
        retries=sum(r.retries for r in reports),
        redeliveries=sum(r.redeliveries for r in reports),
        breaker_openings=sum(r.breaker_openings for r in reports),
        chaos_faults=sum(r.chaos_faults for r in reports),
        resumes=sum(r.resumes for r in reports),
        checkpoints=max(r.checkpoints for r in reports),
        started_at=min(r.started_at for r in reports),
    )


def _as_sharded(
    merged: ReplayReport, shards: Sequence[ReplayReport]
) -> ShardedReplayReport:
    return ShardedReplayReport(
        events_emitted=merged.events_emitted,
        duration=merged.duration,
        window_rates=merged.window_rates,
        marker_times=merged.marker_times,
        retries=merged.retries,
        redeliveries=merged.redeliveries,
        breaker_openings=merged.breaker_openings,
        chaos_faults=merged.chaos_faults,
        resumes=merged.resumes,
        checkpoints=merged.checkpoints,
        started_at=merged.started_at,
        shards=tuple(shards),
    )


# -- the sharded replayer ----------------------------------------------------


class ShardedReplayer:
    """Replays a stream through N synchronised worker processes.

    ``transport_spec`` is either one
    :class:`~repro.core.connectors.TransportSpec` every worker builds
    its own connection from (e.g. a :class:`TcpSpec` pointing at a
    receiver with ``max_connections >= workers``) or a sequence of one
    spec per worker (e.g. per-shard output files).  Each worker replays
    its shard at ``rate / workers``, so the aggregate target rate
    matches a single-process replay of the whole stream.

    ``workers=1`` is the degenerate single-process baseline: the shard
    is the whole stream and the replay runs in-process (no fork), so a
    1-worker run is the existing Fig 3a measurement.

    ``start_method`` selects the :mod:`multiprocessing` context
    (``None`` = platform default, ``"spawn"``/``"fork"``/... where
    supported); every cross-process value is picklable, so spawn works
    on platforms without fork.  Shard files are written under
    ``shard_dir`` when given (kept afterwards, inspectable) or a
    temporary directory (removed after the run).
    """

    def __init__(
        self,
        source: GraphStream | str | Path | Iterable[Event],
        transport_spec: TransportSpec | Sequence[TransportSpec],
        rate: float,
        workers: int = 1,
        shard_by: str = "round-robin",
        emission: str = "events",
        stream_format: str = "auto",
        window_seconds: float = 1.0,
        batch_size: int = 64,
        read_chunk: int = 1024,
        batch_lines: int = 256,
        trusted_parse: bool = True,
        chaos_config: ChaosConfig | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_threshold: int = 0,
        breaker_recovery: float = 1.0,
        max_resumes: int = 0,
        resume_delay: float = 0.0,
        shard_dir: str | Path | None = None,
        start_method: str | None = None,
        worker_timeout: float = 300.0,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if shard_by not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard_by {shard_by!r}; "
                f"expected one of {SHARD_STRATEGIES}"
            )
        if emission not in ("events", "decode", "raw"):
            raise ValueError(
                f"unknown emission mode {emission!r}; "
                "expected 'events', 'decode' or 'raw'"
            )
        if emission in ("decode", "raw") and max_resumes:
            raise ValueError(
                f"{emission} emission does not support checkpoint resume"
            )
        if stream_format not in ("auto", "csv", "binary"):
            raise ValueError(
                f"unknown stream_format {stream_format!r}; "
                "expected 'auto', 'csv' or 'binary'"
            )
        specs: tuple[TransportSpec, ...]
        if isinstance(transport_spec, TransportSpec):
            specs = (transport_spec,) * workers
        else:
            specs = tuple(transport_spec)
            if len(specs) != workers:
                raise ValueError(
                    f"need one transport spec per worker: got {len(specs)} "
                    f"spec(s) for {workers} worker(s)"
                )
        self._source = source
        self._specs = specs
        self._rate = rate
        self._workers = workers
        self._shard_by = shard_by
        self._emission = emission
        self._stream_format = stream_format
        self._window_seconds = window_seconds
        self._batch_size = batch_size
        self._read_chunk = read_chunk
        self._batch_lines = batch_lines
        self._trusted_parse = trusted_parse
        self._chaos_config = chaos_config
        self._retry_policy = retry_policy
        self._breaker_threshold = breaker_threshold
        self._breaker_recovery = breaker_recovery
        self._max_resumes = max_resumes
        self._resume_delay = resume_delay
        self._shard_dir = shard_dir
        self._start_method = start_method
        self._worker_timeout = worker_timeout
        #: The shard layout of the last run (set by :meth:`run`).
        self.plan: ShardPlan | None = None

    def _worker_config(self, index: int, path: str) -> WorkerConfig:
        return WorkerConfig(
            index=index,
            path=path,
            rate=self._rate / self._workers,
            emission=self._emission,
            wire_format=(
                "auto" if self._stream_format == "auto" else self._stream_format
            ),
            window_seconds=self._window_seconds,
            batch_size=self._batch_size,
            read_chunk=self._read_chunk,
            batch_lines=self._batch_lines,
            transport_spec=self._specs[index],
            chaos_config=self._chaos_config,
            retry_policy=self._retry_policy,
            breaker_threshold=self._breaker_threshold,
            breaker_recovery=self._breaker_recovery,
            max_resumes=self._max_resumes,
            resume_delay=self._resume_delay,
        )

    def run(self) -> ShardedReplayReport:
        """Partition, replay all shards, and merge the reports.

        Blocks until every worker finished.  Raises
        :class:`~repro.errors.ReplayError` when any worker failed
        (collecting each failed worker's error) or when workers do not
        report back within ``worker_timeout``.
        """
        if self._workers == 1:
            return self._run_single()
        if self._shard_dir is not None:
            directory = Path(self._shard_dir)
            directory.mkdir(parents=True, exist_ok=True)
            cleanup = False
        else:
            directory = Path(tempfile.mkdtemp(prefix="graphtides-shards-"))
            cleanup = True
        try:
            self.plan = write_shards(
                self._source,
                self._workers,
                directory,
                shard_by=self._shard_by,
                trusted_parse=self._trusted_parse,
                stream_format=self._stream_format,
            )
            shards = self._run_workers(self.plan)
        finally:
            if cleanup:
                shutil.rmtree(directory, ignore_errors=True)
        return _as_sharded(merge_replay_reports(shards), shards)

    def _run_single(self) -> ShardedReplayReport:
        """The 1-worker degenerate case: in-process, no partitioning.

        A file source in the requested format is replayed in place; a
        format conversion or in-memory source is materialised once.
        """
        cleanup_dir = None
        if isinstance(self._source, (str, Path)) and (
            self._stream_format == "auto"
            or codec.detect_stream_format(self._source) == self._stream_format
        ):
            path = str(self._source)
        else:
            # The worker-side replay paths read files; materialise
            # in-memory (or format-converted) sources once.
            target_format = (
                "csv" if self._stream_format == "auto" else self._stream_format
            )
            extension = "gtb" if target_format == "binary" else "csv"
            cleanup_dir = Path(tempfile.mkdtemp(prefix="graphtides-shards-"))
            path = str(cleanup_dir / f"shard-0.{extension}")
            if isinstance(self._source, (str, Path)):
                binfmt.convert_stream(self._source, path, target_format)
            else:
                codec.write_stream_file(path, self._source, format=target_format)
        try:
            config = self._worker_config(0, path)
            report = replay_shard(config, config.build_transport())
        finally:
            if cleanup_dir is not None:
                shutil.rmtree(cleanup_dir, ignore_errors=True)
        return _as_sharded(report, (report,))

    def _run_workers(self, plan: ShardPlan) -> list[ReplayReport]:
        context = multiprocessing.get_context(self._start_method)
        barrier = context.Barrier(self._workers + 1)
        results = context.Queue()
        processes = []
        for index, path in enumerate(plan.paths):
            process = context.Process(
                target=_worker_main,
                args=(self._worker_config(index, path), barrier, results),
                name=f"graphtides-shard-{index}",
                daemon=True,
            )
            process.start()
            processes.append(process)
        try:
            try:
                # The parent is the (N+1)-th barrier party: workers all
                # have their transports connected before any emits.
                barrier.wait(timeout=_START_TIMEOUT)
            except threading.BrokenBarrierError:
                pass  # a worker failed during setup; its error is queued
            reports: dict[int, ReplayReport] = {}
            errors: list[str] = []
            reported: set[int] = set()
            received = 0
            deadline = time.monotonic() + self._worker_timeout
            dead_since: float | None = None
            while received < self._workers:
                try:
                    index, report, error = results.get(timeout=0.5)
                except queue.Empty:
                    now = time.monotonic()
                    if now > deadline:
                        # Per-worker watchdog verdicts: name every worker
                        # that never reported, distinguishing wedged
                        # (still alive, terminated by the finally block)
                        # from silently dead ones.
                        entries = []
                        for idx, process in enumerate(processes):
                            if idx in reported:
                                continue
                            if process.is_alive():
                                entries.append(
                                    f"worker {idx}: no report within "
                                    f"{self._worker_timeout:g}s "
                                    f"(still alive; terminated)"
                                )
                            else:
                                entries.append(
                                    f"worker {idx}: exited without "
                                    f"reporting (exit code "
                                    f"{process.exitcode})"
                                )
                        raise ReplayError(
                            f"sharded replay timed out after "
                            f"{self._worker_timeout:g}s: "
                            + "; ".join(entries)
                        ) from None
                    if any(process.is_alive() for process in processes):
                        dead_since = None
                    elif dead_since is None:
                        dead_since = now
                    elif now - dead_since > 2.0:
                        # All workers exited and a grace period passed
                        # with nothing left in the queue: they died
                        # without reporting (e.g. killed, unpicklable
                        # environment under spawn).
                        codes = [process.exitcode for process in processes]
                        raise ReplayError(
                            f"sharded replay failed: "
                            f"{self._workers - received} worker(s) exited "
                            f"without reporting (exit codes {codes})"
                        ) from None
                    continue
                received += 1
                reported.add(index)
                if error is not None:
                    errors.append(f"worker {index}: {error}")
                else:
                    reports[index] = report
            for process in processes:
                process.join(timeout=10.0)
            if errors:
                raise ReplayError(
                    "sharded replay failed: " + "; ".join(sorted(errors))
                )
            return [reports[index] for index in range(self._workers)]
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5.0)
            results.close()
