"""Metric descriptors, time series, and aggregates (paper section 4.3).

Metrics follow Jain's classification: every metric declares the
direction of its optimum — higher is better (HB), lower is better (LB)
or nominal is best (NB).  For online systems the behaviour *over time*
matters, so the primary representation is the timestamped
:class:`TimeSeries`; aggregated values (mean, percentiles, confidence
intervals) are derived when directly comparing systems.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import AnalysisError

__all__ = [
    "Optimum",
    "MetricSpec",
    "Sample",
    "TimeSeries",
    "Aggregate",
    "percentile",
    "confidence_interval",
    "STANDARD_METRICS",
]


class Optimum(enum.Enum):
    """Direction of a metric's optimum (Jain): HB, LB, or NB."""

    HIGHER_IS_BETTER = "HB"
    LOWER_IS_BETTER = "LB"
    NOMINAL_IS_BEST = "NB"


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """Declares a metric: name, unit, and optimum direction."""

    name: str
    unit: str
    optimum: Optimum
    description: str = ""


#: Metric specs named in section 4.3.
STANDARD_METRICS: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        MetricSpec("throughput", "events/s", Optimum.HIGHER_IS_BETTER,
                   "average event throughput"),
        MetricSpec("ingress_rate", "events/s", Optimum.HIGHER_IS_BETTER,
                   "actual replayer egress / platform ingress rate"),
        MetricSpec("result_latency", "s", Optimum.LOWER_IS_BETTER,
                   "time until an ingested event is reflected in a result"),
        MetricSpec("relative_error", "ratio", Optimum.LOWER_IS_BETTER,
                   "median relative error of approximation results"),
        MetricSpec("cpu_load", "percent", Optimum.LOWER_IS_BETTER,
                   "per-process CPU load"),
        MetricSpec("memory_usage", "bytes", Optimum.LOWER_IS_BETTER,
                   "per-process memory usage"),
        MetricSpec("network_io", "bytes/s", Optimum.LOWER_IS_BETTER,
                   "per-process network I/O"),
        MetricSpec("disk_io", "bytes/s", Optimum.LOWER_IS_BETTER,
                   "per-process disk I/O"),
        MetricSpec("internal_throughput", "ops/s", Optimum.HIGHER_IS_BETTER,
                   "platform-internal operation throughput (level 1+)"),
        MetricSpec("queue_length", "messages", Optimum.LOWER_IS_BETTER,
                   "platform-internal queue length (level 2)"),
    )
}


@dataclass(frozen=True, slots=True)
class Sample:
    """One timestamped measurement."""

    timestamp: float
    value: float


class TimeSeries:
    """An append-only sequence of timestamped samples.

    Timestamps must be non-decreasing (loggers sample monotonically;
    the collector sorts merged logs).  Provides the statistical
    reductions needed by the analyses: mean, percentiles, windowed
    rates, and alignment onto a regular grid.
    """

    def __init__(self, name: str, samples: Iterable[Sample] = ()):
        self.name = name
        self._samples: list[Sample] = []
        for sample in samples:
            self.append(sample.timestamp, sample.value)

    def append(self, timestamp: float, value: float) -> None:
        if self._samples and timestamp < self._samples[-1].timestamp:
            raise ValueError(
                f"timestamps must be non-decreasing: {timestamp} after "
                f"{self._samples[-1].timestamp}"
            )
        self._samples.append(Sample(timestamp, value))

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> Sample:
        return self._samples[index]

    @property
    def timestamps(self) -> list[float]:
        return [s.timestamp for s in self._samples]

    @property
    def values(self) -> list[float]:
        return [s.value for s in self._samples]

    def mean(self) -> float:
        if not self._samples:
            raise AnalysisError(f"time series {self.name!r} is empty")
        return sum(s.value for s in self._samples) / len(self._samples)

    def percentile(self, q: float) -> float:
        if not self._samples:
            raise AnalysisError(f"time series {self.name!r} is empty")
        return percentile(self.values, q)

    def minimum(self) -> float:
        if not self._samples:
            raise AnalysisError(f"time series {self.name!r} is empty")
        return min(self.values)

    def maximum(self) -> float:
        if not self._samples:
            raise AnalysisError(f"time series {self.name!r} is empty")
        return max(self.values)

    def between(self, start: float, end: float) -> "TimeSeries":
        """Sub-series with ``start <= timestamp < end``."""
        return TimeSeries(
            self.name,
            (s for s in self._samples if start <= s.timestamp < end),
        )

    def resample(self, step: float) -> "TimeSeries":
        """Align onto a regular grid by last-observation-carried-forward.

        The grid starts at the first sample's timestamp.  Useful before
        cross-correlating series sampled at different instants.
        """
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if not self._samples:
            return TimeSeries(self.name)
        result = TimeSeries(self.name)
        start = self._samples[0].timestamp
        end = self._samples[-1].timestamp
        index = 0
        t = start
        last = self._samples[0].value
        while t <= end + 1e-12:
            while (
                index < len(self._samples)
                and self._samples[index].timestamp <= t + 1e-12
            ):
                last = self._samples[index].value
                index += 1
            result.append(t, last)
            t += step
        return result

    def rate(self, on_reset: str = "restart") -> "TimeSeries":
        """Differences per second between consecutive samples.

        Interprets values as a monotonic counter and returns the
        per-interval rate stamped at the interval end.  Intervals of
        zero duration are skipped.

        A monotonic counter can still go *backwards* when its process
        restarts (e.g. a platform crash/recovery restores a worker
        whose native counter starts back at zero); naively differencing
        across the reset produces a huge negative spike.  ``on_reset``
        selects how such intervals (``curr < prev``) are handled:

        * ``"restart"`` (default) — treat the current value as counted
          since the restart: the interval contributes ``curr / dt``;
        * ``"skip"`` — drop the interval entirely;
        * ``"raw"`` — keep the negative difference (the legacy
          behaviour, useful to *detect* resets).
        """
        if on_reset not in ("restart", "skip", "raw"):
            raise ValueError(
                f"on_reset must be 'restart', 'skip' or 'raw', got {on_reset!r}"
            )
        result = TimeSeries(f"{self.name}_rate")
        for prev, curr in zip(self._samples, self._samples[1:]):
            dt = curr.timestamp - prev.timestamp
            if dt <= 0:
                continue
            delta = curr.value - prev.value
            if delta < 0 and on_reset != "raw":
                if on_reset == "skip":
                    continue
                delta = curr.value
            result.append(curr.timestamp, delta / dt)
        return result

    def reset_indices(self) -> list[int]:
        """Sample indices where a counter reset occurred (value dropped).

        Companion of :meth:`rate`: lets analyses flag restart points
        (each index is the first sample *after* the drop).
        """
        return [
            index + 1
            for index, (prev, curr) in enumerate(
                zip(self._samples, self._samples[1:])
            )
            if curr.value < prev.value
        ]

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, {len(self._samples)} samples)"


def _reject_nan(values: Sequence[float], what: str) -> None:
    """Raise :class:`AnalysisError` when any value is NaN.

    ``sorted()`` with NaN present yields an undefined order (NaN
    compares false against everything), so percentiles — and every
    statistic derived from them — would silently return garbage.
    Callers that want to tolerate NaN must filter explicitly
    (``math.isnan``) before aggregating.
    """
    for value in values:
        if math.isnan(value):
            raise AnalysisError(
                f"cannot compute {what} of values containing NaN; "
                "filter NaN out explicitly first"
            )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of ``values``.

    Raises :class:`AnalysisError` for empty input or input containing
    NaN (whose sort order is undefined).
    """
    if not values:
        raise AnalysisError("cannot take a percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    _reject_nan(values, "a percentile")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True, slots=True)
class Aggregate:
    """Summary statistics of a collection of measurements.

    ``ci_low``/``ci_high`` bound the mean at the configured confidence
    (95% by default, per section 4.5's CI95 recommendation); they are
    ``nan`` when fewer than two values were aggregated.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    ci_low: float
    ci_high: float

    @classmethod
    def of(cls, values: Sequence[float], confidence: float = 0.95) -> "Aggregate":
        if not values:
            raise AnalysisError("cannot aggregate no values")
        _reject_nan(values, "an aggregate")
        n = len(values)
        mean = sum(values) / n
        if n > 1:
            variance = sum((v - mean) ** 2 for v in values) / (n - 1)
            std = math.sqrt(variance)
            low, high = confidence_interval(values, confidence)
        else:
            std = 0.0
            low = high = math.nan
        return cls(
            count=n,
            mean=mean,
            std=std,
            minimum=min(values),
            maximum=max(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            ci_low=low,
            ci_high=high,
        )

    def overlaps(self, other: "Aggregate") -> bool:
        """Whether the two confidence intervals overlap.

        Non-overlapping intervals indicate a significant difference at
        the configured confidence (section 4.5).  Raises
        :class:`AnalysisError` when either interval is undefined.
        """
        for aggregate in (self, other):
            if math.isnan(aggregate.ci_low):
                raise AnalysisError(
                    "confidence interval undefined (need >= 2 measurements)"
                )
        return self.ci_low <= other.ci_high and other.ci_low <= self.ci_high


# Two-sided critical values of Student's t for common confidence levels,
# indexed by degrees of freedom (1..30); beyond 30 the normal value is
# used, which is exactly the n >= 30 regime section 4.5 recommends.
_T_TABLE_95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]
_T_TABLE_99 = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
]
_Z_95 = 1.960
_Z_99 = 2.576


def _critical_value(df: int, confidence: float) -> float:
    if confidence == 0.95:
        table, z = _T_TABLE_95, _Z_95
    elif confidence == 0.99:
        table, z = _T_TABLE_99, _Z_99
    else:
        raise ValueError(
            f"supported confidence levels are 0.95 and 0.99, got {confidence}"
        )
    if df <= 0:
        raise AnalysisError("confidence interval needs >= 2 measurements")
    if df <= len(table):
        return table[df - 1]
    return z


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Two-sided CI of the mean using Student's t (normal for df > 30)."""
    n = len(values)
    if n < 2:
        raise AnalysisError("confidence interval needs >= 2 measurements")
    _reject_nan(values, "a confidence interval")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = _critical_value(n - 1, confidence) * math.sqrt(variance / n)
    return (mean - half_width, mean + half_width)
