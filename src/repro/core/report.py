"""Run reports and derived comparison metrics (paper sections 2.1, 4.5).

Graphalytics-style derived metrics — "different systems may then be
compared based on quantifying metrics for scalability, robustness, and
performance variability" — adapted to the stream setting, plus a plain
text report generator for a single harness run (the "analysis and
interpretation of the data" step of Jain's methodology).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.harness import RunResult
from repro.core.metrics import Aggregate, TimeSeries
from repro.errors import AnalysisError, MethodologyError

__all__ = [
    "coefficient_of_variation",
    "speedup_curve",
    "scalability_efficiency",
    "robustness_score",
    "run_report",
    "ascii_plot",
    "ascii_sparkline",
]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Performance variability: std / mean of repeated measurements.

    Lower is better; 0.0 means perfectly repeatable.  Raises
    :class:`AnalysisError` for fewer than two values or a zero mean.
    """
    if len(values) < 2:
        raise AnalysisError("variability needs >= 2 measurements")
    mean = sum(values) / len(values)
    if mean == 0:
        raise AnalysisError("variability undefined for zero mean")
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance) / abs(mean)


def speedup_curve(
    throughputs: dict[int, float], baseline_units: int | None = None
) -> dict[int, float]:
    """Scalability: speedup per resource count relative to a baseline.

    ``throughputs`` maps resource units (workers, sources) to measured
    throughput; the baseline defaults to the smallest unit count.
    """
    if not throughputs:
        raise MethodologyError("speedup needs at least one measurement")
    if baseline_units is None:
        baseline_units = min(throughputs)
    if baseline_units not in throughputs:
        raise MethodologyError(f"no measurement for baseline {baseline_units}")
    baseline = throughputs[baseline_units]
    if baseline <= 0:
        raise MethodologyError("baseline throughput must be positive")
    return {
        units: value / baseline for units, value in sorted(throughputs.items())
    }


def scalability_efficiency(throughputs: dict[int, float]) -> float:
    """Scalability metric: mean per-unit efficiency across the curve.

    1.0 means perfectly linear scaling from the smallest configuration;
    values near 0 mean added resources contribute nothing.
    """
    speedups = speedup_curve(throughputs)
    baseline_units = min(speedups)
    efficiencies = [
        speedup / (units / baseline_units)
        for units, speedup in speedups.items()
        if units != baseline_units
    ]
    if not efficiencies:
        return 1.0
    return sum(efficiencies) / len(efficiencies)


def robustness_score(
    clean_metric: float,
    stressed_metrics: Sequence[float],
    higher_is_better: bool = True,
) -> float:
    """Robustness: worst-case retained performance under stress.

    Compares a metric under clean conditions against the same metric
    under stress scenarios (overload, faults, bursts).  Returns the
    worst ratio of stressed to clean performance, in [0, 1]-ish terms
    (values above 1 mean stress helped, which usually signals a
    measurement problem).
    """
    if clean_metric <= 0:
        raise AnalysisError("clean metric must be positive")
    if not stressed_metrics:
        raise AnalysisError("need at least one stressed measurement")
    if higher_is_better:
        return min(value / clean_metric for value in stressed_metrics)
    return min(clean_metric / value for value in stressed_metrics if value > 0)


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def ascii_sparkline(series: TimeSeries, width: int = 60) -> str:
    """One-line unicode sparkline of a time series.

    The series is resampled onto ``width`` buckets (by last observation
    carried forward); values map linearly onto eight block heights.  A
    constant series renders as a flat mid-height line.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if not len(series):
        raise AnalysisError("cannot plot an empty series")
    timestamps = series.timestamps
    start, end = timestamps[0], timestamps[-1]
    if end <= start:
        values = [series.values[-1]] * min(width, len(series))
    else:
        step = (end - start) / width
        grid = series.resample(step)
        # The grid spans start..end inclusive: keep the final sample so
        # the plotted range matches the series range.
        values = grid.values[: width + 1]
    low = min(values)
    high = max(values)
    if high <= low:
        return _SPARK_LEVELS[3] * len(values)
    chars = []
    for value in values:
        level = int((value - low) / (high - low) * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def ascii_plot(
    series: TimeSeries, width: int = 60, height: int = 10, label: str | None = None
) -> str:
    """Multi-line ASCII time-series plot (section 4.5's visual check).

    Renders the series on a ``width`` x ``height`` character canvas with
    a value axis on the left.  Intended for terminal reports, not
    publication plots.
    """
    if width <= 0 or height <= 0:
        raise ValueError("width and height must be positive")
    if not len(series):
        raise AnalysisError("cannot plot an empty series")
    timestamps = series.timestamps
    start, end = timestamps[0], timestamps[-1]
    if end <= start:
        values = list(series.values)[:width]
    else:
        grid = series.resample((end - start) / width)
        values = grid.values[: width + 1]
    low, high = min(values), max(values)
    span = high - low or 1.0

    rows = []
    for row in range(height, 0, -1):
        threshold = low + span * (row - 0.5) / height
        line = "".join("█" if v >= threshold else " " for v in values)
        axis = f"{low + span * row / height:>10.2f} |"
        rows.append(axis + line)
    footer = " " * 10 + "+" + "-" * len(values)
    title = f"{label or series.name}  [{low:.2f} .. {high:.2f}]"
    time_line = (
        " " * 11
        + f"t={start:.1f}s"
        + " " * max(1, len(values) - len(f"t={start:.1f}s") - len(f"t={end:.1f}s"))
        + f"t={end:.1f}s"
    )
    return "\n".join([title, *rows, footer, time_line])


def run_report(result: RunResult, title: str = "GraphTides run") -> str:
    """Render one harness run as a plain-text report.

    Includes the headline outcomes, per-metric aggregates grouped by
    source, and the marker timeline.
    """
    lines = [title, "=" * len(title), ""]
    lines.append(f"duration:          {result.duration:.2f} s (simulated)")
    lines.append(f"events emitted:    {result.events_emitted}")
    lines.append(f"events processed:  {result.events_processed}")
    lines.append(f"mean throughput:   {result.mean_throughput:.0f} events/s")
    lines.append(f"rejected attempts: {result.rejected_attempts}")
    lines.append(f"drained:           {result.drained}")
    lines.append("")

    lines.append("metrics (mean / p95 / max by source):")
    for metric in result.log.metrics():
        if metric == "marker":
            continue
        for source in result.log.filter(metric=metric).sources():
            series = result.log.series(metric, source=source)
            aggregate = Aggregate.of(series.values)
            lines.append(
                f"  {metric:<22} {source:<26} "
                f"{aggregate.mean:>10.2f} {aggregate.p95:>10.2f} "
                f"{aggregate.maximum:>10.2f}"
            )
    markers = result.log.markers()
    if markers:
        lines.append("")
        lines.append("marker timeline:")
        for record in markers:
            lines.append(
                f"  t={record.timestamp:>8.2f}s  {record.tags.get('label', '')}"
            )
    if result.fault_events:
        lines.append("")
        lines.append("fault timeline:")
        for at, action, process in result.fault_events:
            lines.append(f"  t={at:>8.2f}s  {action:<8} {process}")
        for recovery in result.recoveries:
            recovered = (
                f"recovered in {recovery.recovery_seconds:.2f}s"
                if recovery.recovered
                else "not recovered within the run"
            )
            lines.append(
                f"  {recovery.process}: backlog {recovery.backlog_at_crash} -> "
                f"peak {recovery.backlog_peak}, {recovered}"
            )
    return "\n".join(lines)
