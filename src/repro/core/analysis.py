"""Result-log analyses (paper sections 4.3 and 4.5).

Post-run assessment tools: watermark/marker correlation (how long until
a streamed change is reflected in a result), retrospective accuracy
series against a batch reference, cross-correlation between time
series, and the stacked-series table behind Figure 3d.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.algorithms.base import rank_error
from repro.core.metrics import TimeSeries
from repro.core.resultlog import ResultLog
from repro.errors import AnalysisError

__all__ = [
    "marker_latency",
    "result_reflection_latency",
    "reflection_latency_profile",
    "trace_latency_profile",
    "retrospective_rank_errors",
    "cross_correlation",
    "StackedSeries",
    "stacked_series",
]


def marker_latency(log: ResultLog, first_label: str, second_label: str) -> float:
    """Time between two marker observations in the result log."""
    return log.marker_time(second_label) - log.marker_time(first_label)


def result_reflection_latency(
    log: ResultLog,
    marker_label: str,
    metric: str,
    predicate: Callable[[float], bool],
    source: str | None = None,
) -> float:
    """Watermark correlation (section 4.5): marker → result latency.

    Returns the delay between the marker's observation and the first
    subsequent record of ``metric`` whose value satisfies
    ``predicate`` — e.g. "the vertex count reflects the inserted
    batch".  Raises :class:`AnalysisError` when the condition never
    holds after the marker.
    """
    marker_at = log.marker_time(marker_label)
    for record in log.filter(source=source, metric=metric):
        if record.timestamp >= marker_at and predicate(record.value):
            return record.timestamp - marker_at
    raise AnalysisError(
        f"no record of {metric!r} satisfying the predicate after marker "
        f"{marker_label!r}"
    )


def reflection_latency_profile(
    log: ResultLog,
    marker_prefix: str,
    metric: str,
    source: str | None = None,
) -> list[float]:
    """Latency distribution from periodic watermark markers.

    Expects markers labelled ``{prefix}-{count}`` (as inserted by
    :func:`repro.core.shaping.with_periodic_markers`) where ``count``
    is the number of graph events preceding the marker, and a periodic
    ``result``-kind metric that reports how many events the platform
    has reflected (e.g. a processed-events query probe).  For each
    marker, the latency is the delay until the metric first reaches the
    marker's count.  Markers whose count is never reached are skipped.

    Feed the result to :class:`~repro.core.metrics.Aggregate` for the
    p99 result latency of section 4.3.  Raises
    :class:`AnalysisError` when no markers with the prefix exist.
    """
    markers: list[tuple[float, int]] = []
    for record in log.markers():
        label = record.tags.get("label", "")
        if label.startswith(marker_prefix + "-"):
            try:
                count = int(label.rsplit("-", 1)[1])
            except ValueError:
                continue
            markers.append((record.timestamp, count))
    if not markers:
        raise AnalysisError(
            f"no markers with prefix {marker_prefix!r} in result log"
        )

    observations = [
        (r.timestamp, r.value)
        for r in log.filter(source=source, metric=metric)
    ]
    latencies: list[float] = []
    for marked_at, count in markers:
        for timestamp, value in observations:
            if timestamp >= marked_at and value >= count:
                latencies.append(timestamp - marked_at)
                break
    return latencies


def trace_latency_profile(
    log: ResultLog,
    from_phase: str = "emitted",
    to_phase: str = "ingested",
) -> list[float]:
    """Per-event latency between two traced pipeline phases.

    Works on the ``kind="span"`` records a
    :class:`~repro.core.tracing.Tracer` merges into the run log: spans
    of the two phases are matched by their ``event_id`` tag, and each
    latency is the delay from the *start* of the ``from_phase`` span to
    the *end* (start + duration) of the ``to_phase`` span.  With the
    default phases this is the emit→ingest latency per sampled event —
    the trace-level counterpart of
    :func:`reflection_latency_profile`.

    Spans without an event id, and events missing either side (e.g. in
    flight at shutdown, or outside the sampling stride of one
    component), are skipped.  Raises :class:`AnalysisError` when no
    matchable ``from_phase`` spans exist.
    """
    starts: dict[str, float] = {}
    for record in log.spans(from_phase):
        event_id = record.tags.get("event_id")
        if event_id is not None and event_id not in starts:
            starts[event_id] = record.timestamp
    if not starts:
        raise AnalysisError(
            f"no {from_phase!r} spans with event ids in result log"
        )
    latencies: list[float] = []
    for record in log.spans(to_phase):
        event_id = record.tags.get("event_id")
        if event_id is None or event_id not in starts:
            continue
        latencies.append(record.timestamp + record.value - starts[event_id])
    return latencies


def retrospective_rank_errors(
    samples: Sequence[tuple[float, dict[int, float]]],
    exact: dict[int, float],
    tracked: Sequence[int] | None = None,
) -> TimeSeries:
    """Relative rank error over time against a batch reference.

    ``samples`` are (timestamp, rank-estimate-dict) snapshots captured
    during the run (an object-probe series); ``exact`` is the reference
    computed retrospectively on the reconstructed target graph
    (section 5.3.2: "relative rank errors are estimated
    retrospectively").  ``tracked`` restricts the comparison to
    specific vertices (the paper tracks "the most influential users");
    by default all reference vertices count.
    """
    if tracked is not None:
        exact = {v: exact[v] for v in tracked if v in exact}
        if not exact:
            raise AnalysisError("none of the tracked vertices are in the reference")
    series = TimeSeries("relative_rank_error")
    for timestamp, estimate in samples:
        series.append(timestamp, rank_error(estimate, exact))
    return series


def cross_correlation(
    a: TimeSeries, b: TimeSeries, max_lag: int = 10, step: float = 1.0
) -> dict[int, float]:
    """Pearson cross-correlation of two series at integer lags.

    Both series are resampled onto a common ``step`` grid first.  The
    result maps lag (in steps; positive lag means ``b`` trails ``a``)
    to the correlation coefficient; lags without enough overlap are
    omitted.  Raises :class:`AnalysisError` when either series is
    empty.
    """
    if not len(a) or not len(b):
        raise AnalysisError("cross-correlation needs non-empty series")
    grid_a = a.resample(step)
    grid_b = b.resample(step)
    start = max(grid_a.timestamps[0], grid_b.timestamps[0])
    end = min(grid_a.timestamps[-1], grid_b.timestamps[-1])
    if end < start:
        raise AnalysisError("series do not overlap in time")

    def values_on(series: TimeSeries) -> list[float]:
        return [
            s.value for s in series if start - 1e-9 <= s.timestamp <= end + 1e-9
        ]

    va = values_on(grid_a)
    vb = values_on(grid_b)
    n = min(len(va), len(vb))
    va, vb = va[:n], vb[:n]

    result: dict[int, float] = {}
    for lag in range(-max_lag, max_lag + 1):
        if lag >= 0:
            xs, ys = va[: n - lag] if lag else va, vb[lag:]
        else:
            xs, ys = va[-lag:], vb[: n + lag]
        m = min(len(xs), len(ys))
        if m < 3:
            continue
        xs, ys = xs[:m], ys[:m]
        mean_x = sum(xs) / m
        mean_y = sum(ys) / m
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var_x = sum((x - mean_x) ** 2 for x in xs)
        var_y = sum((y - mean_y) ** 2 for y in ys)
        if var_x <= 0 or var_y <= 0:
            continue
        result[lag] = cov / math.sqrt(var_x * var_y)
    return result


@dataclass(frozen=True, slots=True)
class StackedSeries:
    """Aligned multi-series table (the data behind Figure 3d).

    ``timestamps`` is the shared grid; ``series`` maps a label to the
    per-grid-point values (last observation carried forward).
    """

    timestamps: tuple[float, ...]
    series: dict[str, tuple[float, ...]]

    def rows(self) -> list[tuple[float, ...]]:
        """Table rows: (timestamp, value...) in label order."""
        labels = list(self.series)
        return [
            (t, *(self.series[label][i] for label in labels))
            for i, t in enumerate(self.timestamps)
        ]

    def labels(self) -> list[str]:
        return list(self.series)


def stacked_series(
    log: ResultLog,
    specs: Sequence[tuple[str, str, str | None]],
    step: float = 1.0,
    extra: dict[str, TimeSeries] | None = None,
) -> StackedSeries:
    """Build an aligned stacked-series table from a result log.

    ``specs`` lists (label, metric, source) selections from the log;
    ``extra`` adds externally computed series (e.g. retrospective rank
    errors).  All series are resampled onto a common ``step`` grid
    spanning the union of their time ranges; grid points before a
    series' first sample carry 0.0.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    collected: dict[str, TimeSeries] = {}
    for label, metric, source in specs:
        collected[label] = log.series(metric, source=source)
    for label, series in (extra or {}).items():
        if not len(series):
            raise AnalysisError(f"extra series {label!r} is empty")
        collected[label] = series
    if not collected:
        raise AnalysisError("no series selected")

    start = min(s.timestamps[0] for s in collected.values())
    end = max(s.timestamps[-1] for s in collected.values())
    grid: list[float] = []
    t = start
    while t <= end + 1e-9:
        grid.append(t)
        t += step

    table: dict[str, tuple[float, ...]] = {}
    for label, series in collected.items():
        values: list[float] = []
        index = 0
        last = 0.0
        samples = list(series)
        for point in grid:
            while index < len(samples) and samples[index].timestamp <= point + 1e-9:
                last = samples[index].value
                index += 1
            values.append(last)
        table[label] = tuple(values)
    return StackedSeries(timestamps=tuple(grid), series=table)
