"""Log collector: merge per-logger logs into one result log (section 5.1).

"Once a test run is finished, the log collector script gathers the
remote log files of all logger instances and merges them into a single,
chronologically sorted result log file."  Here the inputs are either
in-memory record lists (simulated runs) or JSON-lines files (live
runs); the output is a single :class:`~repro.core.resultlog.ResultLog`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.resultlog import Record, ResultLog

__all__ = ["collect_records", "collect_files"]


def collect_records(*record_groups: Iterable[Record]) -> ResultLog:
    """Merge any number of record iterables into one sorted result log."""
    merged: list[Record] = []
    for group in record_groups:
        merged.extend(group)
    return ResultLog(merged)


def collect_files(paths: Iterable[str | Path]) -> ResultLog:
    """Merge JSON-lines log files into one sorted result log."""
    logs = [ResultLog.read(path) for path in paths]
    if not logs:
        return ResultLog()
    first, *rest = logs
    return first.merged_with(*rest)
