"""Per-commit performance database with statistical regression gates.

GraphTides' methodology (paper section 4.5) only makes platform
comparisons meaningful when the harness side is measured and
reproducible; this package extends that discipline *across commits*:
every benchmark run is appended to a per-commit record store
(:mod:`repro.perfdb.store`), normalized from the BENCH_*.json snapshot
layout (:mod:`repro.perfdb.ingest`) with shared machine and git
provenance (:mod:`repro.perfdb.provenance`), and compared against its
baseline by three independent degradation checks
(:mod:`repro.perfdb.checks`) folded into a verdict
(:mod:`repro.perfdb.diff`).

Surfaced as ``graphtides perf record|diff|log`` and as the CI ``perf``
job: a confirmed degradation blocks the merge, turning every headline
speedup in the repo into a non-regressable claim.
"""

from repro.perfdb.checks import (
    CheckResult,
    DegradationState,
    average_amount_threshold,
    integral_comparison,
    trend,
)
from repro.perfdb.diff import DiffOptions, DiffReport, diff_all, diff_benchmark
from repro.perfdb.ingest import load_snapshot, record_from_snapshot
from repro.perfdb.provenance import (
    config_fingerprint,
    git_provenance,
    machine_fingerprint,
    machine_info,
    snapshot_provenance,
)
from repro.perfdb.schema import SCHEMA_VERSION, MetricSeries, PerfRecord
from repro.perfdb.store import DEFAULT_DB_PATH, PerfDatabase

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_DB_PATH",
    "MetricSeries",
    "PerfRecord",
    "PerfDatabase",
    "CheckResult",
    "DegradationState",
    "average_amount_threshold",
    "integral_comparison",
    "trend",
    "DiffOptions",
    "DiffReport",
    "diff_all",
    "diff_benchmark",
    "load_snapshot",
    "record_from_snapshot",
    "machine_info",
    "machine_fingerprint",
    "git_provenance",
    "snapshot_provenance",
    "config_fingerprint",
]
