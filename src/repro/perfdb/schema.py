"""Perf-database record schema.

One :class:`PerfRecord` describes one benchmark run: which benchmark,
on which commit and machine, under which config fingerprint, and the
measured metrics.  A metric is either a set of scalar samples
(:class:`MetricSeries` with ``samples``) or a full curve such as a
saturation sweep (``curve_x``/``curve_y``), which the integral check
compares by area.

Records are plain JSON dicts on disk (one per line in the store) and
versioned by ``SCHEMA_VERSION`` so future migrations stay explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import PerfDbError

__all__ = ["SCHEMA_VERSION", "MetricSeries", "PerfRecord"]

#: Version of both the BENCH_*.json snapshot layout (machine block with
#: ``cpu_count`` + ``provenance`` block) and the perfdb record layout.
SCHEMA_VERSION = 2


@dataclass(frozen=True, slots=True)
class MetricSeries:
    """One named metric of a run: scalar samples and/or a curve."""

    name: str
    unit: str
    higher_is_better: bool
    samples: tuple[float, ...] = ()
    curve_x: tuple[float, ...] = ()
    curve_y: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.samples and not self.curve_y:
            raise PerfDbError(
                f"metric {self.name!r} has neither samples nor a curve"
            )
        if len(self.curve_x) != len(self.curve_y):
            raise PerfDbError(
                f"metric {self.name!r}: curve_x has {len(self.curve_x)} "
                f"points but curve_y has {len(self.curve_y)}"
            )

    @property
    def mean(self) -> float:
        """Mean of the scalar samples (curve-only metrics use the curve)."""
        values = self.samples or self.curve_y
        return sum(values) / len(values)

    @property
    def has_curve(self) -> bool:
        return bool(self.curve_y)

    def to_json_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "samples": list(self.samples),
        }
        if self.has_curve:
            payload["curve"] = {
                "x": list(self.curve_x),
                "y": list(self.curve_y),
            }
        return payload

    @classmethod
    def from_json_dict(cls, name: str, payload: Mapping[str, Any]) -> "MetricSeries":
        curve = payload.get("curve") or {}
        return cls(
            name=name,
            unit=str(payload.get("unit", "")),
            higher_is_better=bool(payload.get("higher_is_better", True)),
            samples=tuple(float(v) for v in payload.get("samples", ())),
            curve_x=tuple(float(v) for v in curve.get("x", ())),
            curve_y=tuple(float(v) for v in curve.get("y", ())),
        )


@dataclass(frozen=True, slots=True)
class PerfRecord:
    """One benchmark run keyed by commit, machine, and config."""

    benchmark: str
    git_commit: str | None
    git_dirty: bool | None
    recorded_at_utc: str
    machine: dict[str, Any]
    machine_id: str
    config_id: str
    smoke: bool
    source: str
    metrics: dict[str, MetricSeries] = field(default_factory=dict)

    @property
    def short_commit(self) -> str:
        """Abbreviated commit hash for log lines (``unknown`` if absent)."""
        return (self.git_commit or "unknown")[:12]

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "git_commit": self.git_commit,
            "git_dirty": self.git_dirty,
            "recorded_at_utc": self.recorded_at_utc,
            "machine": dict(self.machine),
            "machine_id": self.machine_id,
            "config_id": self.config_id,
            "smoke": self.smoke,
            "source": self.source,
            "metrics": {
                name: series.to_json_dict()
                for name, series in sorted(self.metrics.items())
            },
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> "PerfRecord":
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise PerfDbError(
                f"unsupported perfdb record schema_version {version!r} "
                f"(this build reads {SCHEMA_VERSION})"
            )
        for key in ("benchmark", "recorded_at_utc", "machine", "metrics"):
            if key not in payload:
                raise PerfDbError(f"perfdb record is missing {key!r}")
        metrics = {
            name: MetricSeries.from_json_dict(name, series)
            for name, series in payload["metrics"].items()
        }
        if not metrics:
            raise PerfDbError("perfdb record has no metrics")
        return cls(
            benchmark=str(payload["benchmark"]),
            git_commit=payload.get("git_commit"),
            git_dirty=payload.get("git_dirty"),
            recorded_at_utc=str(payload["recorded_at_utc"]),
            machine=dict(payload["machine"]),
            machine_id=str(payload.get("machine_id", "")),
            config_id=str(payload.get("config_id", "")),
            smoke=bool(payload.get("smoke", False)),
            source=str(payload.get("source", "")),
            metrics=metrics,
        )
