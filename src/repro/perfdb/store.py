"""Append-only JSONL store of per-commit benchmark records.

The database is one JSON record per line, appended and never rewritten
— the perf history *is* the file's line order, which doubles as the
commit-time order (``recorded_at_utc`` breaks ties for humans).  The
checked-in baseline lives at :data:`DEFAULT_DB_PATH`; CI runs use
throwaway stores.

Smoke records (``--smoke`` benchmark runs) may be appended for
same-machine A/B comparisons, but they are never eligible as
*baselines*: :meth:`PerfDatabase.baseline` and
:meth:`PerfDatabase.history` skip them unless explicitly asked.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import PerfDbError
from repro.perfdb.schema import PerfRecord

__all__ = ["DEFAULT_DB_PATH", "PerfDatabase"]

#: Repo-relative location of the committed baseline database.
DEFAULT_DB_PATH = "perf/perfdb.jsonl"


class PerfDatabase:
    """Append-only perf-record store backed by one JSONL file."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def exists(self) -> bool:
        """Whether the backing file exists on disk."""
        return self.path.is_file()

    def append(self, record: PerfRecord) -> None:
        """Append one record; creates the file (and parent dir) lazily."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_json_dict(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def records(
        self,
        benchmark: str | None = None,
        include_smoke: bool = True,
    ) -> list[PerfRecord]:
        """All records in append order, optionally filtered."""
        if not self.exists():
            return []
        loaded: list[PerfRecord] = []
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise PerfDbError(
                        f"{self.path}:{number}: not valid JSON: {exc}"
                    ) from exc
                record = PerfRecord.from_json_dict(payload)
                if benchmark is not None and record.benchmark != benchmark:
                    continue
                if record.smoke and not include_smoke:
                    continue
                loaded.append(record)
        return loaded

    def benchmarks(self) -> list[str]:
        """Distinct benchmark names, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self.records():
            seen.setdefault(record.benchmark, None)
        return list(seen)

    def latest(
        self, benchmark: str, include_smoke: bool = False
    ) -> PerfRecord | None:
        """The most recently appended record for ``benchmark``."""
        matching = self.records(benchmark, include_smoke=include_smoke)
        return matching[-1] if matching else None

    def baseline(
        self,
        benchmark: str,
        before: PerfRecord | None = None,
        include_smoke: bool = False,
    ) -> PerfRecord | None:
        """The newest non-smoke record strictly older than ``before``.

        With ``before=None`` the latest eligible record itself is the
        baseline (useful when diffing an un-appended candidate).  Smoke
        records are skipped unless ``include_smoke`` — a smoke run is
        never silently promoted to a baseline.

        Duplicate records are legitimate (re-recording an identical
        snapshot, A/A comparison runs), so ``before`` is matched from
        the *end*: the target is by construction the newest entry, and
        an earlier identical record then correctly becomes its baseline.
        """
        matching = self.records(benchmark, include_smoke=include_smoke)
        if before is not None:
            cutoff = None
            for index in range(len(matching) - 1, -1, -1):
                if matching[index] == before:
                    cutoff = index
                    break
            if cutoff is None:
                raise PerfDbError(
                    f"record is not in {self.path} (benchmark {benchmark!r})"
                )
            matching = matching[:cutoff]
        return matching[-1] if matching else None

    def history(
        self,
        benchmark: str,
        metric: str,
        last: int | None = None,
        include_smoke: bool = False,
    ) -> list[tuple[PerfRecord, float]]:
        """``(record, metric mean)`` pairs in append order.

        Records missing the metric are skipped; ``last`` keeps only the
        newest K entries (the trend-check window).
        """
        rows = [
            (record, record.metrics[metric].mean)
            for record in self.records(benchmark, include_smoke=include_smoke)
            if metric in record.metrics
        ]
        if last is not None and last > 0:
            rows = rows[-last:]
        return rows
