"""Shared machine and git provenance for benchmark snapshots.

Every benchmark writes the same ``machine`` block and the same
``provenance`` block through these helpers, so perfdb ingestion can
compare records without per-benchmark schema special cases.  Before
this module existed ``bench_codec_throughput.py`` omitted ``cpu_count``
from its machine block while ``bench_replayer_scaleout.py`` recorded
it — exactly the drift a shared helper prevents.

Provenance is stamped *at write time*: the commit hash and dirty flag
describe the tree the numbers were measured on, and the UTC timestamp
orders records within one commit.  Outside a git checkout the git
fields degrade to ``None`` rather than failing the benchmark.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from datetime import datetime, timezone
from typing import Any

__all__ = [
    "machine_info",
    "machine_fingerprint",
    "git_provenance",
    "snapshot_provenance",
    "config_fingerprint",
]

_GIT_TIMEOUT = 10.0


def machine_info() -> dict[str, Any]:
    """The normalized ``machine`` block shared by every benchmark."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def machine_fingerprint(machine: dict[str, Any]) -> str:
    """Stable digest of the comparison-relevant machine fields.

    Two records are rate-comparable only when they ran on the same
    interpreter, platform, and core count; the fingerprint collapses
    that tuple into one comparable token.
    """
    relevant = {
        key: machine.get(key)
        for key in ("python", "implementation", "platform", "cpu_count")
    }
    payload = json.dumps(relevant, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _git(args: list[str], cwd: str | None) -> str | None:
    try:
        completed = subprocess.run(
            ["git", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=_GIT_TIMEOUT,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip()


def git_provenance(cwd: str | None = None) -> dict[str, Any]:
    """Commit hash and dirty-tree flag of the checkout at ``cwd``.

    Returns ``{"git_commit": None, "git_dirty": None}`` when git is
    unavailable or ``cwd`` is not inside a repository, so callers can
    stamp provenance unconditionally.
    """
    commit = _git(["rev-parse", "HEAD"], cwd)
    if commit is None:
        return {"git_commit": None, "git_dirty": None}
    status = _git(["status", "--porcelain"], cwd)
    dirty = None if status is None else bool(status)
    return {"git_commit": commit, "git_dirty": dirty}


def snapshot_provenance(cwd: str | None = None) -> dict[str, Any]:
    """The full ``provenance`` block stamped into a BENCH snapshot."""
    stamp = git_provenance(cwd)
    stamp["recorded_at_utc"] = datetime.now(timezone.utc).isoformat()
    return stamp


def config_fingerprint(config: dict[str, Any]) -> str:
    """Order-independent digest of a benchmark's ``config`` block.

    Records with different fingerprints measured different workloads
    (event counts, worker matrices, ...), so their absolute rates are
    not directly comparable; ``perf diff`` downgrades such comparisons.
    """
    payload = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
