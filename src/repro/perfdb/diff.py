"""Record-vs-baseline comparison: run every applicable check, verdict.

:func:`diff_benchmark` picks the target (newest record) and baseline
(newest older non-smoke record) for one benchmark, runs the threshold
check on every shared scalar metric, the integral check on every shared
curve, and the trend check over the metric's last-K-commit history,
then folds the results into a :class:`DiffReport` whose
``has_confirmed_regression`` drives the CLI exit code and the CI gate.

Comparability guard: when baseline and target were measured on
different machines or different workload configs (fingerprints from
:mod:`repro.perfdb.provenance` differ), absolute rates are not
commensurable — every confirmed verdict is downgraded to *maybe* and
the report says why, instead of blocking a merge on an apples-to-
oranges comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PerfDbError
from repro.perfdb.checks import (
    CheckResult,
    DegradationState,
    average_amount_threshold,
    integral_comparison,
    trend,
)
from repro.perfdb.schema import PerfRecord
from repro.perfdb.store import PerfDatabase

__all__ = ["DiffOptions", "DiffReport", "diff_benchmark", "diff_all"]


@dataclass(frozen=True, slots=True)
class DiffOptions:
    """Tunables of one diff run (thresholds and the trend window)."""

    threshold: float = 0.15
    integral_threshold: float = 0.10
    trend_window: int = 7
    trend_threshold: float = 0.15
    confidence: float = 0.95
    include_smoke: bool = False


@dataclass(slots=True)
class DiffReport:
    """All check results for one benchmark's target-vs-baseline diff."""

    benchmark: str
    baseline: PerfRecord | None
    target: PerfRecord | None
    results: list[CheckResult] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def confirmed(self) -> list[CheckResult]:
        return [r for r in self.results if r.is_confirmed_degradation]

    @property
    def suspected(self) -> list[CheckResult]:
        return [r for r in self.results if r.is_suspected_degradation]

    @property
    def has_confirmed_regression(self) -> bool:
        return bool(self.confirmed)

    def render_lines(self) -> list[str]:
        """Human-readable report lines (one per check result)."""
        lines = [f"benchmark {self.benchmark}:"]
        if self.target is None:
            lines.append("  no records; nothing to diff")
            return lines
        if self.baseline is None:
            lines.append(
                f"  target {self.target.short_commit} has no baseline; "
                "record a non-smoke run first"
            )
            return lines
        lines[0] = (
            f"benchmark {self.benchmark}: "
            f"{self.baseline.short_commit} -> {self.target.short_commit}"
        )
        for note in self.notes:
            lines.append(f"  note: {note}")
        for result in sorted(
            self.results, key=lambda r: (r.metric, r.check)
        ):
            change = (
                f"{result.relative_change:+.1%}"
                if result.relative_change is not None
                else "   n/a"
            )
            lines.append(
                f"  {result.metric:<34} {result.check:<9} {change:>8}  "
                f"{result.state.value} ({result.detail})"
            )
        verdict = (
            "REGRESSION"
            if self.has_confirmed_regression
            else "ok"
        )
        lines.append(
            f"  verdict: {verdict} "
            f"({len(self.confirmed)} confirmed, "
            f"{len(self.suspected)} suspected degradation(s))"
        )
        return lines


def _comparability_notes(
    baseline: PerfRecord, target: PerfRecord
) -> list[str]:
    notes = []
    if baseline.machine_id != target.machine_id:
        notes.append(
            "baseline and target ran on different machines; confirmed "
            "verdicts downgraded to 'maybe'"
        )
    if baseline.config_id != target.config_id:
        notes.append(
            "baseline and target measured different workload configs; "
            "confirmed verdicts downgraded to 'maybe'"
        )
    if baseline.smoke != target.smoke:
        notes.append(
            "comparing a smoke run against a full run; confirmed "
            "verdicts downgraded to 'maybe'"
        )
    return notes


def diff_records(
    baseline: PerfRecord,
    target: PerfRecord,
    history_by_metric: dict[str, list[float]] | None = None,
    options: DiffOptions = DiffOptions(),
) -> DiffReport:
    """Diff two explicit records (plus optional per-metric history)."""
    report = DiffReport(
        benchmark=target.benchmark, baseline=baseline, target=target
    )
    report.notes = _comparability_notes(baseline, target)
    downgrade = bool(report.notes)
    shared = sorted(set(baseline.metrics) & set(target.metrics))
    missing = sorted(set(baseline.metrics) - set(target.metrics))
    if missing:
        report.notes.append(
            f"target is missing baseline metric(s): {', '.join(missing)}"
        )
    for name in shared:
        base_series = baseline.metrics[name]
        target_series = target.metrics[name]
        results: list[CheckResult] = []
        if base_series.samples and target_series.samples:
            results.append(
                average_amount_threshold(
                    base_series,
                    target_series,
                    threshold=options.threshold,
                    confidence=options.confidence,
                )
            )
        if base_series.has_curve and target_series.has_curve:
            results.append(
                integral_comparison(
                    base_series,
                    target_series,
                    threshold=options.integral_threshold,
                )
            )
        history = (history_by_metric or {}).get(name, ())
        if len(history) >= 3:
            results.append(
                trend(
                    name,
                    history,
                    higher_is_better=base_series.higher_is_better,
                    threshold=options.trend_threshold,
                )
            )
        if downgrade:
            results = [
                result.downgraded("records are not strictly comparable")
                for result in results
            ]
        report.results.extend(results)
    return report


def diff_benchmark(
    db: PerfDatabase,
    benchmark: str,
    options: DiffOptions = DiffOptions(),
) -> DiffReport:
    """Diff the newest record for ``benchmark`` against its baseline.

    The trend window feeds each metric the last
    ``options.trend_window`` record means ending at the target, so a
    creeping regression is caught even when the single-step change
    stays under the threshold.
    """
    target = db.latest(benchmark, include_smoke=options.include_smoke)
    if target is None:
        return DiffReport(benchmark=benchmark, baseline=None, target=None)
    baseline = db.baseline(
        benchmark, before=target, include_smoke=options.include_smoke
    )
    if baseline is None:
        return DiffReport(benchmark=benchmark, baseline=baseline, target=target)
    history_by_metric: dict[str, list[float]] = {}
    for name in set(baseline.metrics) & set(target.metrics):
        rows = db.history(
            benchmark,
            name,
            include_smoke=options.include_smoke,
        )
        means = [mean for record, mean in rows]
        # The window ends at the target record (newest entries).
        history_by_metric[name] = means[-options.trend_window:]
    return diff_records(baseline, target, history_by_metric, options)


def diff_all(
    db: PerfDatabase, options: DiffOptions = DiffOptions()
) -> list[DiffReport]:
    """One report per benchmark present in the database."""
    names = db.benchmarks()
    if not names:
        raise PerfDbError(f"{db.path} holds no records")
    return [diff_benchmark(db, name, options) for name in names]
