"""Normalize BENCH_*.json snapshots into perf-database records.

Each benchmark writes its own snapshot layout; this module flattens
both into the shared :class:`~repro.perfdb.schema.PerfRecord` metric
namespace so the degradation checks never look inside benchmark-
specific nesting.  Scalar headline numbers become single-sample
metrics (or multi-sample, where the benchmark records per-repeat
samples), and saturation sweeps become curves for the integral check.

Only schema-version-2 snapshots — the ones stamped with a shared
``machine`` block and a ``provenance`` block — are accepted: a record
without commit provenance cannot be placed in the history.  Snapshots
from ``--smoke`` runs are refused unless ``allow_smoke=True``, and even
then the stored record keeps ``smoke: true`` so it is never silently
promoted to a baseline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.errors import PerfDbError
from repro.perfdb.provenance import config_fingerprint, machine_fingerprint
from repro.perfdb.schema import SCHEMA_VERSION, MetricSeries, PerfRecord

__all__ = ["record_from_snapshot", "load_snapshot", "SUPPORTED_BENCHMARKS"]

EPS = "events/s"


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Read one BENCH_*.json snapshot file."""
    path = Path(path)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise PerfDbError(f"cannot read snapshot {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise PerfDbError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise PerfDbError(f"{path} does not contain a JSON object")
    return payload


def _scalar(
    name: str,
    value: Any,
    unit: str = EPS,
    higher_is_better: bool = True,
    samples: Any = None,
) -> MetricSeries:
    values = samples if samples else [value]
    return MetricSeries(
        name=name,
        unit=unit,
        higher_is_better=higher_is_better,
        samples=tuple(float(v) for v in values),
    )


def _pipeline_metrics(snapshot: Mapping[str, Any]) -> dict[str, MetricSeries]:
    parse = snapshot["parse"]
    fmt = snapshot["format"]
    roundtrip = snapshot["file_roundtrip"]
    replay = snapshot["replay"]
    parse_samples = parse.get("samples", {})
    fmt_samples = fmt.get("samples", {})

    metrics = {
        "parse_fast_eps": _scalar(
            "parse_fast_eps", parse["fast_eps"],
            samples=parse_samples.get("fast_eps"),
        ),
        "parse_fast_trusted_eps": _scalar(
            "parse_fast_trusted_eps", parse["fast_trusted_eps"],
            samples=parse_samples.get("fast_trusted_eps"),
        ),
        "format_fast_eps": _scalar(
            "format_fast_eps", fmt["fast_eps"],
            samples=fmt_samples.get("fast_eps"),
        ),
        "file_write_eps": _scalar("file_write_eps", roundtrip["write_eps"]),
        "file_read_eps": _scalar("file_read_eps", roundtrip["read_eps"]),
        "combined_parse_format_speedup": _scalar(
            "combined_parse_format_speedup",
            snapshot["combined_parse_format_speedup"],
            unit="x",
        ),
    }

    saturation = replay["saturation_eps_by_batch_size"]
    saturation_samples = replay.get("saturation_samples_by_batch_size", {})
    batch_sizes = sorted(saturation, key=float)
    best_batch = max(batch_sizes, key=lambda b: saturation[b])
    metrics["replay_saturation_best_eps"] = _scalar(
        "replay_saturation_best_eps",
        saturation[best_batch],
        samples=saturation_samples.get(best_batch),
    )
    metrics["replay_saturation_curve"] = MetricSeries(
        name="replay_saturation_curve",
        unit=EPS,
        higher_is_better=True,
        curve_x=tuple(float(b) for b in batch_sizes),
        curve_y=tuple(float(saturation[b]) for b in batch_sizes),
    )
    return metrics


def _scaleout_metrics(snapshot: Mapping[str, Any]) -> dict[str, MetricSeries]:
    config = snapshot["config"]
    widest = str(config["worker_counts"][-1])
    metrics = {
        "baseline_1w_events_eps": _scalar(
            "baseline_1w_events_eps", snapshot["baseline_1w_events_eps"]
        ),
        "decode_scaleout_eps": _scalar(
            "decode_scaleout_eps", snapshot["decode_4w_eps"]
        ),
        "decode_scaling": _scalar(
            "decode_scaling", snapshot["decode_scaling_4w"], unit="x"
        ),
        "decode_vs_raw": _scalar(
            "decode_vs_raw", snapshot["decode_vs_raw_4w"], unit="x"
        ),
        "binary_raw_ceiling_eps": _scalar(
            "binary_raw_ceiling_eps", snapshot["binary_raw_ceiling_eps"]
        ),
        "raw_scaleout_speedup": _scalar(
            "raw_scaleout_speedup", snapshot["speedup_4w"], unit="x"
        ),
    }
    saturation = snapshot["saturation"]
    for fmt, by_mode in saturation.items():
        for emission, mode in by_mode.items():
            cell = mode["by_workers"].get(widest)
            if cell is None:
                continue
            name = f"saturation_{fmt}_{emission}_{widest}w_eps"
            metrics[name] = _scalar(
                name, cell["aggregate_eps"], samples=cell.get("samples_eps")
            )
    sweep = snapshot["sweep"]
    series = sweep["by_workers"].get(widest)
    if series is not None:
        metrics["sweep_achieved_curve"] = MetricSeries(
            name="sweep_achieved_curve",
            unit=EPS,
            higher_is_better=True,
            curve_x=tuple(float(t) for t in sweep["target_rates"]),
            curve_y=tuple(float(a) for a in series["achieved_eps"]),
        )
    # Transport axis (snapshots recorded since the shm ring landed):
    # per-transport delivered throughput at the widest worker count,
    # plus the headline shm-vs-pipe ratio the tentpole gate tracks.
    transports = snapshot.get("transports")
    if transports:
        for transport, block in transports["by_transport"].items():
            cell = block["by_workers"].get(widest)
            if cell is None:
                continue
            name = f"transport_{transport}_{widest}w_delivered_eps"
            metrics[name] = _scalar(
                name, cell["aggregate_eps"], samples=cell.get("samples_eps")
            )
        metrics["shm_vs_pipe_delivered"] = _scalar(
            "shm_vs_pipe_delivered",
            snapshot["shm_vs_pipe_delivered"],
            unit="x",
        )
    return metrics


SUPPORTED_BENCHMARKS = {
    "pipeline": _pipeline_metrics,
    "replayer_scaleout": _scaleout_metrics,
}


def record_from_snapshot(
    snapshot: Mapping[str, Any],
    source: str = "",
    allow_smoke: bool = False,
) -> PerfRecord:
    """Build a :class:`PerfRecord` from one parsed BENCH snapshot.

    Raises :class:`~repro.errors.PerfDbError` for pre-v2 snapshots
    (no provenance — re-record the benchmark), for unknown benchmark
    names, and for ``smoke: true`` snapshots unless ``allow_smoke``:
    smoke workloads are shrunk and unrepeated, so storing one as a
    baseline would poison every later comparison.
    """
    version = snapshot.get("schema_version")
    if version != SCHEMA_VERSION:
        raise PerfDbError(
            f"snapshot {source or '<dict>'} has schema_version {version!r}; "
            f"perfdb ingests version {SCHEMA_VERSION} snapshots — re-record "
            "the benchmark to stamp machine and commit provenance"
        )
    benchmark = snapshot.get("benchmark")
    extractor = SUPPORTED_BENCHMARKS.get(benchmark)
    if extractor is None:
        raise PerfDbError(
            f"unknown benchmark {benchmark!r}; supported: "
            f"{sorted(SUPPORTED_BENCHMARKS)}"
        )
    smoke = bool(snapshot.get("smoke", False))
    if smoke and not allow_smoke:
        raise PerfDbError(
            f"snapshot {source or '<dict>'} is a --smoke run; refusing to "
            "store it as a baseline (pass --allow-smoke to record it as an "
            "explicitly smoke-tagged, non-baseline record)"
        )
    provenance = snapshot.get("provenance") or {}
    machine = snapshot.get("machine") or {}
    if "recorded_at_utc" not in provenance:
        raise PerfDbError(
            f"snapshot {source or '<dict>'} has no provenance.recorded_at_utc"
        )
    return PerfRecord(
        benchmark=benchmark,
        git_commit=provenance.get("git_commit"),
        git_dirty=provenance.get("git_dirty"),
        recorded_at_utc=provenance["recorded_at_utc"],
        machine=dict(machine),
        machine_id=machine_fingerprint(machine),
        config_id=config_fingerprint(snapshot.get("config", {})),
        smoke=smoke,
        source=str(source),
        metrics=extractor(snapshot),
    )
